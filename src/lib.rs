//! # DarNet
//!
//! A full Rust reproduction of *"DarNet: A Deep Learning Solution for
//! Distracted Driving Detection"* (Streiffer et al., Middleware Industry
//! '17): a multimodal data-collection middleware plus a deep-learning
//! analytics engine that fuses dashcam frames (CNN) and phone IMU
//! sequences (bidirectional LSTM) through a Bayesian-network ensemble,
//! with a privacy-preserving down-sampled path (dCNN distillation).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`tensor`] — the numerical substrate ([`darnet_tensor`]),
//! * [`nn`] — from-scratch CNN/LSTM/SVM layers and optimizers
//!   ([`darnet_nn`]),
//! * [`sim`] — the synthetic driving world standing in for the paper's
//!   private datasets ([`darnet_sim`]),
//! * [`collect`] — collection agents, centralized controller, clock sync,
//!   alignment, TSDB ([`darnet_collect`]),
//! * [`core`] — models, ensemble, privacy, evaluation, experiment drivers
//!   ([`darnet_core`]).
//!
//! ## Quickstart
//!
//! ```
//! use darnet::sim::{Behavior, DrivingWorld, WorldConfig};
//!
//! let world = DrivingWorld::new(WorldConfig::default());
//! let frame = world.render_frame(0, Behavior::Texting, 1.0);
//! assert_eq!(frame.width(), 48);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench/src/bin/`
//! for the binaries that regenerate every table and figure of the paper.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub use darnet_collect as collect;
pub use darnet_core as core;
pub use darnet_nn as nn;
pub use darnet_sim as sim;
pub use darnet_tensor as tensor;
