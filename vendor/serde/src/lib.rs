//! Offline stub of `serde`.
//!
//! The container this repository builds in has no network access and no
//! crates-io mirror, so the real serde cannot be fetched. The codebase uses
//! `#[derive(Serialize, Deserialize)]` purely as a declaration of intent
//! (model persistence goes through a custom binary format in
//! `darnet-core::model_io`), so marker traits plus no-op derives are
//! sufficient to compile everything.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Blanket impls so generic bounds, if ever written, are satisfiable.
impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
