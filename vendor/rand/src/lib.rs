//! Offline stub of `rand`.
//!
//! The workspace declares `rand` as a dependency but the code paths all use
//! the deterministic `SplitMix64` in `darnet-tensor`. This stub keeps the
//! manifest satisfied offline and provides a tiny `Rng` for any future use.

/// A deterministic SplitMix64 generator (Steele et al., 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Minimal stand-in for `rand::Rng`.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
    }
}
