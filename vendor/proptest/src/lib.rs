//! Offline stub of `proptest`.
//!
//! The build container has no crates-io access, so this crate reimplements
//! the slice of proptest's API that the DarNet test suites use: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, range and
//! collection strategies, `prop_map`/`prop_flat_map`, `any::<T>()`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible runs),
//! and there is **no shrinking** — a failure reports the panicking case
//! as-is.

/// Deterministic RNG and run configuration.
pub mod test_runner {
    /// SplitMix64 — deterministic, seedable, fast.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a raw seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Derives a per-test seed from the test's name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform u64 in [0, n) for n > 0.
        pub fn below(&mut self, n: u64) -> u64 {
            (self.next_f64() * n as f64) as u64
        }
    }

    /// Run configuration (subset: case count).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases generated per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a dependent strategy from it, and
        /// samples that.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start + rng.next_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start() + rng.next_f64() as $t * (self.end() - self.start())
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.next_f64() * 2.0 - 1.0) as f32 * 1e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_f64() * 2.0 - 1.0) * 1e12
        }
    }

    /// Strategy wrapper produced by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive size specification for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors of `elem`-generated values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs from a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in -2.0f32..2.0, c in 1..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_and_tuple_strategies((n, scale) in (1usize..5, 0.5f64..2.0),
                                     data in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(scale >= 0.5 && scale < 2.0);
            prop_assert!(data.len() < 10);
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..4).prop_flat_map(|n|
            prop::collection::vec(0.0f32..1.0, n).prop_map(|v| v.len()))) {
            prop_assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
