//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with parking_lot's non-poisoning API
//! (guards returned directly, poisoning swallowed via `unwrap_or_else`).

use std::sync;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (never poisons).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock (never poisons).
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock (never poisons).
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5u32);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
