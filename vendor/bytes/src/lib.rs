//! Offline stub of the `bytes` crate.
//!
//! Implements the subset of `Bytes`/`BytesMut`/`Buf`/`BufMut` that the
//! DarNet wire format and model-persistence code use: big-endian integer
//! and float put/get, slicing, freezing, and cheap clones (via `Arc`).

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer (a view into shared storage).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copies a byte slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length of the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, retaining its capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Reads `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize) {
        let mut skip = vec![0u8; n];
        self.copy_to_slice(&mut skip);
    }

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    /// Reads a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        i16::from_be_bytes(b)
    }
    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }
    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write sink for encoding (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Writes a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    /// Writes a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_i16(-5);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 2 + 4 + 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 300);
        assert_eq!(b.get_u32(), 70_000);
        assert_eq!(b.get_i16(), -5);
        assert_eq!(b.get_f32(), 1.5);
        assert_eq!(b.get_f64(), -2.25);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_views_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.len(), 5);
    }
}
