//! Offline stub of `criterion`.
//!
//! Implements the API slice the DarNet benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`sample_size`/`finish`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!`/`criterion_main!` macros
//! — with a simple wall-clock measurement loop (median of N samples, each
//! sample timing a small batch of iterations). No statistics engine, no
//! HTML reports; results print as `name ... time: [median ns/iter]`.

use std::time::Instant;

pub use std::hint::black_box;

/// Runs closures under measurement.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    last_ns: f64,
}

impl Bencher {
    /// Measures `f`, recording the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch-size calibration: aim for ~1 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        let batch = ((1_000_000.0 / once_ns) as u64).clamp(1, 10_000);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_ns = per_iter[per_iter.len() / 2];
    }
}

/// Top-level bench driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(3),
        last_ns: 0.0,
    };
    f(&mut b);
    println!("{name:<50} time: [{}/iter]", human(b.last_ns));
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-bench sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function calling each target with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("noop-ish", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}
