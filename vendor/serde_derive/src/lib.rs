//! Offline stub of `serde_derive`.
//!
//! This repository builds in an air-gapped container, so the real serde
//! derive machinery is unavailable. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as documentation of intent — nothing
//! actually serializes through serde — so the derives expand to nothing.
//! The `serde` helper attribute is still registered so field/container
//! attributes parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
