//! Offline stub of `crossbeam`.
//!
//! Provides `crossbeam::channel::{bounded, unbounded, Sender, Receiver}`
//! backed by `std::sync::mpsc`. The std sender is wrapped so that `Sender`
//! is `Clone + Send` like crossbeam's, and the receiver supports blocking
//! iteration (`for msg in rx`), which is all the live collection mode uses.

/// MPMC-ish channels (MPSC here — DarNet uses one consumer).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Blocking send; errors if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator over received messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn bounded_channel_roundtrip_and_hangup() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            tx2.send(99).unwrap();
        });
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 99]);
    }
}
