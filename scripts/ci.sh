#!/usr/bin/env bash
# Full CI pipeline, runnable offline on any checkout:
#
#   1. tier1     — lockfile freshness, fmt --check, release build,
#                  tests, clippy -D warnings + escalated panic lints,
#                  darlint --check (scripts/tier1.sh)
#   2. darlint   — re-runs the invariant lint with --json, writing the
#                  machine-readable report next to the bench artifacts
#                  (target/ci/darlint.json), and compares per-rule /
#                  per-hatch counts against the committed
#                  darlint.ratchet.json baseline; any violation OR any
#                  count above the baseline fails the pipeline with a
#                  delta print (pay the debt down, or re-baseline with
#                  `cargo run -p xtask -- lint --write-ratchet
#                  darlint.ratchet.json` if the new debt is justified).
#                  Also emits the interprocedural effect-inference
#                  report (target/ci/effects.json, schema v3): every
#                  workspace function's transitive effect set with
#                  witness chains
#   3. docs      — rustdoc must build cleanly (missing_docs is denied
#                  in the crates, so this catches broken intra-doc
#                  links and malformed examples)
#   4. parallel  — the parallel/batching benchmark in --fast mode,
#                  compared against the committed BENCH_parallel.json
#                  baseline; any speedup_* ratio more than 15% below
#                  baseline fails the build, as does missing the
#                  hardware-scaled absolute floors (--check)
#   5. inference — the workspace inference benchmark in --fast mode,
#                  compared against the committed BENCH_inference.json
#                  baseline; the warm *_into paths must perform 0 heap
#                  allocations per call and keep the single-step
#                  speedup ≥1.15× (--check)
#   6. chaos     — the crash-tolerance harness in --fast mode,
#                  compared against the committed BENCH_chaos.json
#                  baseline; seeded controller kills with torn tail
#                  writes must recover with zero acked samples lost,
#                  deterministically, within the replay time budget,
#                  and overload must shed low-priority streams first
#                  (--check)
#   7. fleet     — the fleet-scale sharded-ingest harness in --fast
#                  mode (a 10k-agent seeded fleet), compared against
#                  the committed BENCH_fleet.json baseline; the run
#                  must be bit-deterministic, the sharded TSDB must
#                  merge to the single-controller digest, and sustained
#                  ingest rate / ack p99 / bytes-per-agent must stay
#                  within 15% of baseline (--check)
#   8. multiview — the N-stream registry ablation in --fast mode,
#                  compared against the committed BENCH_multiview.json
#                  baseline; the seeded fault campaign must knock the
#                  front camera out, and the 3-stream engine's accuracy
#                  under that loss must stay at or above the 2-stream
#                  engine under the same loss and within 15% of the
#                  clean 2-stream baseline (--check)
#
# Usage:
#   scripts/ci.sh                 run every step
#   scripts/ci.sh --only fleet    run one step (repeatable: --only a --only b)
#   scripts/ci.sh --list          list step names and exit
#
# Every step is timed and a per-step elapsed summary is printed at the
# end, so the 8-step pipeline can be profiled and iterated on locally
# without grepping logs.
#
# The workspace vendors every dependency, so the whole pipeline runs with
# the network off; CARGO_NET_OFFLINE makes cargo fail fast if anything
# ever tries to reach out.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

STEPS=(tier1 darlint docs parallel inference chaos fleet multiview)
ONLY=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --only)
      [[ $# -ge 2 ]] || { echo "error: --only needs a step name" >&2; exit 2; }
      ONLY+=("$2")
      shift 2
      ;;
    --list)
      printf '%s\n' "${STEPS[@]}"
      exit 0
      ;;
    *)
      echo "error: unknown argument '$1' (try --list)" >&2
      exit 2
      ;;
  esac
done
for name in ${ONLY[@]+"${ONLY[@]}"}; do
  case " ${STEPS[*]} " in
    *" $name "*) ;;
    *) echo "error: unknown step '$name' (try --list)" >&2; exit 2 ;;
  esac
done

step_tier1() {
  scripts/tier1.sh
}

step_darlint() {
  mkdir -p target/ci
  cargo run --locked -q -p xtask -- lint --check \
    --json --out target/ci/darlint.json \
    --ratchet darlint.ratchet.json
  # The effect-inference artifact rides along: per-function transitive
  # effect sets with witness chains, byte-deterministic (schema v3).
  cargo run --locked -q -p xtask -- effects --out target/ci/effects.json
}

step_docs() {
  cargo doc --workspace --no-deps --locked --quiet
}

# Shared shape of the five gated benchmarks: --fast smoke, JSON artifact
# under target/ci/, regression compare against the committed baseline,
# and the bench's own invariant gates.
run_bench() {
  local bin="$1"
  local baseline="$2"
  mkdir -p target/ci
  cargo run --release --locked -p darnet-bench --bin "$bin" -- \
    --fast --json \
    --out "target/ci/$baseline" \
    --compare "$baseline" \
    --check
}

step_parallel()  { run_bench bench_parallel  BENCH_parallel.json; }
step_inference() { run_bench bench_inference BENCH_inference.json; }
step_chaos()     { run_bench bench_chaos     BENCH_chaos.json; }
step_fleet()     { run_bench bench_fleet     BENCH_fleet.json; }
step_multiview() { run_bench repro_ablation_multiview BENCH_multiview.json; }

wants() {
  [[ ${#ONLY[@]} -eq 0 ]] && return 0
  local name
  for name in "${ONLY[@]}"; do
    [[ "$name" == "$1" ]] && return 0
  done
  return 1
}

SUMMARY=""
for step in "${STEPS[@]}"; do
  wants "$step" || continue
  echo "==> $step"
  start=$SECONDS
  "step_$step"
  elapsed=$((SECONDS - start))
  SUMMARY+=$(printf '  %-10s %3ds' "$step" "$elapsed")$'\n'
done

echo "==> step timings"
printf '%s' "$SUMMARY"
echo "==> CI pipeline passed"
