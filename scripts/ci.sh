#!/usr/bin/env bash
# Full CI pipeline, runnable offline on any checkout:
#
#   1. tier-1 gate   — lockfile freshness, fmt --check, release build,
#                      tests, clippy -D warnings + escalated panic lints,
#                      darlint --check (scripts/tier1.sh)
#   2. darlint JSON  — re-runs the invariant lint with --json, writing the
#                      machine-readable report next to the bench artifacts
#                      (target/ci/darlint.json); any violation fails the
#                      pipeline
#   3. docs          — rustdoc must build cleanly (missing_docs is denied
#                      in the crates, so this catches broken intra-doc
#                      links and malformed examples)
#   4. bench smoke   — the parallel/batching benchmark in --fast mode,
#                      compared against the committed BENCH_parallel.json
#                      baseline; any speedup_* ratio more than 15% below
#                      baseline fails the build, as does missing the
#                      hardware-scaled absolute floors (--check)
#   5. zero-alloc    — the workspace inference benchmark in --fast mode,
#                      compared against the committed BENCH_inference.json
#                      baseline; the warm *_into paths must perform 0 heap
#                      allocations per call and keep the single-step
#                      speedup ≥1.15× (--check)
#   6. chaos         — the crash-tolerance harness in --fast mode,
#                      compared against the committed BENCH_chaos.json
#                      baseline; seeded controller kills with torn tail
#                      writes must recover with zero acked samples lost,
#                      deterministically, within the replay time budget,
#                      and overload must shed low-priority streams first
#                      (--check)
#
# The workspace vendors every dependency, so the whole pipeline runs with
# the network off; CARGO_NET_OFFLINE makes cargo fail fast if anything
# ever tries to reach out.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> tier-1 gate (fmt, build, test, clippy, darlint)"
scripts/tier1.sh

echo "==> darlint JSON report"
mkdir -p target/ci
cargo run --locked -q -p xtask -- lint --check --json --out target/ci/darlint.json

echo "==> doc build"
cargo doc --workspace --no-deps --locked --quiet

echo "==> bench smoke + regression compare"
mkdir -p target/ci
cargo run --release --locked -p darnet-bench --bin bench_parallel -- \
  --fast --json \
  --out target/ci/BENCH_parallel.json \
  --compare BENCH_parallel.json \
  --check

echo "==> zero-alloc inference gate"
cargo run --release --locked -p darnet-bench --bin bench_inference -- \
  --fast --json \
  --out target/ci/BENCH_inference.json \
  --compare BENCH_inference.json \
  --check

echo "==> chaos recovery gate"
cargo run --release --locked -p darnet-bench --bin bench_chaos -- \
  --fast --json \
  --out target/ci/BENCH_chaos.json \
  --compare BENCH_chaos.json \
  --check

echo "==> CI pipeline passed"
