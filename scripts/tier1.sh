#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite, and a
# warnings-as-errors clippy pass over the whole workspace. Run from
# anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

# A stale lockfile would make every cargo invocation below resolve (or
# refuse to run) differently than CI sees it; fail loudly up front
# instead of letting a later step die with a confusing message.
if ! cargo metadata --locked --format-version 1 >/dev/null 2>&1; then
  echo "tier1: Cargo.lock is stale or missing — regenerate it (cargo update -w) and commit it" >&2
  exit 1
fi

cargo fmt --all --check
cargo build --release --locked
cargo test -q --locked
cargo clippy --workspace --locked -- -D warnings
