#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a warnings-as-errors
# clippy pass over the whole workspace. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
