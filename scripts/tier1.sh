#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite, a
# warnings-as-errors clippy pass over the whole workspace (escalated with
# panic-hunting lints on the hot-path crates), and the darlint invariant
# pass (see DESIGN.md §11). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

# A stale lockfile would make every cargo invocation below resolve (or
# refuse to run) differently than CI sees it; fail loudly up front
# instead of letting a later step die with a confusing message.
if ! cargo metadata --locked --format-version 1 >/dev/null 2>&1; then
  echo "tier1: Cargo.lock is stale or missing — regenerate it (cargo update -w) and commit it" >&2
  exit 1
fi

cargo fmt --all --check
cargo build --release --locked
cargo test -q --locked
cargo clippy --workspace --locked -- -D warnings

# Escalated pass on the hot-path crates AND the linter itself: panics in
# non-test code are build errors (clippy.toml exempts tests). darlint's
# token-level pass enforces the same invariant with allowlists and
# justification-bearing escape hatches; clippy catches the semantic cases
# a token-level pass cannot see. xtask is included so the tool is held to
# the rules it enforces.
cargo clippy --locked -p darnet-tensor -p darnet-nn -p darnet-core -p darnet-collect \
  -p xtask \
  --all-targets -- -D warnings \
  -D clippy::unwrap_used -D clippy::expect_used -D clippy::dbg_macro

# darlint: the in-repo invariant lint (no-panic-paths, deterministic-time,
# scoped-threads-only, crate-hygiene, hot-alloc, hot-propagate,
# nondet-order, durable-io, rng-confined, and the effect-inference-backed
# replay-pure contract rule), held to the committed ratchet baseline.
# Per-pass timings print to stderr so analyzer cost regressions show up.
cargo run --locked -q -p xtask -- lint --check --ratchet darlint.ratchet.json
