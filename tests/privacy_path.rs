//! Integration tests for the privacy-preserving path: distortion,
//! distillation, wire-size accounting, and the engine's private
//! classification route.

use darnet::collect::{encode_batch, Batch, SensorReading, StampedReading};
use darnet::core::dataset::frames_to_tensor;
use darnet::core::models::{CnnConfig, FrameCnn};
use darnet::core::privacy::{distill_dcnn, DistillConfig, Downsampler, PrivacyLevel};
use darnet::sim::{DrivingWorld, ExtendedBehavior, Frame, WorldConfig};

fn small_privacy_setup() -> (DrivingWorld, Vec<Frame>, Vec<usize>) {
    let world = DrivingWorld::new(WorldConfig {
        drivers: 3,
        ..WorldConfig::default()
    });
    let mut frames = Vec::new();
    let mut labels = Vec::new();
    // Use a visually distinct 4-class subset of the extended taxonomy so
    // the tiny test model converges quickly.
    let classes = [
        ExtendedBehavior::NormalDriving,
        ExtendedBehavior::Drinking,
        ExtendedBehavior::Hair,
        ExtendedBehavior::ReachingSide,
    ];
    // Interleave classes so a contiguous 80/20 split stays stratified.
    for k in 0..40 {
        for (ci, &c) in classes.iter().enumerate() {
            frames.push(world.render_extended_frame(k % 3, c, k as f64 * 0.7));
            labels.push(ci);
        }
    }
    (world, frames, labels)
}

#[test]
fn distillation_transfers_teacher_behaviour_to_student() {
    let (_, frames, labels) = small_privacy_setup();
    let n_train = frames.len() * 4 / 5;
    let mut teacher = FrameCnn::new(
        CnnConfig {
            classes: 4,
            width: 0.75,
            ..CnnConfig::default()
        },
        11,
    );
    let train = frames_to_tensor(&frames[..n_train]).unwrap();
    teacher.fit(&train, &labels[..n_train], 12).unwrap();
    let eval = frames_to_tensor(&frames[n_train..]).unwrap();
    let teacher_acc = teacher.evaluate(&eval, &labels[n_train..]).unwrap();
    assert!(teacher_acc > 0.45, "teacher too weak: {teacher_acc}");

    let mut student = distill_dcnn(
        &mut teacher,
        &frames[..n_train],
        PrivacyLevel::Low,
        &DistillConfig {
            epochs: 5,
            ..DistillConfig::default()
        },
        13,
    )
    .unwrap();
    let ds = Downsampler::new(48);
    let eval_distorted = ds
        .roundtrip_tensor(&frames[n_train..], PrivacyLevel::Low)
        .unwrap();
    let student_acc = student
        .evaluate(&eval_distorted, &labels[n_train..])
        .unwrap();
    // dCNN-L keeps most of the teacher's accuracy (paper: it can even
    // exceed it).
    assert!(
        student_acc > teacher_acc * 0.6,
        "student {student_acc} vs teacher {teacher_acc}"
    );
}

#[test]
fn higher_privacy_levels_degrade_gracefully_in_pixels() {
    let (world, _, _) = small_privacy_setup();
    let frame = world.render_extended_frame(0, ExtendedBehavior::Drinking, 1.0);
    let ds = Downsampler::new(48);
    let mut prev_err = 0.0f32;
    for level in PrivacyLevel::ALL {
        let rt = ds.roundtrip(&frame, level);
        let err: f32 = frame
            .pixels()
            .iter()
            .zip(rt.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err > prev_err, "distortion not monotone at {level}");
        prev_err = err;
    }
}

#[test]
fn wire_savings_match_data_reduction_factors() {
    let frame = Frame::new(48, 48);
    let ds = Downsampler::new(48);
    let wire = |f: &Frame| {
        encode_batch(&Batch {
            agent_id: 0,
            seq: 0,
            readings: vec![StampedReading {
                timestamp: 0.0,
                reading: SensorReading::Frame(f.clone()),
            }],
        })
        .len() as f64
    };
    let overhead = wire(&Frame::new(1, 1)) - 1.0;
    let full = wire(&frame) - overhead;
    for level in PrivacyLevel::ALL {
        let small = wire(&ds.distort(&frame, level)) - overhead;
        let ratio = full / small;
        assert!(
            (ratio - level.data_reduction() as f64).abs() < 0.01,
            "{level}: wire ratio {ratio}"
        );
    }
}

#[test]
fn figure4_artifacts_are_written() {
    let dir = std::env::temp_dir().join("darnet_fig4_test");
    std::fs::create_dir_all(&dir).unwrap();
    let paths = darnet::core::experiment::run_fig4(&dir, 42).unwrap();
    assert_eq!(paths.len(), 4);
    for p in &paths {
        let data = std::fs::read(p).unwrap();
        assert!(data.starts_with(b"P5\n"), "{} not a PGM", p.display());
    }
    // Full frame is 48x48; dCNN-H is 4x4.
    let full = std::fs::read(&paths[0]).unwrap();
    let high = std::fs::read(&paths[3]).unwrap();
    assert!(full.len() > high.len() * 50);
}
