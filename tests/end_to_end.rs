//! End-to-end integration tests spanning every crate: world → collection
//! middleware → dataset → models → ensemble → engine.

use std::sync::Arc;

use darnet::collect::runtime::{run_campaign, CampaignConfig};
use darnet::core::dataset::{MultimodalDataset, IMU_FEATURES, WINDOW_LEN};
use darnet::core::experiment::{
    run_ablation_combiner, table2_from_stack, train_stack_on, ExperimentConfig,
};
use darnet::core::{AnalyticsEngine, EngineConfig, ImuModelSlot};
use darnet::sim::schedule::{build_schedule, ScheduleConfig};
use darnet::sim::{Behavior, DrivingWorld, WorldConfig};
use darnet::tensor::Tensor;

fn small_campaign() -> (MultimodalDataset, ExperimentConfig) {
    let config = ExperimentConfig {
        scale: 0.015,
        cnn_epochs: 4,
        rnn_epochs: 4,
        ..ExperimentConfig::fast()
    };
    let world = Arc::new(DrivingWorld::new(WorldConfig {
        drivers: config.drivers,
        seed: config.seed,
        ..WorldConfig::default()
    }));
    let schedule = build_schedule(&ScheduleConfig {
        drivers: config.drivers,
        scale: config.scale,
        ..ScheduleConfig::default()
    });
    let recordings = run_campaign(
        &world,
        &schedule,
        &CampaignConfig {
            seed: config.seed ^ 0xCA11,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign runs");
    let dataset =
        MultimodalDataset::from_recordings(&recordings, &schedule).expect("dataset builds");
    (dataset, config)
}

#[test]
fn campaign_to_dataset_is_deterministic() {
    let (a, _) = small_campaign();
    let (b, _) = small_campaign();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.class_counts(), b.class_counts());
    assert_eq!(a.samples()[0], b.samples()[0]);
}

#[test]
fn dataset_covers_all_classes_with_windows() {
    let (dataset, _) = small_campaign();
    assert!(dataset.len() > 400, "dataset too small: {}", dataset.len());
    let counts = dataset.class_counts();
    for (i, &c) in counts.iter().enumerate() {
        assert!(c > 0, "class {i} missing");
    }
    // Table-1 proportionality: reaching has the most frames, hair the
    // fewest.
    assert!(counts[5] > counts[4]);
    for s in dataset.samples() {
        assert_eq!(s.imu_window.len(), WINDOW_LEN * IMU_FEATURES);
    }
}

#[test]
fn full_stack_ensemble_beats_cnn_alone() {
    let (dataset, config) = small_campaign();
    let stack = train_stack_on(&config, dataset).expect("stack trains");
    let report = table2_from_stack(&stack).expect("report computes");
    // The paper's central claim: adding the IMU modality through the
    // Bayesian combiner significantly outperforms the frame-only CNN.
    assert!(
        report.top1_cnn_rnn > report.top1_cnn + 0.05,
        "ensemble {} vs cnn {}",
        report.top1_cnn_rnn,
        report.top1_cnn
    );
    // IMU-only models are strong on 3 classes.
    assert!(report.imu_rnn_top1 > 0.8, "rnn imu {}", report.imu_rnn_top1);
    assert!(report.imu_svm_top1 > 0.8, "svm imu {}", report.imu_svm_top1);
    // Confusion matrices are over the same eval set.
    assert_eq!(report.cm_cnn.total(), report.cm_cnn_rnn.total());
}

#[test]
fn combiner_ablation_orders_strategies() {
    let (dataset, config) = small_campaign();
    let stack = train_stack_on(&config, dataset).expect("stack trains");
    let ab = run_ablation_combiner(&stack).expect("ablation runs");
    // Any fusion beats no fusion on this dataset.
    assert!(ab.bayesian > ab.cnn_only);
    assert!(ab.product > ab.cnn_only);
}

#[test]
fn engine_classifies_held_out_steps_end_to_end() {
    let (dataset, config) = small_campaign();
    let stack = train_stack_on(&config, dataset).expect("stack trains");
    let eval = stack.eval.clone();
    let mut engine = AnalyticsEngine::new(
        stack.cnn,
        ImuModelSlot::Rnn(stack.rnn),
        stack.bn_rnn,
        EngineConfig::default(),
    );
    let mut correct = 0;
    let n = eval.len().min(40);
    for sample in eval.samples().iter().take(n) {
        let window = Tensor::from_vec(sample.imu_window.clone(), &[1, WINDOW_LEN, IMU_FEATURES])
            .expect("window shape");
        let out = engine
            .classify_step(&sample.frame, &window)
            .expect("classifies");
        assert!((out.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        if out.behavior == sample.behavior {
            correct += 1;
        }
    }
    assert!(
        correct as f64 / n as f64 > 0.5,
        "engine accuracy too low: {correct}/{n}"
    );
}

#[test]
fn svm_slot_works_in_engine() {
    let (dataset, config) = small_campaign();
    let stack = train_stack_on(&config, dataset).expect("stack trains");
    let eval = stack.eval.clone();
    let mut engine = AnalyticsEngine::new(
        stack.cnn,
        ImuModelSlot::Svm(stack.svm),
        stack.bn_svm,
        EngineConfig::default(),
    );
    let sample = &eval.samples()[0];
    let window = Tensor::from_vec(sample.imu_window.clone(), &[1, WINDOW_LEN, IMU_FEATURES])
        .expect("window shape");
    let out = engine
        .classify_step(&sample.frame, &window)
        .expect("classifies");
    assert_eq!(out.imu_probs.len(), 3);
}

#[test]
fn behaviors_imu_mapping_consistency_through_pipeline() {
    let (dataset, _) = small_campaign();
    for s in dataset.samples() {
        // Table-1 invariant: only talking/texting carry task-specific IMU.
        match s.behavior {
            Behavior::Talking => assert_eq!(s.imu_class().index(), 1),
            Behavior::Texting => assert_eq!(s.imu_class().index(), 2),
            _ => assert_eq!(s.imu_class().index(), 0),
        }
    }
}
