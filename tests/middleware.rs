//! Integration tests for the collection middleware under adverse
//! conditions: clock drift, network jitter/loss, reordering, and the live
//! threaded mode.

use std::sync::Arc;

use darnet::collect::live::run_live_session;
use darnet::collect::runtime::{run_campaign, run_session, CampaignConfig};
use darnet::collect::{ClockConfig, ControllerConfig, LinkConfig, RetransmitConfig};
use darnet::core::experiment::{run_ablation_clocksync, ExperimentConfig};
use darnet::sim::{Behavior, DrivingWorld, Segment, WorldConfig};

fn world() -> Arc<DrivingWorld> {
    Arc::new(DrivingWorld::new(WorldConfig::default()))
}

fn script(duration: f64) -> Vec<Segment<Behavior>> {
    vec![
        Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 0.0,
            duration,
        },
        Segment {
            driver: 0,
            behavior: Behavior::NormalDriving,
            start: duration,
            duration,
        },
    ]
}

#[test]
fn grid_density_matches_configured_rate() {
    let rec = run_session(&world(), 0, &script(8.0), &CampaignConfig::default()).unwrap();
    // 16 s at 4 Hz ≈ 64 grid points (±edge effects).
    assert!(
        (58..=68).contains(&rec.imu.len()),
        "grid points {}",
        rec.imu.len()
    );
    // Frames at 4 fps over 16 s ≈ 64.
    assert!((58..=68).contains(&rec.frames.len()));
}

#[test]
fn harsh_network_still_produces_aligned_output() {
    let config = CampaignConfig {
        link: LinkConfig {
            base_latency: 0.05,
            jitter: 0.08,
            loss: 0.3,
            ..LinkConfig::default()
        },
        ..CampaignConfig::default()
    };
    let rec = run_session(&world(), 0, &script(8.0), &config).unwrap();
    assert!(!rec.imu.is_empty());
    // Grid timestamps remain strictly increasing despite loss/reordering.
    assert!(rec.imu.windows(2).all(|w| w[0].t < w[1].t));
}

#[test]
fn terrible_clocks_are_tamed_by_sync() {
    let config = CampaignConfig {
        clock: ClockConfig {
            max_initial_offset: 2.0,
            max_drift: 2e-3, // 2000 ppm — an awful oscillator
        },
        ..CampaignConfig::default()
    };
    let rec = run_session(&world(), 0, &script(8.0), &config).unwrap();
    // With the 5 s sync protocol the residual error stays bounded by
    // drift × sync period + jitter ≈ 2e-3·5 + 0.01 ≈ 20 ms.
    assert!(
        rec.max_clock_error < 0.05,
        "clock error {}",
        rec.max_clock_error
    );
}

#[test]
fn clocksync_ablation_has_large_effect_size() {
    let config = ExperimentConfig {
        scale: 0.01,
        ..ExperimentConfig::fast()
    };
    let ab = run_ablation_clocksync(&config).unwrap();
    // Without sync, errors are dominated by the initial offset (up to
    // 250 ms); with sync they collapse to the jitter scale.
    assert!(ab.max_error_unsynced > 0.02);
    assert!(ab.max_error_synced < ab.max_error_unsynced);
}

#[test]
fn campaign_output_is_stable_across_runs() {
    let config = CampaignConfig::default();
    let a = run_campaign(&world(), &script(5.0), &config).unwrap();
    let b = run_campaign(&world(), &script(5.0), &config).unwrap();
    assert_eq!(a, b);
}

#[test]
fn total_camera_outage_still_yields_imu_stream() {
    // Failure injection: the camera link is dead for the whole session
    // (loss = 1.0 on both links would starve everything, so model the
    // outage as extreme loss — a few frames may straggle through, most
    // don't). The IMU path must keep producing an aligned stream.
    // An outage is unrecoverable: run the fire-and-forget transport so the
    // dead link shows up as gaps instead of being healed by retries.
    let config = CampaignConfig {
        link: LinkConfig {
            base_latency: 0.015,
            jitter: 0.01,
            loss: 0.95,
            ..LinkConfig::default()
        },
        retransmit: RetransmitConfig::disabled(),
        ..CampaignConfig::default()
    };
    let rec = run_session(&world(), 0, &script(8.0), &config).unwrap();
    let healthy = run_session(&world(), 0, &script(8.0), &CampaignConfig::default()).unwrap();
    assert!(rec.frames.len() < healthy.frames.len() / 4);
    assert!(!rec.imu.is_empty());
}

#[test]
fn tsdb_rollups_reflect_session_dynamics() {
    // The controller's store supports statsd-style rollups; the
    // accelerometer magnitude variance should be visible per bucket.
    use darnet::collect::live::run_live_session;
    use darnet::collect::Aggregation;
    let live =
        run_live_session(&world(), 0, &script(6.0), 12.0, ControllerConfig::default()).unwrap();
    let buckets = live
        .controller
        .tsdb()
        .rollup("imu.0", 0.0, 12.0, 3.0, Aggregation::Mean)
        .unwrap();
    assert!(buckets.len() >= 3, "expected several rollup buckets");
    let counts = live
        .controller
        .tsdb()
        .rollup("imu.0", 0.0, 12.0, 3.0, Aggregation::Count)
        .unwrap();
    // 40 Hz for 3 s per bucket ≈ 120 points.
    for &(_, c) in &counts {
        assert!(c > 60.0, "bucket count {c}");
    }
}

#[test]
fn live_threaded_mode_agrees_with_event_driven_grid() {
    let rec = run_session(&world(), 0, &script(5.0), &CampaignConfig::default()).unwrap();
    let live =
        run_live_session(&world(), 0, &script(5.0), 10.0, ControllerConfig::default()).unwrap();
    let live_grid = live.controller.aligned_imu().unwrap();
    // Same virtual duration → comparable grid density (live mode has no
    // network model, so counts differ only at the edges).
    let diff = (rec.imu.len() as i64 - live_grid.len() as i64).abs();
    assert!(
        diff <= 4,
        "event {} vs live {}",
        rec.imu.len(),
        live_grid.len()
    );
}
