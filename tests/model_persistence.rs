//! Integration test: a trained stack survives a save/load round-trip with
//! bit-identical behaviour — the contract behind the paper's promise to
//! release its learning models.

use darnet::collect::runtime::{run_campaign, CampaignConfig};
use darnet::core::dataset::MultimodalDataset;
use darnet::core::experiment::{train_stack_on, ExperimentConfig};
use darnet::core::models::{CnnConfig, FrameCnn, ImuRnn, RnnConfig};
use darnet::sim::schedule::{build_schedule, ScheduleConfig};
use darnet::sim::{DrivingWorld, WorldConfig};
use std::sync::Arc;

#[test]
fn trained_models_roundtrip_through_weight_files() {
    let config = ExperimentConfig {
        scale: 0.01,
        cnn_epochs: 2,
        rnn_epochs: 2,
        ..ExperimentConfig::fast()
    };
    let world = Arc::new(DrivingWorld::new(WorldConfig {
        drivers: config.drivers,
        seed: config.seed,
        ..WorldConfig::default()
    }));
    let schedule = build_schedule(&ScheduleConfig {
        drivers: config.drivers,
        scale: config.scale,
        ..ScheduleConfig::default()
    });
    let recordings = run_campaign(
        &world,
        &schedule,
        &CampaignConfig {
            seed: config.seed ^ 0xCA11,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    let dataset = MultimodalDataset::from_recordings(&recordings, &schedule).unwrap();
    let mut stack = train_stack_on(&config, dataset).unwrap();

    let dir = std::env::temp_dir().join("darnet_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cnn_path = dir.join("cnn.dnwt");
    let rnn_path = dir.join("rnn.dnwt");
    stack.cnn.save_weights(&cnn_path).unwrap();
    stack.rnn.save_weights(&rnn_path).unwrap();

    // Fresh models, different seeds, same architecture.
    let mut cnn2 = FrameCnn::new(
        CnnConfig {
            input_size: config.frame_size,
            classes: 6,
            width: config.cnn_width,
            ..CnnConfig::default()
        },
        999,
    );
    cnn2.load_weights(&cnn_path).unwrap();
    let mut rnn2 = ImuRnn::new(
        RnnConfig {
            hidden: config.rnn_hidden,
            depth: config.rnn_depth,
            ..RnnConfig::default()
        },
        998,
    );
    rnn2.load_weights(&rnn_path).unwrap();

    let eval_frames = stack.eval.frames_tensor().unwrap();
    let eval_windows = stack.eval.imu_tensor().unwrap();
    assert_eq!(
        stack.cnn.predict_proba(&eval_frames).unwrap(),
        cnn2.predict_proba(&eval_frames).unwrap()
    );
    assert_eq!(
        stack.rnn.predict_proba(&eval_windows).unwrap(),
        rnn2.predict_proba(&eval_windows).unwrap()
    );
}
