//! Privacy pipeline (paper §4.3, Figure 3): frames are down-sampled on
//! the device before transmission; the server picks the matching dCNN
//! student (trained by unsupervised distillation) for classification.
//! Prints the bandwidth ledger and the accuracy/privacy trade-off.
//!
//! ```text
//! cargo run --release --example privacy_pipeline
//! ```

use std::error::Error;

use darnet::collect::{encode_batch, Batch, SensorReading, StampedReading};
use darnet::core::dataset::frames_to_tensor;
use darnet::core::models::{CnnConfig, FrameCnn};
use darnet::core::privacy::{distill_dcnn, DistillConfig, Downsampler, PrivacyLevel};
use darnet::sim::{DrivingWorld, ExtendedBehavior, Frame, WorldConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let world = DrivingWorld::new(WorldConfig {
        drivers: 4,
        ..WorldConfig::default()
    });

    // A small labeled dataset over a distinctive subset of the paper's
    // 18-class extended taxonomy (the full Table-3 run lives in
    // `repro_table3`). Classes are interleaved so the contiguous split
    // stays stratified.
    let classes = [
        ExtendedBehavior::NormalDriving,
        ExtendedBehavior::Drinking,
        ExtendedBehavior::Hair,
        ExtendedBehavior::ReachingSide,
        ExtendedBehavior::ReachingBack,
        ExtendedBehavior::Smoking,
    ];
    let mut frames: Vec<Frame> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for k in 0..30 {
        for (ci, &c) in classes.iter().enumerate() {
            let driver = k % 4;
            frames.push(world.render_extended_frame(driver, c, k as f64 * 0.9));
            labels.push(ci);
        }
    }
    let n_train = frames.len() * 4 / 5;
    println!(
        "dataset: {} frames, {} train / {} eval",
        frames.len(),
        n_train,
        frames.len() - n_train
    );

    // Teacher CNN at full resolution.
    let mut teacher = FrameCnn::new(
        CnnConfig {
            classes: 6,
            width: 0.75,
            ..CnnConfig::default()
        },
        7,
    );
    let train_tensor = frames_to_tensor(&frames[..n_train])?;
    println!("training teacher CNN...");
    teacher.fit(&train_tensor, &labels[..n_train], 10)?;
    let eval_tensor = frames_to_tensor(&frames[n_train..])?;
    let teacher_acc = teacher.evaluate(&eval_tensor, &labels[n_train..])?;
    println!(
        "teacher top-1 on held-out frames: {:.1}%\n",
        teacher_acc * 100.0
    );

    // Bandwidth ledger: what each privacy level costs on the wire.
    let sample_frame = &frames[0];
    let wire_size = |f: &Frame| {
        encode_batch(&Batch {
            agent_id: 0,
            seq: 0,
            readings: vec![StampedReading {
                timestamp: 0.0,
                reading: SensorReading::Frame(f.clone()),
            }],
        })
        .len()
    };
    let downsampler = Downsampler::new(sample_frame.width());
    let full_bytes = wire_size(sample_frame);
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "level", "pixels", "wire bytes", "reduction"
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "full", "48x48", full_bytes, "1x"
    );
    for level in PrivacyLevel::ALL {
        let small = downsampler.distort(sample_frame, level);
        let bytes = wire_size(&small);
        println!(
            "{:<10} {:>10} {:>12} {:>11}x",
            level.model_name(),
            format!("{}x{}", small.width(), small.height()),
            bytes,
            level.data_reduction()
        );
    }

    // Distill one student per level (unsupervised — only teacher outputs)
    // and measure the accuracy each privacy level retains.
    println!("\ndistilling dCNN students (unsupervised, L2 against teacher outputs)...");
    let unlabeled: Vec<Frame> = frames[..n_train].to_vec();
    println!("{:<10} {:>10}", "model", "top-1");
    println!("{:<10} {:>9.1}%", "CNN", teacher_acc * 100.0);
    for level in PrivacyLevel::ALL {
        let mut student = distill_dcnn(
            &mut teacher,
            &unlabeled,
            level,
            &DistillConfig {
                epochs: 3,
                ..DistillConfig::default()
            },
            100 + level.divisor() as u64,
        )?;
        let distorted = downsampler.roundtrip_tensor(&frames[n_train..], level)?;
        let acc = student.evaluate(&distorted, &labels[n_train..])?;
        println!("{:<10} {:>9.1}%", level.model_name(), acc * 100.0);
    }
    Ok(())
}
