//! Quickstart: collect a short two-modality session through the DarNet
//! middleware, train a small stack, and classify live time-steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use darnet::collect::runtime::{run_campaign, CampaignConfig};
use darnet::core::dataset::MultimodalDataset;
use darnet::core::experiment::{train_stack_on, ExperimentConfig};
use darnet::core::{AnalyticsEngine, EngineConfig, ImuModelSlot};
use darnet::sim::{Behavior, DrivingWorld, Segment, WorldConfig};
use darnet::tensor::Tensor;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A synthetic world: 5 drivers, dash camera + phone IMU.
    let world = Arc::new(DrivingWorld::new(WorldConfig::default()));

    // 2. A scripted collection session per the paper's protocol
    //    (passenger-instructed 15 s distraction segments).
    let mut schedule = Vec::new();
    for driver in 0..world.driver_count() {
        let mut t = 0.0;
        for &behavior in Behavior::ALL.iter() {
            schedule.push(Segment {
                driver,
                behavior,
                start: t,
                duration: 15.0,
            });
            t += 15.0;
        }
    }

    // 3. Run the collection campaign: agents poll every 25 ms, timestamp
    //    with drifting clocks, batch over a jittery link; the controller
    //    re-syncs clocks every 5 s, re-orders, interpolates to 4 Hz, and
    //    smooths.
    println!("collecting {} driver sessions...", world.driver_count());
    let recordings = run_campaign(&world, &schedule, &CampaignConfig::default())?;
    let dataset = MultimodalDataset::from_recordings(&recordings, &schedule)?;
    println!(
        "collected {} multimodal samples ({} per class on average)",
        dataset.len(),
        dataset.len() / 6
    );

    // 4. Train the full DarNet stack (CNN + BiLSTM + SVM + Bayesian
    //    combiners) on an 80/20 split.
    let config = ExperimentConfig {
        cnn_epochs: 5,
        rnn_epochs: 5,
        ..ExperimentConfig::fast()
    };
    println!("training CNN, BiLSTM, SVM and Bayesian combiners...");
    let stack = train_stack_on(&config, dataset)?;

    // 5. Assemble the analytics engine and classify held-out time-steps
    //    through the session API, exactly as the deployed system would
    //    per frame: one reused window tensor, one reused result vector,
    //    and the engine's own workspace behind them. After the first call
    //    warms the buffer pool, every subsequent step runs without a
    //    single heap allocation (DESIGN.md §12).
    let eval = stack.eval.clone();
    let mut engine = AnalyticsEngine::new(
        stack.cnn,
        ImuModelSlot::Rnn(stack.rnn),
        stack.bn_rnn,
        EngineConfig::default(),
    );
    let mut window = Tensor::zeros(&[
        1,
        darnet::core::dataset::WINDOW_LEN,
        darnet::core::dataset::IMU_FEATURES,
    ]);
    let mut result = Vec::new();
    let mut correct = 0;
    let shown = eval.len().min(10);
    for (i, sample) in eval.samples().iter().take(shown).enumerate() {
        window.data_mut().copy_from_slice(&sample.imu_window);
        engine.classify_step_into(&sample.frame, &window, &mut result)?;
        let step = &result[0];
        let ok = step.behavior == sample.behavior;
        if ok {
            correct += 1;
        }
        println!(
            "step {i}: true={:<16} predicted={:<16} confidence={:.2} {}",
            sample.behavior.name(),
            step.behavior.name(),
            step.scores.iter().cloned().fold(0.0f32, f32::max),
            if ok { "ok" } else { "MISS" }
        );
    }
    let (hits, misses) = engine.workspace_stats();
    println!("\n{correct}/{shown} correct on the first held-out steps");
    println!(
        "workspace: {hits} pooled checkouts, {misses} cold allocations \
         (cold count stops growing after the first step)"
    );
    Ok(())
}
