//! The controller's processing decision (paper §3.2): sweep network
//! conditions and privacy preferences and print where DarNet would run the
//! analytics engine — locally on the device, or remotely at which frame
//! distortion level.
//!
//! ```text
//! cargo run --release --example processing_decision
//! ```

use darnet::collect::{
    decide_processing, LinkObservation, PrivacyPreference, ProcessingSite, SiteCapabilities,
};

fn site_label(site: ProcessingSite) -> String {
    match site {
        ProcessingSite::Local => "local".to_string(),
        ProcessingSite::Remote {
            distortion_divisor: 1,
        } => "remote (full res)".to_string(),
        ProcessingSite::Remote { distortion_divisor } => {
            format!("remote (1/{distortion_divisor} res)")
        }
    }
}

fn main() {
    let caps = SiteCapabilities::default();
    let networks = [
        (
            "wifi direct",
            LinkObservation {
                latency: 0.015,
                bandwidth: 2_000_000.0,
                loss: 0.0,
            },
        ),
        (
            "good LTE",
            LinkObservation {
                latency: 0.050,
                bandwidth: 250_000.0,
                loss: 0.01,
            },
        ),
        (
            "weak LTE",
            LinkObservation {
                latency: 0.120,
                bandwidth: 12_000.0,
                loss: 0.05,
            },
        ),
        (
            "edge of coverage",
            LinkObservation {
                latency: 0.350,
                bandwidth: 2_000.0,
                loss: 0.25,
            },
        ),
        (
            "tunnel",
            LinkObservation {
                latency: 3.000,
                bandwidth: 100.0,
                loss: 0.60,
            },
        ),
    ];
    let preferences = [
        ("no privacy floor", PrivacyPreference::None),
        ("low privacy", PrivacyPreference::Low),
        ("high privacy", PrivacyPreference::High),
    ];

    println!(
        "frame period {:.0} ms, local inference {:.0} ms, remote inference {:.0} ms\n",
        caps.frame_period * 1000.0,
        caps.local_inference * 1000.0,
        caps.remote_inference * 1000.0
    );
    print!("{:<18}", "network \\ privacy");
    for (name, _) in &preferences {
        print!(" {name:>20}");
    }
    println!();
    for (net_name, link) in &networks {
        print!("{net_name:<18}");
        for (_, pref) in &preferences {
            let site = decide_processing(link, &caps, *pref);
            print!(" {:>20}", site_label(site));
        }
        println!();
    }
    println!(
        "\nThe privacy preference is a hard floor on transmitted resolution; the\n\
         decision then picks the least-distorted remote level that still meets\n\
         the frame deadline, falling back to on-device inference when the\n\
         network cannot carry even the smallest frames in time."
    );
}
