//! Fleet-monitoring scenario (the paper's motivating use case: "real-time
//! alerts to drivers and fleet managers"): run per-driver sessions, score
//! every time-step with the trained engine, and produce a per-driver
//! distraction report with alert windows.
//!
//! ```text
//! cargo run --release --example fleet_monitoring
//! ```

use std::error::Error;

use darnet::core::alerts::{AlertEvent, AlertPolicy, AlertTracker};
use darnet::core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet::core::experiment::{train_stack, ExperimentConfig};
use darnet::core::{AnalyticsEngine, EngineConfig, ImuModelSlot};
use darnet::sim::Behavior;
use darnet::tensor::Tensor;

fn main() -> Result<(), Box<dyn Error>> {
    // Train the stack on a collected campaign (reduced scale so the demo
    // finishes quickly; use ExperimentConfig::paper() for the full run).
    let config = ExperimentConfig {
        cnn_epochs: 5,
        rnn_epochs: 5,
        ..ExperimentConfig::fast()
    };
    println!("training fleet model on a collection campaign...");
    let stack = train_stack(&config)?;
    let eval = stack.eval.clone();
    let mut engine = AnalyticsEngine::new(
        stack.cnn,
        ImuModelSlot::Rnn(stack.rnn),
        stack.bn_rnn,
        EngineConfig::default(),
    );

    // Score the held-out steps per driver, tracking distraction episodes.
    let drivers: Vec<usize> = {
        let mut d: Vec<usize> = eval.samples().iter().map(|s| s.driver).collect();
        d.sort_unstable();
        d.dedup();
        d
    };
    println!(
        "\nfleet report ({} drivers, {} scored steps)",
        drivers.len(),
        eval.len()
    );
    println!(
        "{:<8} {:>8} {:>12} {:>14} {:>12}",
        "driver", "steps", "distracted", "worst class", "alerts"
    );
    for driver in drivers {
        let mut steps = 0usize;
        let mut distracted = 0usize;
        let mut per_class = [0usize; 6];
        // Debounced alerting: 3 consecutive distracted classifications
        // (~0.75 s at 4 Hz) raise an alert; 4 normal ones clear it.
        let mut tracker = AlertTracker::new(AlertPolicy::default());
        for sample in eval.samples().iter().filter(|s| s.driver == driver) {
            let window =
                Tensor::from_vec(sample.imu_window.clone(), &[1, WINDOW_LEN, IMU_FEATURES])?;
            let result = engine.classify_step(&sample.frame, &window)?;
            steps += 1;
            if result.behavior != Behavior::NormalDriving {
                distracted += 1;
                per_class[result.behavior.index()] += 1;
            }
            if let AlertEvent::Raised(_) = tracker.observe(&result) {
                // Alert delivery would go to the driver/fleet dashboard.
            }
        }
        let alerts = tracker.raised_total();
        let worst = per_class
            .iter()
            .enumerate()
            .skip(1)
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| Behavior::from_index(i).expect("valid index").name())
            .unwrap_or("-");
        println!(
            "{:<8} {:>8} {:>11.1}% {:>14} {:>12}",
            driver,
            steps,
            distracted as f64 / steps.max(1) as f64 * 100.0,
            worst,
            alerts
        );
    }
    println!("\n(distraction rates are high because the evaluation split follows the paper's scripted-distraction protocol)");
    Ok(())
}
