//! Live middleware demo (paper Figures 1–2): collection agents on real
//! threads stream encoded batches over channels to the centralized
//! controller, which synchronizes, aligns, smooths, and stores the data —
//! then reports what crossed the wire.
//!
//! ```text
//! cargo run --release --example live_pipeline
//! ```

use std::error::Error;
use std::sync::Arc;

use darnet::collect::live::run_live_session;
use darnet::collect::ControllerConfig;
use darnet::sim::{Behavior, DrivingWorld, Segment, WorldConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
    // One driver performing three scripted 10-second tasks.
    let segments = vec![
        Segment {
            driver: 0,
            behavior: Behavior::NormalDriving,
            start: 0.0,
            duration: 10.0,
        },
        Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 10.0,
            duration: 10.0,
        },
        Segment {
            driver: 0,
            behavior: Behavior::Talking,
            start: 20.0,
            duration: 10.0,
        },
    ];
    let duration = 30.0;

    println!("starting camera + IMU agents on worker threads...");
    let report = run_live_session(&world, 0, &segments, duration, ControllerConfig::default())?;

    let (batches, readings) = report.controller.ingest_stats();
    println!("controller ingested {batches} batches / {readings} readings");
    println!(
        "wire traffic: {} bytes across {} transmissions",
        report.bytes_transferred, report.batches
    );

    let frames = report.controller.frames_sorted();
    println!("camera frames received: {}", frames.len());
    println!(
        "raw IMU observations: {} (40 Hz, four Android sensor channels)",
        report.controller.imu_observation_count()
    );

    let aligned = report.controller.aligned_imu()?;
    println!(
        "aligned IMU grid: {} points at 4 Hz after interpolation + smoothing",
        aligned.len()
    );

    // Peek into the statsd-like time-series store the controller filled.
    println!("\ntime-series store contents:");
    for metric in report.controller.tsdb().metrics().iter().take(6) {
        let stats = report.controller.tsdb().stats(metric)?;
        println!(
            "  {:<24} {:>6} pts  mean {:>8.3}  range [{:.2}, {:.2}]",
            metric, stats.count, stats.mean, stats.min, stats.max
        );
    }

    // The accelerometer magnitude should sit near gravity on average.
    let accel_stats = report.controller.tsdb().stats("imu.2")?;
    println!(
        "\naccelerometer z-channel mean {:.2} m/s^2 (gravity-dominated, as expected)",
        accel_stats.mean
    );
    Ok(())
}
