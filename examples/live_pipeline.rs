//! Live middleware demo (paper Figures 1–2): collection agents on real
//! threads stream encoded batches over channels to the centralized
//! controller, which synchronizes, aligns, smooths, and stores the data —
//! then drains the aligned tuples into the analytics engine through the
//! micro-batched, zero-alloc session path and reports what crossed the
//! wire.
//!
//! ```text
//! cargo run --release --example live_pipeline
//! ```

use std::error::Error;
use std::sync::Arc;

use darnet::collect::live::run_live_session;
use darnet::collect::runtime::{DriverRecording, SessionTransportReport};
use darnet::collect::ControllerConfig;
use darnet::core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet::core::{
    AnalyticsEngine, BayesianCombiner, CnnConfig, EngineConfig, FrameCnn, ImuModelSlot, ImuRnn,
    MicroBatchConfig, MicroBatcher, RnnConfig,
};
use darnet::sim::{Behavior, DrivingWorld, Segment, WorldConfig};
use darnet::tensor::Tensor;

/// A minimally-fitted engine standing in for a trained stack (the
/// quickstart example trains a real one) — this demo is about the
/// collect-to-engine feed path, not accuracy.
fn demo_engine(frame_size: usize) -> Result<AnalyticsEngine, Box<dyn Error>> {
    let cnn = FrameCnn::new(
        CnnConfig {
            input_size: frame_size,
            classes: 6,
            width: 0.25,
            ..CnnConfig::default()
        },
        1,
    );
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 8,
            depth: 1,
            ..RnnConfig::default()
        },
        2,
    );
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1)?;
    let mut combiner = BayesianCombiner::darnet();
    combiner.fit(
        &Tensor::full(&[6, 6], 1.0 / 6.0),
        &Tensor::full(&[6, 3], 1.0 / 3.0),
        &[0, 1, 2, 3, 4, 5],
    )?;
    Ok(AnalyticsEngine::new(
        cnn,
        ImuModelSlot::Rnn(rnn),
        combiner,
        EngineConfig::default(),
    ))
}

fn main() -> Result<(), Box<dyn Error>> {
    let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
    // One driver performing three scripted 10-second tasks.
    let segments = vec![
        Segment {
            driver: 0,
            behavior: Behavior::NormalDriving,
            start: 0.0,
            duration: 10.0,
        },
        Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 10.0,
            duration: 10.0,
        },
        Segment {
            driver: 0,
            behavior: Behavior::Talking,
            start: 20.0,
            duration: 10.0,
        },
    ];
    let duration = 30.0;

    println!("starting camera + IMU agents on worker threads...");
    let report = run_live_session(&world, 0, &segments, duration, ControllerConfig::default())?;

    let (batches, readings) = report.controller.ingest_stats();
    println!("controller ingested {batches} batches / {readings} readings");
    println!(
        "wire traffic: {} bytes across {} transmissions",
        report.bytes_transferred, report.batches
    );

    let frames = report.controller.frames_sorted();
    println!("camera frames received: {}", frames.len());
    println!(
        "raw IMU observations: {} (40 Hz, four Android sensor channels)",
        report.controller.imu_observation_count()
    );

    let aligned = report.controller.aligned_imu()?;
    println!(
        "aligned IMU grid: {} points at 4 Hz after interpolation + smoothing",
        aligned.len()
    );

    // Peek into the statsd-like time-series store the controller filled.
    println!("\ntime-series store contents:");
    for metric in report.controller.tsdb().metrics().iter().take(6) {
        let stats = report.controller.tsdb().stats(metric)?;
        println!(
            "  {:<24} {:>6} pts  mean {:>8.3}  range [{:.2}, {:.2}]",
            metric, stats.count, stats.mean, stats.min, stats.max
        );
    }

    // The accelerometer magnitude should sit near gravity on average.
    let accel_stats = report.controller.tsdb().stats("imu.2")?;
    println!(
        "\naccelerometer z-channel mean {:.2} m/s^2 (gravity-dominated, as expected)",
        accel_stats.mean
    );

    // Finally, feed the aligned stream to the analytics engine the way a
    // deployed controller does: a micro-batcher accumulates 4 Hz tuples
    // and flushes on size or deadline, and every flush drains through
    // the zero-alloc session API (`classify_tuples_into`) on the
    // engine's reused buffers — after the first flush warms the
    // workspace, steady-state flushes never touch the heap (DESIGN.md
    // §12).
    let frame_size = frames.first().map_or(48, |f| f.frame.width());
    let recording = DriverRecording {
        driver: 0,
        imu: aligned,
        frames,
        max_clock_error: 0.0,
        transport: SessionTransportReport::default(),
    };
    let tuples = recording.aligned_tuples(WINDOW_LEN);
    println!("\naligned frame+window tuples: {}", tuples.len());

    let mut engine = demo_engine(frame_size)?;
    let mut batcher = MicroBatcher::new(MicroBatchConfig {
        max_batch: 8,
        max_delay: 0.25,
    });
    let mut results = Vec::new();
    let (mut flushes, mut classified) = (0usize, 0usize);
    for tuple in tuples {
        let now = tuple.t;
        if let Some(batch) = batcher.push(tuple, now) {
            engine.classify_tuples_into(&batch, &mut results)?;
            flushes += 1;
            classified += results.len();
        }
    }
    let tail = batcher.flush();
    if !tail.is_empty() {
        engine.classify_tuples_into(&tail, &mut results)?;
        flushes += 1;
        classified += results.len();
    }
    let (hits, misses) = engine.workspace_stats();
    println!(
        "classified {classified} steps in {flushes} micro-batch flushes \
         (session workspace: {hits} pooled checkouts, {misses} cold allocations)"
    );
    Ok(())
}
