//! Property-based tests for the synthetic world.

use darnet_sim::schedule::{build_schedule, class_durations, ScheduleConfig, TABLE1_FRAME_COUNTS};
use darnet_sim::{Behavior, DriverProfile, DrivingWorld, FrameRenderer, WorldConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frames_are_always_valid_images(
        driver_id in 0usize..5,
        class in 0usize..6,
        t in 0.0f64..500.0,
        seed in 0u64..50,
    ) {
        let renderer = FrameRenderer::new(seed);
        let driver = DriverProfile::generate(driver_id, seed);
        let behavior = Behavior::from_index(class).unwrap();
        let frame = renderer.render(&driver, behavior, t);
        prop_assert_eq!(frame.pixels().len(), 48 * 48);
        prop_assert!(frame.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Frames are never blank.
        prop_assert!(frame.mean() > 0.01);
    }

    #[test]
    fn imu_samples_are_always_finite(
        driver_id in 0usize..5,
        class in 0usize..6,
        t in 0.0f64..500.0,
    ) {
        let world = DrivingWorld::new(WorldConfig::default());
        let behavior = Behavior::from_index(class).unwrap();
        let sample = world.imu_sample(driver_id, behavior, t);
        prop_assert!(sample.to_features().iter().all(|v| v.is_finite()));
        // Gravity magnitude stays physical.
        let mag: f32 = sample.gravity.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!((5.0..15.0).contains(&mag));
    }

    #[test]
    fn schedule_preserves_table1_proportions(scale in 0.01f64..0.3, drivers in 1usize..8) {
        let config = ScheduleConfig { drivers, scale, ..ScheduleConfig::default() };
        let segments = build_schedule(&config);
        let durations = class_durations(&segments);
        // Ratios between classes track the paper's ratios.
        let total: f64 = durations.iter().sum();
        let paper_total: f64 = TABLE1_FRAME_COUNTS.iter().sum::<usize>() as f64;
        for (i, &frames) in TABLE1_FRAME_COUNTS.iter().enumerate() {
            let got = durations[i] / total;
            let want = frames as f64 / paper_total;
            prop_assert!((got - want).abs() < 0.01, "class {} share {} vs {}", i, got, want);
        }
    }

    #[test]
    fn world_is_a_pure_function_of_inputs(
        driver_id in 0usize..3,
        class in 0usize..6,
        t in 0.0f64..100.0,
    ) {
        let w1 = DrivingWorld::new(WorldConfig::default());
        let w2 = DrivingWorld::new(WorldConfig::default());
        let behavior = Behavior::from_index(class).unwrap();
        prop_assert_eq!(
            w1.render_frame(driver_id, behavior, t),
            w2.render_frame(driver_id, behavior, t)
        );
        prop_assert_eq!(
            w1.imu_sample(driver_id, behavior, t),
            w2.imu_sample(driver_id, behavior, t)
        );
    }

    #[test]
    fn downsampling_preserves_pixel_value_range(
        new_size in 1usize..48,
        seed in 0u64..50,
    ) {
        let renderer = FrameRenderer::new(seed);
        let driver = DriverProfile::generate(0, seed);
        let frame = renderer.render(&driver, Behavior::Talking, 1.0);
        let down = frame.downsample_nearest(new_size, new_size);
        prop_assert_eq!(down.width(), new_size);
        // Nearest-neighbour only selects existing pixel values.
        for &p in down.pixels() {
            prop_assert!(frame.pixels().contains(&p));
        }
    }
}
