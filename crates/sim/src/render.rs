//! Parametric driver-frame renderer.
//!
//! Frames are 48×48 grayscale pictures of a driver seen from a dash-mounted
//! camera: steering wheel lower-left, head upper-center, torso below it,
//! arms drawn as thick line segments toward per-behaviour hand positions,
//! plus behaviour props (phone, cup, ...).
//!
//! Two deliberate properties shape the learning problem the way the paper
//! reports it:
//!
//! 1. **Texting / talking / normal look similar.** The phone is a small,
//!    low-contrast prop and the arm poses overlap, so a frame-only CNN
//!    confuses exactly these three classes (paper Figure 5c), while the
//!    IMU stream separates them.
//! 2. **Identity is carried by high-frequency texture.** Each driver's
//!    clothing has a fine stripe pattern that survives full resolution but
//!    not down-sampling, allowing an over-fitted teacher CNN to use
//!    identity cues that the distilled dCNN students cannot (paper §5.3).

use darnet_tensor::SplitMix64;

use crate::behavior::{Behavior, CanonicalBehavior, ExtendedBehavior};
use crate::driver::DriverProfile;
use crate::frame::Frame;

/// Props a hand can hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Prop {
    /// Mobile phone (small dim rectangle).
    Phone,
    /// Cup / bottle (tall bright rectangle).
    Cup,
    /// Food item (bright blob).
    Food,
    /// Cigarette (thin bright line).
    Cigarette,
    /// Hair brush (medium rectangle above head).
    Brush,
}

/// Fully specifies a rendered pose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PoseSpec {
    /// Right-hand position (pixels).
    pub right_hand: (f32, f32),
    /// Left-hand position (pixels).
    pub left_hand: (f32, f32),
    /// Prop carried by the right hand.
    pub prop: Option<Prop>,
    /// Prop intensity (contrast against the body).
    pub prop_intensity: f32,
    /// Head tilt in pixels (positive = down).
    pub head_tilt: f32,
    /// Head turn in pixels (positive = toward passenger side).
    pub head_turn: f32,
    /// Torso lean in pixels (positive = toward passenger side).
    pub lean: f32,
}

const WHEEL_LEFT: (f32, f32) = (10.0, 35.0);
const WHEEL_RIGHT: (f32, f32) = (19.0, 36.0);

pub(crate) fn pose_for_behavior(b: Behavior) -> PoseSpec {
    match b {
        Behavior::NormalDriving => PoseSpec {
            right_hand: WHEEL_RIGHT,
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: 0.0,
            head_turn: 0.0,
            lean: 0.0,
        },
        // Phone at the ear: prop is small and partially occluded by the
        // head, arm bent upward — at 48x48 the silhouette stays close to
        // normal driving.
        Behavior::Talking => PoseSpec {
            right_hand: (29.0, 15.0),
            left_hand: WHEEL_LEFT,
            prop: Some(Prop::Phone),
            prop_intensity: 0.12,
            head_tilt: 0.0,
            head_turn: 1.0,
            lean: 0.0,
        },
        // Phone near the waist: small low-contrast prop against the torso,
        // slight head-down tilt.
        Behavior::Texting => PoseSpec {
            right_hand: (25.0, 29.0),
            left_hand: WHEEL_LEFT,
            prop: Some(Prop::Phone),
            prop_intensity: 0.12,
            head_tilt: 1.5,
            head_turn: 0.0,
            lean: 0.0,
        },
        // Bright cup at the mouth: visually distinctive.
        Behavior::EatingDrinking => PoseSpec {
            right_hand: (27.0, 17.0),
            left_hand: WHEEL_LEFT,
            prop: Some(Prop::Cup),
            prop_intensity: 0.45,
            head_tilt: -0.5,
            head_turn: 0.0,
            lean: 0.0,
        },
        // Hand above the head: a high edge no other class has.
        Behavior::HairMakeup => PoseSpec {
            right_hand: (25.0, 6.0),
            left_hand: WHEEL_LEFT,
            prop: Some(Prop::Brush),
            prop_intensity: 0.35,
            head_tilt: -1.0,
            head_turn: 0.0,
            lean: 0.0,
        },
        // Arm fully extended to the passenger side with a body lean.
        Behavior::Reaching => PoseSpec {
            right_hand: (44.0, 24.0),
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: 0.5,
            head_turn: 3.0,
            lean: 3.5,
        },
    }
}

/// Injects the class-conditional pose ambiguity that makes the frame-only
/// problem hard: normal / talking / texting draw the right hand from
/// overlapping regions, so at 48×48 the only reliable cue separating them
/// is the faint phone — which the paper's CNN also struggles with
/// (Figure 5c).
pub(crate) fn ambiguate_pose(pose: &mut PoseSpec, behavior: Behavior, rng: &mut SplitMix64) {
    const WAIST: (f32, f32) = (25.0, 28.0);
    const FACE: (f32, f32) = (28.0, 16.0);
    // Shared right-hand mixture for the three phone-relevant classes: the
    // paper's texting orientation spans "waist and eye level", talking sits
    // at the ear, and normal driving includes resting/touching-face poses —
    // so the *silhouette* alone cannot separate them. Only the faint phone
    // placement can.
    let mixture = |rng: &mut SplitMix64, w_wheel: f32, w_waist: f32| -> (u8, (f32, f32)) {
        let u = rng.next_f32();
        if u < w_wheel {
            (
                0,
                (
                    WHEEL_RIGHT.0 + rng.uniform(-1.5, 1.5),
                    WHEEL_RIGHT.1 + rng.uniform(-1.5, 1.5),
                ),
            )
        } else if u < w_wheel + w_waist {
            (
                1,
                (
                    WAIST.0 + rng.uniform(-4.0, 4.0),
                    WAIST.1 + rng.uniform(-4.0, 4.0),
                ),
            )
        } else {
            (
                2,
                (
                    FACE.0 + rng.uniform(-3.0, 3.0),
                    FACE.1 + rng.uniform(-3.0, 3.0),
                ),
            )
        }
    };
    match behavior {
        Behavior::NormalDriving => {
            let (_, hand) = mixture(rng, 0.5, 0.25);
            pose.right_hand = hand;
            pose.prop = None;
            pose.head_tilt = rng.uniform(-1.5, 1.5);
            pose.head_turn = rng.uniform(-1.0, 1.5);
        }
        Behavior::Texting => {
            let (region, hand) = mixture(rng, 0.2, 0.6);
            pose.right_hand = hand;
            pose.head_tilt = rng.uniform(-1.5, 1.5);
            pose.head_turn = rng.uniform(-1.0, 1.5);
            // The phone is visible only in the active waist pose, and even
            // then lighting/occlusion make it a weak cue.
            if region == 1 && rng.next_f32() < 0.8 {
                pose.prop = Some(Prop::Phone);
                pose.prop_intensity = rng.uniform(0.08, 0.16);
            } else {
                pose.prop = None;
            }
        }
        Behavior::Talking => {
            let (region, hand) = mixture(rng, 0.2, 0.2);
            pose.right_hand = hand;
            pose.head_tilt = rng.uniform(-1.5, 1.5);
            pose.head_turn = rng.uniform(-1.0, 1.5);
            if region == 2 && rng.next_f32() < 0.8 {
                pose.prop = Some(Prop::Phone);
                pose.prop_intensity = rng.uniform(0.08, 0.16);
            } else {
                pose.prop = None;
            }
        }
        // Eating: hand near the mouth with a mostly-visible bright cup.
        Behavior::EatingDrinking => {
            pose.right_hand = (27.0 + rng.uniform(-2.0, 2.0), 17.0 + rng.uniform(-2.0, 2.0));
            pose.head_tilt = rng.uniform(-1.0, 0.5);
            pose.head_turn = rng.uniform(-0.5, 1.0);
            pose.prop_intensity = rng.uniform(0.25, 0.50);
            if rng.next_f32() < 0.08 {
                pose.prop = None;
            }
        }
        // Hair/makeup: hand anywhere between crown and ear level.
        Behavior::HairMakeup => {
            pose.right_hand = (25.5 + rng.uniform(-2.5, 2.5), 7.0 + rng.uniform(-1.5, 3.0));
            pose.head_tilt += rng.uniform(-1.0, 1.0);
            pose.prop_intensity = rng.uniform(0.20, 0.40);
            if rng.next_f32() < 0.08 {
                pose.prop = None;
            }
        }
        // Reaching is a sweep: early-reach frames sit close to a normal
        // driving pose (the paper's CNN misclassifies reaching as normal).
        Behavior::Reaching => {
            // Bias toward the extended phase; only a minority of frames
            // catch the ambiguous start of the sweep.
            let progress = rng.next_f32().sqrt();
            pose.right_hand = (
                26.0 + 18.0 * progress + rng.uniform(-2.0, 2.0),
                30.0 - 7.0 * progress + rng.uniform(-2.0, 2.0),
            );
            pose.lean = 3.5 * progress;
            pose.head_turn = 3.0 * progress + rng.uniform(-1.0, 1.0);
            pose.head_tilt = rng.uniform(-1.0, 1.0);
        }
    }
}

/// Base pose for the two drowsiness classes: hands stay on the wheel (the
/// silhouette is a near-normal driving pose — the discriminative cue is
/// the face/head, which the dash view carries weakly and the side view
/// strongly).
pub(crate) fn pose_for_drowsy(c: CanonicalBehavior) -> PoseSpec {
    match c {
        CanonicalBehavior::HeadDroop => PoseSpec {
            right_hand: WHEEL_RIGHT,
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: 4.5,
            head_turn: 0.0,
            lean: 0.5,
        },
        // EyesClosing (and any future drowsiness onset class): nominal
        // posture, only the eyelids give it away.
        _ => PoseSpec {
            right_hand: WHEEL_RIGHT,
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: 1.0,
            head_turn: 0.0,
            lean: 0.0,
        },
    }
}

/// Samples per-frame drowsiness variation and returns the eyelid-closure
/// degree in `[0, 1]` (0 = eyes open, drawn as no overlay).
///
/// Eye closure oscillates — drowsy drivers blink open — so a minority of
/// `EyesClosing` frames are nearly indistinguishable from normal driving
/// in the dash view, which is exactly the occlusion regime where the
/// side-view stream earns its keep.
pub(crate) fn ambiguate_drowsy(
    pose: &mut PoseSpec,
    c: CanonicalBehavior,
    rng: &mut SplitMix64,
) -> f32 {
    match c {
        CanonicalBehavior::HeadDroop => {
            pose.head_tilt += rng.uniform(-0.5, 2.0);
            pose.head_turn += rng.uniform(-1.0, 1.0);
            pose.lean += rng.uniform(-0.3, 0.8);
            rng.uniform(0.7, 1.0)
        }
        _ => {
            pose.head_tilt += rng.uniform(-0.5, 1.0);
            pose.head_turn += rng.uniform(-0.8, 0.8);
            if rng.next_f32() < 0.15 {
                // Momentarily blinked open.
                rng.uniform(0.05, 0.25)
            } else {
                rng.uniform(0.55, 0.95)
            }
        }
    }
}

pub(crate) fn pose_for_extended(b: ExtendedBehavior) -> PoseSpec {
    use ExtendedBehavior as E;
    let base = |bb: Behavior| pose_for_behavior(bb);
    match b {
        E::NormalDriving => base(Behavior::NormalDriving),
        E::TalkingRight => base(Behavior::Talking),
        E::TalkingLeft => {
            let mut p = base(Behavior::Talking);
            // Mirror the phone arm to the left ear; right hand returns to
            // the wheel.
            p.left_hand = (18.0, 14.0);
            p.right_hand = WHEEL_RIGHT;
            p.head_turn = -1.0;
            p
        }
        E::TextingRight => base(Behavior::Texting),
        E::TextingLeft => {
            let mut p = base(Behavior::Texting);
            p.left_hand = (21.0, 29.0);
            p.right_hand = WHEEL_RIGHT;
            p
        }
        E::PhoneOnDash => PoseSpec {
            right_hand: (34.0, 33.0),
            left_hand: WHEEL_LEFT,
            prop: Some(Prop::Phone),
            prop_intensity: 0.3,
            head_tilt: 1.0,
            head_turn: 2.0,
            lean: 0.5,
        },
        E::Drinking => base(Behavior::EatingDrinking),
        E::Eating => {
            let mut p = base(Behavior::EatingDrinking);
            p.prop = Some(Prop::Food);
            p.right_hand = (26.0, 18.0);
            p
        }
        E::Smoking => PoseSpec {
            right_hand: (30.0, 18.0),
            left_hand: WHEEL_LEFT,
            prop: Some(Prop::Cigarette),
            prop_intensity: 0.7,
            head_tilt: 0.0,
            head_turn: 0.5,
            lean: 0.0,
        },
        E::Hair => base(Behavior::HairMakeup),
        E::Makeup => {
            let mut p = base(Behavior::HairMakeup);
            p.right_hand = (26.0, 11.0);
            p.head_tilt = -0.3;
            p
        }
        E::ReachingSide => base(Behavior::Reaching),
        E::ReachingBack => {
            let mut p = base(Behavior::Reaching);
            p.right_hand = (41.0, 12.0);
            p.head_turn = 4.0;
            p.lean = 2.5;
            p
        }
        E::AdjustingRadio => PoseSpec {
            right_hand: (35.0, 42.0),
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: 2.0,
            head_turn: 1.5,
            lean: 1.0,
        },
        E::AdjustingNavigation => PoseSpec {
            right_hand: (40.0, 28.0),
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: 1.5,
            head_turn: 2.5,
            lean: 1.5,
        },
        E::TalkingToPassenger => PoseSpec {
            right_hand: WHEEL_RIGHT,
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: 0.0,
            head_turn: 5.0,
            lean: 1.0,
        },
        E::LookingBack => PoseSpec {
            right_hand: WHEEL_RIGHT,
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: -1.0,
            head_turn: 6.0,
            lean: 2.0,
        },
        E::Yawning => PoseSpec {
            right_hand: (24.0, 19.0),
            left_hand: WHEEL_LEFT,
            prop: None,
            prop_intensity: 0.0,
            head_tilt: -2.0,
            head_turn: 0.0,
            lean: 0.0,
        },
    }
}

/// Renders driver frames for a given canvas size.
#[derive(Debug, Clone)]
pub struct FrameRenderer {
    size: usize,
    noise_sigma: f32,
    seed: u64,
}

impl FrameRenderer {
    /// Creates a renderer with the default 48×48 canvas.
    pub fn new(seed: u64) -> Self {
        FrameRenderer {
            size: 48,
            noise_sigma: 0.07,
            seed,
        }
    }

    /// Overrides the canvas size (square), e.g. for tests.
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Overrides sensor-noise sigma.
    pub fn with_noise(mut self, sigma: f32) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Canvas edge length in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    fn rng_for(&self, class_salt: u64, driver: &DriverProfile, t: f64) -> SplitMix64 {
        SplitMix64::new(
            self.seed
                ^ class_salt.wrapping_mul(0x517C_C1B7_2722_0A95)
                ^ (driver.id as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ (t * 1000.0) as u64,
        )
    }

    /// Renders a frame for one of the 6 Table-1 behaviours.
    ///
    /// Classes 1–3 (normal / talking / texting) draw their right-hand
    /// position from *overlapping* distributions and carry only a faint
    /// phone cue, making them deliberately hard for a frame-only model —
    /// the regime the paper's Figure 5c documents (36% CNN texting
    /// accuracy).
    pub fn render(&self, driver: &DriverProfile, behavior: Behavior, t: f64) -> Frame {
        let mut rng = self.rng_for(behavior.index() as u64, driver, t);
        let mut pose = pose_for_behavior(behavior);
        ambiguate_pose(&mut pose, behavior, &mut rng);
        self.render_pose(driver, &pose, &mut rng, t, 0.0)
    }

    /// Renders a dash-view frame for one of the 8 canonical classes.
    ///
    /// The six Table-1 classes delegate to [`FrameRenderer::render`] and
    /// are bit-identical to it; the two drowsiness classes use fresh seed
    /// salts (200+) so existing 6-class output is untouched.
    pub fn render_canonical(
        &self,
        driver: &DriverProfile,
        class: CanonicalBehavior,
        t: f64,
    ) -> Frame {
        match class.base() {
            Some(b) => self.render(driver, b, t),
            None => {
                let mut rng = self.rng_for(200 + class.index() as u64, driver, t);
                let mut pose = pose_for_drowsy(class);
                let eyelid = ambiguate_drowsy(&mut pose, class, &mut rng);
                self.render_pose(driver, &pose, &mut rng, t, eyelid)
            }
        }
    }

    /// Renders a side-view frame (camera on the passenger-side A-pillar)
    /// for one of the 8 canonical classes.
    ///
    /// The profile geometry makes head droop and eye closure far more
    /// visible than the dash view does, while hand/prop cues compress
    /// into depth — the complementary-information regime multi-view
    /// fusion papers exploit. Uses its own seed salt range (300+).
    pub fn render_side(&self, driver: &DriverProfile, class: CanonicalBehavior, t: f64) -> Frame {
        let mut rng = self.rng_for(300 + class.index() as u64, driver, t);
        let (pose, eyelid) = match class.base() {
            Some(b) => {
                let mut pose = pose_for_behavior(b);
                ambiguate_pose(&mut pose, b, &mut rng);
                (pose, 0.0)
            }
            None => {
                let mut pose = pose_for_drowsy(class);
                let eyelid = ambiguate_drowsy(&mut pose, class, &mut rng);
                (pose, eyelid)
            }
        };
        self.render_pose_side(driver, &pose, &mut rng, t, eyelid)
    }

    /// Renders a frame for one of the 18 extended behaviours.
    pub fn render_extended(
        &self,
        driver: &DriverProfile,
        behavior: ExtendedBehavior,
        t: f64,
    ) -> Frame {
        let mut rng = self.rng_for(100 + behavior.index() as u64, driver, t);
        let pose = pose_for_extended(behavior);
        self.render_pose(driver, &pose, &mut rng, t, 0.0)
    }

    fn render_pose(
        &self,
        driver: &DriverProfile,
        pose: &PoseSpec,
        rng: &mut SplitMix64,
        t: f64,
        eyelid: f32,
    ) -> Frame {
        let s = self.size as f32 / 48.0; // geometry scale factor
        let rng = &mut *rng;
        let mut f = Frame::new(self.size, self.size);

        // Lighting varies slowly with time (the paper collected "under
        // varying degrees of lighting").
        let _ = t;
        let lighting = 1.0 + rng.uniform(-0.25, 0.25);

        // Background: vertical gradient (dark cabin) with a bright window
        // band upper-right.
        for y in 0..self.size {
            for x in 0..self.size {
                let g = 0.18 + 0.10 * (y as f32 / self.size as f32);
                f.put(x as isize, y as isize, g);
            }
        }
        fill_rect(&mut f, 36.0 * s, 0.0, 48.0 * s, 10.0 * s, 0.55);

        // Gesture micro-motion: hands tremble with a driver-style
        // amplitude; reaching sweeps more.
        let wob = driver.motion_style * s;
        let jitter = |rng: &mut SplitMix64, amp: f32| rng.uniform(-amp, amp);
        let rh = (
            (pose.right_hand.0 + driver.head_dx * 0.5) * s + jitter(rng, 0.8 * wob),
            pose.right_hand.1 * s + jitter(rng, 0.8 * wob),
        );
        let lh = (
            pose.left_hand.0 * s + jitter(rng, 0.5 * wob),
            pose.left_hand.1 * s + jitter(rng, 0.5 * wob),
        );

        // Steering wheel: ring lower-left.
        draw_ring(&mut f, 14.0 * s, 37.0 * s, 8.0 * s, 2.2 * s, 0.10);

        // Torso: rectangle with lean, carrying the identity texture.
        let lean = pose.lean * s;
        let torso_x0 = (16.0 + driver.head_dx * 0.5) * s + lean * 0.5;
        let torso_y0 = 21.0 * s;
        let torso_x1 = torso_x0 + 15.0 * driver.scale * s;
        let torso_y1 = 47.0 * s;
        let body_tone = (0.42 + driver.brightness) * lighting;
        fill_rect(&mut f, torso_x0, torso_y0, torso_x1, torso_y1, body_tone);
        // Identity stripes over the torso (high-frequency; destroyed by
        // down-sampling).
        apply_texture(
            &mut f,
            torso_x0,
            torso_y0,
            torso_x1,
            torso_y1,
            driver.texture_freq / s,
            driver.texture_phase,
            driver.texture_amp,
        );

        // Head: circle, with tilt/turn offsets.
        let head_x = (24.0 + driver.head_dx) * s + pose.head_turn * s + lean * 0.6;
        let head_y = (13.0 + driver.head_dy) * s + pose.head_tilt * s;
        let head_r = 5.5 * driver.scale * s;
        fill_circle(
            &mut f,
            head_x,
            head_y,
            head_r,
            (0.58 + driver.brightness) * lighting,
        );

        // Eyelid band: a dark bar across eye height, darker the more
        // closed the eyes are. Zero closure draws nothing, so the six
        // legacy classes are bit-identical to the pre-drowsiness renderer.
        if eyelid > 0.0 {
            let tone = ((0.58 + driver.brightness) * lighting * (1.0 - 0.6 * eyelid)).max(0.05);
            fill_rect(
                &mut f,
                head_x - head_r * 0.9,
                head_y - head_r * 0.25,
                head_x + head_r * 0.9,
                head_y + head_r * 0.15,
                tone,
            );
        }

        // Shoulders.
        let shoulder_l = (torso_x0 + 2.0 * s, 23.0 * s);
        let shoulder_r = (torso_x1 - 2.0 * s, 23.0 * s);

        // Arms: thick lines from shoulders to hands.
        draw_thick_line(
            &mut f,
            shoulder_l,
            lh,
            2.8 * s,
            (0.40 + driver.brightness) * lighting,
        );
        draw_thick_line(
            &mut f,
            shoulder_r,
            rh,
            2.8 * s,
            (0.40 + driver.brightness) * lighting,
        );

        // Hands.
        fill_circle(
            &mut f,
            lh.0,
            lh.1,
            2.2 * s,
            (0.55 + driver.brightness) * lighting,
        );
        fill_circle(
            &mut f,
            rh.0,
            rh.1,
            2.2 * s,
            (0.55 + driver.brightness) * lighting,
        );

        // Prop at the active hand. Props live on the right hand except in
        // mirrored extended poses, where the pose already placed the
        // coordinates appropriately (the prop follows whichever hand left
        // the wheel).
        let active =
            if (rh.0 - WHEEL_RIGHT.0 * s).abs() < 1.5 && (rh.1 - WHEEL_RIGHT.1 * s).abs() < 2.5 {
                lh
            } else {
                rh
            };
        if let Some(prop) = pose.prop {
            let tone = (body_tone + pose.prop_intensity * lighting).min(1.0);
            match prop {
                Prop::Phone => {
                    fill_rect(
                        &mut f,
                        active.0 - 1.2 * s,
                        active.1 - 1.8 * s,
                        active.0 + 1.2 * s,
                        active.1 + 1.8 * s,
                        tone,
                    );
                }
                Prop::Cup => {
                    fill_rect(
                        &mut f,
                        active.0 - 1.3 * s,
                        active.1 - 3.2 * s,
                        active.0 + 1.3 * s,
                        active.1 + 1.2 * s,
                        tone,
                    );
                }
                Prop::Food => {
                    fill_circle(&mut f, active.0, active.1 - 1.0 * s, 2.2 * s, tone);
                }
                Prop::Cigarette => {
                    draw_thick_line(
                        &mut f,
                        active,
                        (active.0 + 3.5 * s, active.1 - 2.0 * s),
                        0.7 * s,
                        tone,
                    );
                }
                Prop::Brush => {
                    fill_rect(
                        &mut f,
                        active.0 - 1.0 * s,
                        active.1 - 2.6 * s,
                        active.0 + 1.0 * s,
                        active.1 + 0.6 * s,
                        tone,
                    );
                }
            }
        }

        // Sensor noise.
        if self.noise_sigma > 0.0 {
            for p in f.pixels_mut() {
                *p = (*p + rng.normal() * self.noise_sigma).clamp(0.0, 1.0);
            }
        }
        f
    }

    /// Profile projection of a dash-view pose: the camera sits on the
    /// passenger-side A-pillar, so lateral reach compresses into depth
    /// (toward the windshield at the left edge) while vertical positions
    /// and head tilt survive — and head droop moves the head both down
    /// and forward, the cue the dash view flattens away.
    fn render_pose_side(
        &self,
        driver: &DriverProfile,
        pose: &PoseSpec,
        rng: &mut SplitMix64,
        t: f64,
        eyelid: f32,
    ) -> Frame {
        let s = self.size as f32 / 48.0;
        let rng = &mut *rng;
        let mut f = Frame::new(self.size, self.size);

        let _ = t;
        let lighting = 1.0 + rng.uniform(-0.20, 0.20);

        // Background: horizontal gradient, windshield light from the left.
        for y in 0..self.size {
            for x in 0..self.size {
                let g = 0.16 + 0.12 * (1.0 - x as f32 / self.size as f32);
                f.put(x as isize, y as isize, g);
            }
        }
        fill_rect(&mut f, 0.0, 0.0, 7.0 * s, 28.0 * s, 0.52);

        // Steering wheel edge-on: a partial ring at the lower left.
        draw_ring(&mut f, 8.0 * s, 34.0 * s, 7.0 * s, 2.0 * s, 0.12);

        let wob = driver.motion_style * s;
        let jitter = |rng: &mut SplitMix64, amp: f32| rng.uniform(-amp, amp);
        // Dash-view lateral x becomes depth, compressed toward the
        // windshield; vertical y carries over.
        let project = |p: (f32, f32), jx: f32, jy: f32| -> (f32, f32) {
            ((34.0 - 0.38 * p.0) * s + jx, p.1 * s + jy)
        };
        let rh = project(
            pose.right_hand,
            jitter(rng, 0.8 * wob),
            jitter(rng, 0.8 * wob),
        );
        let lh = project(
            pose.left_hand,
            jitter(rng, 0.5 * wob),
            jitter(rng, 0.5 * wob),
        );

        // Torso: vertical slab right of center, same identity texture as
        // the dash view (it is the same shirt).
        let lean = pose.lean * s;
        let torso_x0 = 20.0 * s - lean * 0.6;
        let torso_y0 = 20.0 * s;
        let torso_x1 = torso_x0 + 13.0 * driver.scale * s;
        let torso_y1 = 47.0 * s;
        let body_tone = (0.42 + driver.brightness) * lighting;
        fill_rect(&mut f, torso_x0, torso_y0, torso_x1, torso_y1, body_tone);
        apply_texture(
            &mut f,
            torso_x0,
            torso_y0,
            torso_x1,
            torso_y1,
            driver.texture_freq / s,
            driver.texture_phase,
            driver.texture_amp,
        );

        // Head in profile: droop lowers it and pushes it toward the
        // windshield; turning toward the passenger brings the face toward
        // this camera.
        let head_x = (22.0 + driver.head_dx * 0.5) * s - pose.head_tilt * 0.8 * s - lean * 0.4
            + pose.head_turn * 0.3 * s;
        let head_y = (12.0 + driver.head_dy) * s + pose.head_tilt * 1.4 * s;
        let head_r = 5.5 * driver.scale * s;
        fill_circle(
            &mut f,
            head_x,
            head_y,
            head_r,
            (0.58 + driver.brightness) * lighting,
        );
        // Face edge: a bright leading crescent the profile view exposes.
        fill_circle(
            &mut f,
            head_x - head_r * 0.7,
            head_y - head_r * 0.1,
            head_r * 0.35,
            (0.66 + driver.brightness) * lighting,
        );
        if eyelid > 0.0 {
            let tone = ((0.58 + driver.brightness) * lighting * (1.0 - 0.6 * eyelid)).max(0.05);
            fill_rect(
                &mut f,
                head_x - head_r,
                head_y - head_r * 0.25,
                head_x - head_r * 0.1,
                head_y + head_r * 0.15,
                tone,
            );
        }

        // Near-side arm from the shoulder toward both hands (the far arm
        // is mostly occluded; draw it thinner first).
        let shoulder = (torso_x0 + 3.0 * s, 23.0 * s);
        draw_thick_line(
            &mut f,
            shoulder,
            lh,
            1.6 * s,
            (0.34 + driver.brightness) * lighting,
        );
        draw_thick_line(
            &mut f,
            shoulder,
            rh,
            2.8 * s,
            (0.40 + driver.brightness) * lighting,
        );
        fill_circle(
            &mut f,
            rh.0,
            rh.1,
            2.2 * s,
            (0.55 + driver.brightness) * lighting,
        );

        // Props compress to a small block at the active hand in profile.
        if let Some(_prop) = pose.prop {
            let tone = (body_tone + pose.prop_intensity * lighting).min(1.0);
            fill_rect(
                &mut f,
                rh.0 - 1.2 * s,
                rh.1 - 1.6 * s,
                rh.0 + 1.2 * s,
                rh.1 + 1.6 * s,
                tone,
            );
        }

        if self.noise_sigma > 0.0 {
            for p in f.pixels_mut() {
                *p = (*p + rng.normal() * self.noise_sigma).clamp(0.0, 1.0);
            }
        }
        f
    }
}

// ---------------------------------------------------------------------
// Drawing primitives
// ---------------------------------------------------------------------

fn fill_rect(f: &mut Frame, x0: f32, y0: f32, x1: f32, y1: f32, value: f32) {
    let (x0, x1) = (x0.min(x1), x0.max(x1));
    let (y0, y1) = (y0.min(y1), y0.max(y1));
    for y in y0.floor() as isize..=y1.ceil() as isize {
        for x in x0.floor() as isize..=x1.ceil() as isize {
            f.put(x, y, value);
        }
    }
}

fn fill_circle(f: &mut Frame, cx: f32, cy: f32, r: f32, value: f32) {
    let r2 = r * r;
    for y in (cy - r).floor() as isize..=(cy + r).ceil() as isize {
        for x in (cx - r).floor() as isize..=(cx + r).ceil() as isize {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            if dx * dx + dy * dy <= r2 {
                f.put(x, y, value);
            }
        }
    }
}

fn draw_ring(f: &mut Frame, cx: f32, cy: f32, r: f32, thickness: f32, value: f32) {
    let outer2 = r * r;
    let inner = (r - thickness).max(0.0);
    let inner2 = inner * inner;
    for y in (cy - r).floor() as isize..=(cy + r).ceil() as isize {
        for x in (cx - r).floor() as isize..=(cx + r).ceil() as isize {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            let d2 = dx * dx + dy * dy;
            if d2 <= outer2 && d2 >= inner2 {
                f.put(x, y, value);
            }
        }
    }
}

fn draw_thick_line(f: &mut Frame, a: (f32, f32), b: (f32, f32), width: f32, value: f32) {
    let steps = ((b.0 - a.0).abs().max((b.1 - a.1).abs()).ceil() as usize).max(1) * 2;
    for i in 0..=steps {
        let t = i as f32 / steps as f32;
        let x = a.0 + (b.0 - a.0) * t;
        let y = a.1 + (b.1 - a.1) * t;
        fill_circle(f, x, y, width / 2.0, value);
    }
}

#[allow(clippy::too_many_arguments)] // private raster helper: a bounding box + wave parameters
fn apply_texture(
    f: &mut Frame,
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
    freq: f32,
    phase: f32,
    amp: f32,
) {
    for y in y0.floor().max(0.0) as usize..(y1.ceil() as usize).min(f.height()) {
        for x in x0.floor().max(0.0) as usize..(x1.ceil() as usize).min(f.width()) {
            let wave = (std::f32::consts::TAU * freq * (x as f32 + 0.7 * y as f32) + phase).sin();
            let old = f.get(x, y).unwrap_or(0.0);
            f.put(x as isize, y as isize, old + amp * wave);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> DriverProfile {
        DriverProfile::generate(0, 42)
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = FrameRenderer::new(7);
        let a = r.render(&driver(), Behavior::Texting, 1.0);
        let b = r.render(&driver(), Behavior::Texting, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_behaviors_render_differently() {
        let r = FrameRenderer::new(7).with_noise(0.0);
        let normal = r.render(&driver(), Behavior::NormalDriving, 1.0);
        let reach = r.render(&driver(), Behavior::Reaching, 1.0);
        let diff: f32 = normal
            .pixels()
            .iter()
            .zip(reach.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 5.0, "frames too similar: {diff}");
    }

    #[test]
    fn texting_talking_more_similar_than_reaching() {
        // The deliberate confusability property: texting vs talking frames
        // differ less than texting vs reaching frames.
        let r = FrameRenderer::new(7).with_noise(0.0);
        let d = driver();
        let l1 = |a: &Frame, b: &Frame| -> f32 {
            a.pixels()
                .iter()
                .zip(b.pixels())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        let mut sim_tt = 0.0;
        let mut sim_tr = 0.0;
        for i in 0..10 {
            let t = i as f64 * 0.7;
            let texting = r.render(&d, Behavior::Texting, t);
            let talking = r.render(&d, Behavior::Talking, t);
            let reaching = r.render(&d, Behavior::Reaching, t);
            sim_tt += l1(&texting, &talking);
            sim_tr += l1(&texting, &reaching);
        }
        assert!(
            sim_tt < sim_tr,
            "texting/talking {sim_tt} vs texting/reaching {sim_tr}"
        );
    }

    #[test]
    fn all_pixels_in_range() {
        let r = FrameRenderer::new(9);
        for b in Behavior::ALL {
            let f = r.render(&driver(), b, 3.3);
            assert!(f.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn extended_classes_render_distinctly() {
        let r = FrameRenderer::new(11).with_noise(0.0);
        let d = driver();
        let frames: Vec<Frame> = ExtendedBehavior::ALL
            .iter()
            .map(|&b| r.render_extended(&d, b, 2.0))
            .collect();
        // Every pair differs at least somewhat.
        for i in 0..frames.len() {
            for j in (i + 1)..frames.len() {
                let diff: f32 = frames[i]
                    .pixels()
                    .iter()
                    .zip(frames[j].pixels())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 0.5, "classes {i} and {j} render identically");
            }
        }
    }

    #[test]
    fn identity_texture_survives_full_res_but_not_downsampling() {
        let r = FrameRenderer::new(13).with_noise(0.0);
        let d0 = DriverProfile::generate(0, 42);
        let d1 = DriverProfile::generate(1, 42);
        let f0 = r.render(&d0, Behavior::NormalDriving, 1.0);
        let f1 = r.render(&d1, Behavior::NormalDriving, 1.0);
        let full_diff: f32 = f0
            .pixels()
            .iter()
            .zip(f1.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / f0.pixels().len() as f32;
        let d0s = f0.downsample_nearest(8, 8);
        let d1s = f1.downsample_nearest(8, 8);
        let down_diff: f32 = d0s
            .pixels()
            .iter()
            .zip(d1s.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / d0s.pixels().len() as f32;
        // Identity signal is attenuated by down-sampling (not necessarily
        // zero — geometry differs too — but the per-pixel gap shrinks).
        assert!(full_diff > 0.0);
        assert!(down_diff < full_diff * 1.5);
    }

    #[test]
    fn canonical_base_classes_match_legacy_render_bitwise() {
        let r = FrameRenderer::new(7);
        let d = driver();
        for b in Behavior::ALL {
            let legacy = r.render(&d, b, 2.5);
            let canonical = r.render_canonical(&d, CanonicalBehavior::from_behavior(b), 2.5);
            assert_eq!(legacy, canonical, "class {b} diverged");
        }
    }

    #[test]
    fn drowsy_classes_render_deterministically_and_distinctly() {
        let r = FrameRenderer::new(7);
        let d = driver();
        for c in [CanonicalBehavior::EyesClosing, CanonicalBehavior::HeadDroop] {
            let a = r.render_canonical(&d, c, 1.0);
            let b = r.render_canonical(&d, c, 1.0);
            assert_eq!(a, b);
            assert!(a.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        let rq = FrameRenderer::new(7).with_noise(0.0);
        let eyes = rq.render_canonical(&d, CanonicalBehavior::EyesClosing, 1.0);
        let droop = rq.render_canonical(&d, CanonicalBehavior::HeadDroop, 1.0);
        let normal = rq.render_canonical(&d, CanonicalBehavior::NormalDriving, 1.0);
        let l1 = |a: &Frame, b: &Frame| -> f32 {
            a.pixels()
                .iter()
                .zip(b.pixels())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        assert!(l1(&eyes, &droop) > 1.0);
        assert!(l1(&eyes, &normal) > 1.0);
    }

    #[test]
    fn side_view_is_deterministic_and_differs_from_dash_view() {
        let r = FrameRenderer::new(7);
        let d = driver();
        for c in CanonicalBehavior::ALL {
            let a = r.render_side(&d, c, 2.0);
            let b = r.render_side(&d, c, 2.0);
            assert_eq!(a, b);
            assert!(a.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        let rq = FrameRenderer::new(7).with_noise(0.0);
        let dash = rq.render_canonical(&d, CanonicalBehavior::HeadDroop, 2.0);
        let side = rq.render_side(&d, CanonicalBehavior::HeadDroop, 2.0);
        let diff: f32 = dash
            .pixels()
            .iter()
            .zip(side.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 5.0, "side view too close to dash view: {diff}");
    }

    #[test]
    fn side_view_separates_droop_from_normal_more_than_dash_does() {
        // The complementary-information property the third stream exists
        // for: head droop moves the profile head a lot but the dash head
        // only a little.
        let r = FrameRenderer::new(7).with_noise(0.0);
        let d = driver();
        let l1 = |a: &Frame, b: &Frame| -> f32 {
            a.pixels()
                .iter()
                .zip(b.pixels())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        let mut dash_gap = 0.0;
        let mut side_gap = 0.0;
        for i in 0..10 {
            let t = i as f64 * 0.9;
            dash_gap += l1(
                &r.render_canonical(&d, CanonicalBehavior::HeadDroop, t),
                &r.render_canonical(&d, CanonicalBehavior::NormalDriving, t),
            );
            side_gap += l1(
                &r.render_side(&d, CanonicalBehavior::HeadDroop, t),
                &r.render_side(&d, CanonicalBehavior::NormalDriving, t),
            );
        }
        assert!(
            side_gap > dash_gap * 0.8,
            "side view adds no droop signal: dash {dash_gap} side {side_gap}"
        );
    }

    #[test]
    fn custom_canvas_size_scales_geometry() {
        let r = FrameRenderer::new(15).with_size(24);
        let f = r.render(&driver(), Behavior::NormalDriving, 0.0);
        assert_eq!(f.width(), 24);
        assert_eq!(f.height(), 24);
    }
}
