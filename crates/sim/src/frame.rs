//! Grayscale camera frames.

use serde::{Deserialize, Serialize};

/// A grayscale camera frame with pixel intensities in `[0, 1]`, row-major.
///
/// This is the unit of data the dashcam collection agent emits and the CNN
/// consumes (after conversion to a tensor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl Frame {
    /// Creates a black frame.
    pub fn new(width: usize, height: usize) -> Self {
        Frame {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Creates a frame from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f32>) -> Self {
        assert_eq!(
            pixels.len(),
            width * height,
            "pixel buffer does not match dimensions"
        );
        Frame {
            width,
            height,
            pixels,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The pixel buffer (row-major, `[0, 1]`).
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Copies `other` into this frame, reusing the existing pixel buffer
    /// when its capacity suffices (`Vec::clone_from` semantics). The
    /// zero-alloc batching path refreshes its frame scratch list with
    /// this instead of cloning fresh frames.
    pub fn clone_pixels_from(&mut self, other: &Frame) {
        self.width = other.width;
        self.height = other.height;
        self.pixels.clone_from(&other.pixels);
    }

    /// Mutable pixel buffer.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    /// Pixel at `(x, y)`, or `None` if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Option<f32> {
        if x < self.width && y < self.height {
            Some(self.pixels[y * self.width + x])
        } else {
            None
        }
    }

    /// Sets pixel `(x, y)` if in bounds (silently ignores out-of-bounds,
    /// which keeps drawing primitives simple).
    pub fn put(&mut self, x: isize, y: isize, value: f32) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] = value.clamp(0.0, 1.0);
        }
    }

    /// Blends `value` over pixel `(x, y)` with weight `alpha` if in bounds.
    pub fn blend(&mut self, x: isize, y: isize, value: f32, alpha: f32) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            let idx = y as usize * self.width + x as usize;
            let old = self.pixels[idx];
            self.pixels[idx] = (old * (1.0 - alpha) + value * alpha).clamp(0.0, 1.0);
        }
    }

    /// Nearest-neighbour down-sampling to `new_w × new_h` — the distortion
    /// primitive of the paper's privacy module (§4.3, Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn downsample_nearest(&self, new_w: usize, new_h: usize) -> Frame {
        assert!(new_w > 0 && new_h > 0, "target dimensions must be non-zero");
        let mut out = Frame::new(new_w, new_h);
        for y in 0..new_h {
            let sy = y * self.height / new_h;
            for x in 0..new_w {
                let sx = x * self.width / new_w;
                out.pixels[y * new_w + x] = self.pixels[sy * self.width + sx];
            }
        }
        out
    }

    /// Nearest-neighbour up-sampling back to `new_w × new_h` (used to feed
    /// down-sampled frames into a fixed-input-size CNN, mirroring how the
    /// paper's dCNNs reuse the Inception input geometry).
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn upsample_nearest(&self, new_w: usize, new_h: usize) -> Frame {
        // Same index arithmetic works for both directions.
        self.downsample_nearest(new_w, new_h)
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f32 {
        if self.pixels.is_empty() {
            0.0
        } else {
            self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
        }
    }

    /// Serializes to binary PGM (P5), 8-bit — handy for eyeballing Figure 4
    /// outputs.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.pixels
                .iter()
                .map(|&p| (p.clamp(0.0, 1.0) * 255.0) as u8),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_is_black() {
        let f = Frame::new(4, 3);
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 3);
        assert_eq!(f.mean(), 0.0);
    }

    #[test]
    fn put_get_roundtrip_and_bounds() {
        let mut f = Frame::new(2, 2);
        f.put(1, 1, 0.5);
        assert_eq!(f.get(1, 1), Some(0.5));
        assert_eq!(f.get(2, 0), None);
        f.put(-1, 0, 1.0); // silently ignored
        f.put(5, 5, 1.0);
        assert_eq!(f.mean(), 0.125);
    }

    #[test]
    fn put_clamps_values() {
        let mut f = Frame::new(1, 1);
        f.put(0, 0, 2.0);
        assert_eq!(f.get(0, 0), Some(1.0));
        f.put(0, 0, -1.0);
        assert_eq!(f.get(0, 0), Some(0.0));
    }

    #[test]
    fn downsample_by_2_picks_every_other_pixel() {
        let mut f = Frame::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                f.put(x as isize, y as isize, (y * 4 + x) as f32 / 16.0);
            }
        }
        let d = f.downsample_nearest(2, 2);
        assert_eq!(d.get(0, 0), f.get(0, 0));
        assert_eq!(d.get(1, 0), f.get(2, 0));
        assert_eq!(d.get(0, 1), f.get(0, 2));
        assert_eq!(d.get(1, 1), f.get(2, 2));
    }

    #[test]
    fn down_then_upsample_preserves_dimensions() {
        let f = Frame::new(48, 48);
        let d = f.downsample_nearest(16, 16);
        let u = d.upsample_nearest(48, 48);
        assert_eq!(u.width(), 48);
        assert_eq!(u.height(), 48);
    }

    #[test]
    fn data_volume_reduction_ratios_match_paper() {
        // The paper reports ~9x, 25x(=36x at exact thirds), 144x reductions
        // from 300x300. With 48x48 frames the exact ratios are 9x, 36x,
        // 144x for 16/8/4.
        let full = 48 * 48;
        assert_eq!(full / (16 * 16), 9);
        assert_eq!(full / (8 * 8), 36);
        assert_eq!(full / (4 * 4), 144);
    }

    #[test]
    fn pgm_has_correct_header_and_size() {
        let f = Frame::new(3, 2);
        let pgm = f.to_pgm();
        assert!(pgm.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(pgm.len(), b"P5\n3 2\n255\n".len() + 6);
    }

    #[test]
    fn blend_mixes_values() {
        let mut f = Frame::new(1, 1);
        f.put(0, 0, 1.0);
        f.blend(0, 0, 0.0, 0.25);
        assert!((f.get(0, 0).unwrap() - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "pixel buffer does not match dimensions")]
    fn from_pixels_validates_length() {
        let _ = Frame::from_pixels(2, 2, vec![0.0; 3]);
    }
}
