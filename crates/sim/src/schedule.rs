//! Collection-session scripting.
//!
//! The paper's protocol: 5 drivers drive the same route; a passenger
//! instructs each scripted "distraction" for 15 seconds; the script repeats
//! so that total collected frames per class match Table 1. This module
//! builds that schedule deterministically, with per-class durations derived
//! from the paper's exact frame counts (scaled by a configurable factor so
//! the reproduction trains in minutes on a CPU).

use serde::{Deserialize, Serialize};

use crate::behavior::{Behavior, CanonicalBehavior, ExtendedBehavior};

/// Frame counts per class from the paper's Table 1.
pub const TABLE1_FRAME_COUNTS: [usize; 6] = [5_286, 10_352, 9_422, 9_463, 4_848, 17_709];

/// One scripted collection segment: a driver performs one behaviour for a
/// contiguous span of (session-local) time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment<B> {
    /// Driver id performing the segment.
    pub driver: usize,
    /// The scripted behaviour.
    pub behavior: B,
    /// Segment start time within the driver's session, seconds.
    pub start: f64,
    /// Segment duration, seconds.
    pub duration: f64,
}

impl<B: Copy> Segment<B> {
    /// Segment end time (exclusive).
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// Whether session-local time `t` falls inside this segment.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end()
    }
}

/// Configuration of a 6-class collection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Number of participating drivers (paper: 5).
    pub drivers: usize,
    /// Camera frame rate used to convert Table-1 frame counts into
    /// durations (frames per second).
    pub camera_fps: f64,
    /// Scale factor on the paper's frame counts (1.0 = full 57 k frames;
    /// the default 0.1 reproduces the class balance at 1/10 size).
    pub scale: f64,
    /// Scripted segment length in seconds (paper: 15 s).
    pub segment_seconds: f64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            drivers: 5,
            camera_fps: 4.0,
            scale: 0.1,
            segment_seconds: 15.0,
        }
    }
}

/// Builds the full 6-class collection schedule: for each driver, a
/// round-robin script of 15 s distraction segments whose per-class total
/// durations are proportional to Table 1.
pub fn build_schedule(config: &ScheduleConfig) -> Vec<Segment<Behavior>> {
    let mut segments = Vec::new();
    for driver in 0..config.drivers {
        // Remaining duration per class for this driver, seconds.
        let mut remaining: Vec<f64> = TABLE1_FRAME_COUNTS
            .iter()
            .map(|&frames| {
                frames as f64 * config.scale / (config.drivers as f64 * config.camera_fps)
            })
            .collect();
        let mut t = 0.0f64;
        // Round-robin over the script until all class budgets are used —
        // this mirrors "the entire script was repeated 10 times".
        while remaining.iter().any(|&r| r > 1e-9) {
            for (idx, behavior) in Behavior::ALL.iter().enumerate() {
                if remaining[idx] <= 1e-9 {
                    continue;
                }
                let duration = remaining[idx].min(config.segment_seconds);
                segments.push(Segment {
                    driver,
                    behavior: *behavior,
                    start: t,
                    duration,
                });
                t += duration;
                remaining[idx] -= duration;
            }
        }
    }
    segments
}

/// Configuration of the 18-class extended campaign (the "previously
/// collected" dataset of §5.3: 18 classes, 10 drivers, 30 fps GoPro).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedScheduleConfig {
    /// Number of drivers (paper: 10).
    pub drivers: usize,
    /// Seconds of footage per class per driver.
    pub seconds_per_class: f64,
    /// Scripted segment length in seconds.
    pub segment_seconds: f64,
}

impl Default for ExtendedScheduleConfig {
    fn default() -> Self {
        ExtendedScheduleConfig {
            drivers: 10,
            seconds_per_class: 12.0,
            segment_seconds: 15.0,
        }
    }
}

/// Builds the 18-class schedule with equal per-class budgets.
pub fn build_extended_schedule(config: &ExtendedScheduleConfig) -> Vec<Segment<ExtendedBehavior>> {
    let mut segments = Vec::new();
    for driver in 0..config.drivers {
        let mut t = 0.0f64;
        let mut remaining: Vec<f64> = vec![config.seconds_per_class; ExtendedBehavior::ALL.len()];
        while remaining.iter().any(|&r| r > 1e-9) {
            for (idx, behavior) in ExtendedBehavior::ALL.iter().enumerate() {
                if remaining[idx] <= 1e-9 {
                    continue;
                }
                let duration = remaining[idx].min(config.segment_seconds);
                segments.push(Segment {
                    driver,
                    behavior: *behavior,
                    start: t,
                    duration,
                });
                t += duration;
                remaining[idx] -= duration;
            }
        }
    }
    segments
}

/// Configuration of the 8-class canonical multi-stream campaign: the six
/// Table-1 behaviours (durations proportional to Table 1) plus the two
/// drowsiness classes with an explicit per-driver budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanonicalScheduleConfig {
    /// The Table-1 portion of the script.
    pub base: ScheduleConfig,
    /// Seconds of drowsiness footage per drowsy class per driver.
    pub drowsy_seconds_per_class: f64,
}

impl Default for CanonicalScheduleConfig {
    fn default() -> Self {
        CanonicalScheduleConfig {
            base: ScheduleConfig::default(),
            drowsy_seconds_per_class: 20.0,
        }
    }
}

/// Builds the 8-class schedule: per driver, a round-robin script over all
/// canonical classes — Table-1 classes keep their Table-1-proportional
/// budgets, the drowsiness classes get `drowsy_seconds_per_class` each.
pub fn build_canonical_schedule(
    config: &CanonicalScheduleConfig,
) -> Vec<Segment<CanonicalBehavior>> {
    let base = &config.base;
    let mut segments = Vec::new();
    for driver in 0..base.drivers {
        let mut remaining: Vec<f64> = CanonicalBehavior::ALL
            .iter()
            .map(|c| match c.base() {
                Some(b) => {
                    TABLE1_FRAME_COUNTS[b.index()] as f64 * base.scale
                        / (base.drivers as f64 * base.camera_fps)
                }
                None => config.drowsy_seconds_per_class,
            })
            .collect();
        let mut t = 0.0f64;
        while remaining.iter().any(|&r| r > 1e-9) {
            for (idx, class) in CanonicalBehavior::ALL.iter().enumerate() {
                if remaining[idx] <= 1e-9 {
                    continue;
                }
                let duration = remaining[idx].min(base.segment_seconds);
                segments.push(Segment {
                    driver,
                    behavior: *class,
                    start: t,
                    duration,
                });
                t += duration;
                remaining[idx] -= duration;
            }
        }
    }
    segments
}

/// Total scheduled duration per class, in seconds (diagnostic used by the
/// Table 1 reproduction).
pub fn class_durations(segments: &[Segment<Behavior>]) -> [f64; 6] {
    let mut out = [0.0f64; 6];
    for s in segments {
        out[s.behavior.index()] += s.duration;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_durations_proportional_to_table1() {
        let config = ScheduleConfig::default();
        let segments = build_schedule(&config);
        let durations = class_durations(&segments);
        // Expected frames = duration * fps * drivers... durations are
        // summed across drivers already.
        for (i, &frames) in TABLE1_FRAME_COUNTS.iter().enumerate() {
            let expected_frames = frames as f64 * config.scale;
            let actual_frames = durations[i] * config.camera_fps;
            assert!(
                (actual_frames - expected_frames).abs() < 1.0,
                "class {i}: {actual_frames} vs {expected_frames}"
            );
        }
    }

    #[test]
    fn segments_are_contiguous_and_nonoverlapping_per_driver() {
        let segments = build_schedule(&ScheduleConfig::default());
        for driver in 0..5 {
            let mut driver_segments: Vec<_> =
                segments.iter().filter(|s| s.driver == driver).collect();
            driver_segments.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            let mut t = 0.0;
            for s in driver_segments {
                assert!((s.start - t).abs() < 1e-6, "gap at {t}");
                t = s.end();
            }
        }
    }

    #[test]
    fn segments_never_exceed_scripted_length() {
        let config = ScheduleConfig::default();
        for s in build_schedule(&config) {
            assert!(s.duration <= config.segment_seconds + 1e-9);
            assert!(s.duration > 0.0);
        }
    }

    #[test]
    fn contains_respects_half_open_interval() {
        let s = Segment {
            driver: 0,
            behavior: Behavior::Talking,
            start: 10.0,
            duration: 5.0,
        };
        assert!(s.contains(10.0));
        assert!(s.contains(14.999));
        assert!(!s.contains(15.0));
        assert!(!s.contains(9.999));
        assert_eq!(s.end(), 15.0);
    }

    #[test]
    fn extended_schedule_covers_all_classes_equally() {
        let config = ExtendedScheduleConfig {
            drivers: 2,
            seconds_per_class: 10.0,
            segment_seconds: 15.0,
        };
        let segments = build_extended_schedule(&config);
        let mut per_class = vec![0.0f64; 18];
        for s in &segments {
            per_class[s.behavior.index()] += s.duration;
        }
        for d in per_class {
            assert!((d - 20.0).abs() < 1e-6);
        }
    }

    #[test]
    fn canonical_schedule_covers_all_8_classes() {
        let config = CanonicalScheduleConfig {
            base: ScheduleConfig {
                drivers: 2,
                ..ScheduleConfig::default()
            },
            drowsy_seconds_per_class: 10.0,
        };
        let segments = build_canonical_schedule(&config);
        let mut per_class = [0.0f64; 8];
        for s in &segments {
            per_class[s.behavior.index()] += s.duration;
        }
        // Table-1 classes keep their proportional budgets.
        for (i, &frames) in TABLE1_FRAME_COUNTS.iter().enumerate() {
            let expected = frames as f64 * config.base.scale / config.base.camera_fps;
            assert!(
                (per_class[i] - expected).abs() < 1e-6,
                "class {i}: {} vs {expected}",
                per_class[i]
            );
        }
        // Drowsy classes get their explicit budget per driver.
        assert!((per_class[6] - 20.0).abs() < 1e-6);
        assert!((per_class[7] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn all_drivers_appear() {
        let segments = build_schedule(&ScheduleConfig::default());
        for d in 0..5 {
            assert!(segments.iter().any(|s| s.driver == d));
        }
    }
}
