//! Driver identities.

use darnet_tensor::SplitMix64;
use serde::{Deserialize, Serialize};

/// A synthetic driver identity.
///
/// Each driver has stable pose offsets, a body scale, a motion-style
/// factor, and a fine identity texture (frequency/phase/amplitude of a
/// subtle clothing pattern). The texture is deliberately *high-frequency*:
/// it survives in full-resolution frames but is destroyed by
/// down-sampling, which is the mechanism behind the paper's observation
/// that the distilled dCNN-L can beat an over-fitted full-resolution CNN
/// (§5.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverProfile {
    /// Zero-based driver id.
    pub id: usize,
    /// Horizontal head/seat offset in pixels (-2..2).
    pub head_dx: f32,
    /// Vertical seat offset in pixels (-1.5..1.5).
    pub head_dy: f32,
    /// Body scale multiplier (0.9..1.1).
    pub scale: f32,
    /// Skin/clothing base brightness offset (-0.06..0.06).
    pub brightness: f32,
    /// Identity texture spatial frequency (cycles per pixel).
    pub texture_freq: f32,
    /// Identity texture phase.
    pub texture_phase: f32,
    /// Identity texture amplitude.
    pub texture_amp: f32,
    /// Motion style factor scaling gesture amplitude (0.8..1.2).
    pub motion_style: f32,
    /// Phone mounting jitter for the pocket orientation (radians).
    pub mount_jitter: f32,
}

impl DriverProfile {
    /// Derives a deterministic profile for driver `id` under `seed`.
    pub fn generate(id: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ (0xD21E_55EF ^ (id as u64).wrapping_mul(0x9E37_79B9)));
        DriverProfile {
            id,
            head_dx: rng.uniform(-2.0, 2.0),
            head_dy: rng.uniform(-1.5, 1.5),
            scale: rng.uniform(0.9, 1.1),
            brightness: rng.uniform(-0.06, 0.06),
            // High-frequency: between 0.35 and 0.5 cycles/pixel, i.e. a
            // 2-3 pixel stripe pattern at full resolution (amplitude high
            // enough for a capacious CNN to key on identity).
            texture_freq: rng.uniform(0.35, 0.5),
            texture_phase: rng.uniform(0.0, std::f32::consts::TAU),
            texture_amp: rng.uniform(0.08, 0.14),
            motion_style: rng.uniform(0.8, 1.2),
            mount_jitter: rng.uniform(-0.30, 0.30),
        }
    }

    /// Generates a roster of `n` distinct drivers.
    pub fn roster(n: usize, seed: u64) -> Vec<DriverProfile> {
        (0..n).map(|id| DriverProfile::generate(id, seed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DriverProfile::generate(3, 42);
        let b = DriverProfile::generate(3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_drivers_differ() {
        let a = DriverProfile::generate(0, 42);
        let b = DriverProfile::generate(1, 42);
        assert_ne!(a, b);
        assert_ne!(a.texture_phase, b.texture_phase);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DriverProfile::generate(0, 1);
        let b = DriverProfile::generate(0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn roster_has_sequential_ids() {
        let roster = DriverProfile::roster(5, 7);
        assert_eq!(roster.len(), 5);
        for (i, d) in roster.iter().enumerate() {
            assert_eq!(d.id, i);
        }
    }

    #[test]
    fn parameters_stay_in_documented_ranges() {
        for id in 0..20 {
            let d = DriverProfile::generate(id, 99);
            assert!((-2.0..=2.0).contains(&d.head_dx));
            assert!((0.9..=1.1).contains(&d.scale));
            assert!((0.35..=0.5).contains(&d.texture_freq));
            assert!((0.08..=0.14).contains(&d.texture_amp));
            assert!((0.8..=1.2).contains(&d.motion_style));
        }
    }
}
