//! # darnet-sim
//!
//! A deterministic synthetic driving world standing in for the DarNet
//! paper's private data-collection campaigns (see `DESIGN.md` §2 for the
//! substitution rationale).
//!
//! The crate models:
//!
//! * a **behaviour taxonomy** ([`Behavior`]) matching the paper's Table 1
//!   (6 classes), plus the 18-class extended taxonomy
//!   ([`ExtendedBehavior`]) used by the privacy (dCNN) study, and the
//!   3-class phone-orientation taxonomy ([`ImuClass`]) the IMU models see;
//! * **driver identities** ([`DriverProfile`]) with pose/texture quirks so
//!   that an over-fitted CNN can latch onto identity cues;
//! * **vehicle dynamics** ([`VehicleDynamics`]) — a deterministic route of
//!   accelerate/cruise/turn/brake segments that leaks into every IMU
//!   channel as common-mode motion;
//! * a **frame renderer** ([`FrameRenderer`]) drawing grayscale driver
//!   frames whose class geometry mirrors the paper's camera view (hands,
//!   phone, cup, reaching pose, ...), deliberately making
//!   texting/talking/normal visually similar (as in the paper's CNN
//!   confusion matrix) while the IMU disambiguates them;
//! * an **IMU synthesizer** ([`ImuSynthesizer`]) producing accelerometer /
//!   gyroscope / gravity / rotation channels at the paper's 25 ms cadence;
//! * **session scripting** ([`schedule::build_schedule`]) reproducing the
//!   collection protocol: 5 drivers, scripted 15 s distraction segments,
//!   class durations proportional to Table 1;
//! * an **8-class canonical taxonomy** ([`CanonicalBehavior`]) layering
//!   two drowsiness classes (eye closure, head droop) over Table 1, with
//!   a second **side camera view** ([`DrivingWorld::render_side_frame`])
//!   and drowsy IMU micro-corrections — the multi-stream proving ground
//!   for the N-stream modality registry in `darnet-core`.
//!
//! Everything is seeded and reproducible.
//!
//! ```
//! use darnet_sim::{Behavior, DrivingWorld, WorldConfig};
//!
//! let world = DrivingWorld::new(WorldConfig::default());
//! let frame = world.render_frame(0, Behavior::Texting, 1.25);
//! assert_eq!(frame.width(), 48);
//! let imu = world.imu_sample(0, Behavior::Texting, 1.25);
//! assert_eq!(imu.to_features().len(), 12);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

mod behavior;
mod driver;
mod frame;
mod imu;
mod render;
pub mod schedule;
mod vehicle;
mod world;

pub use behavior::{Behavior, CanonicalBehavior, ExtendedBehavior, ImuClass};
pub use driver::DriverProfile;
pub use frame::Frame;
pub use imu::{ImuSample, ImuSynthesizer};
pub use render::FrameRenderer;
pub use schedule::{ScheduleConfig, Segment};
pub use vehicle::{VehicleDynamics, VehicleState};
pub use world::{DrivingWorld, WorldConfig};
