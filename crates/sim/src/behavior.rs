//! Behaviour taxonomies: the paper's 6-class driving set (Table 1), the
//! 18-class extended set used by the dCNN privacy study (§5.3), and the
//! 3-class phone-orientation set the IMU models operate on.

use serde::{Deserialize, Serialize};

/// The six driver behaviour classes of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Behavior {
    /// Class 1 — both hands on the wheel, attention forward.
    NormalDriving,
    /// Class 2 — phone held to the ear.
    Talking,
    /// Class 3 — phone held between waist and eye level.
    Texting,
    /// Class 4 — eating or drinking (cup/food near the mouth).
    EatingDrinking,
    /// Class 5 — hair and makeup (hand near the top of the head).
    HairMakeup,
    /// Class 6 — reaching toward the passenger side or back seat.
    Reaching,
}

impl Behavior {
    /// All six classes in Table 1 order.
    pub const ALL: [Behavior; 6] = [
        Behavior::NormalDriving,
        Behavior::Talking,
        Behavior::Texting,
        Behavior::EatingDrinking,
        Behavior::HairMakeup,
        Behavior::Reaching,
    ];

    /// Zero-based class index (Table 1 class number minus one).
    pub fn index(self) -> usize {
        match self {
            Behavior::NormalDriving => 0,
            Behavior::Talking => 1,
            Behavior::Texting => 2,
            Behavior::EatingDrinking => 3,
            Behavior::HairMakeup => 4,
            Behavior::Reaching => 5,
        }
    }

    /// The class for a zero-based index.
    ///
    /// Returns `None` if `index >= 6`.
    pub fn from_index(index: usize) -> Option<Behavior> {
        Behavior::ALL.get(index).copied()
    }

    /// Human-readable name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Behavior::NormalDriving => "Normal Driving",
            Behavior::Talking => "Talking",
            Behavior::Texting => "Texting",
            Behavior::EatingDrinking => "Eating/Drinking",
            Behavior::HairMakeup => "Hair and Makeup",
            Behavior::Reaching => "Reaching",
        }
    }

    /// The phone-orientation class the driver's mobile device is in during
    /// this behaviour.
    ///
    /// Per the paper, classes 4–6 do not involve the phone, which sits in
    /// the driver's front-right pocket — the "Normal Driving" position for
    /// the IMU stream.
    pub fn imu_class(self) -> ImuClass {
        match self {
            Behavior::Talking => ImuClass::Talking,
            Behavior::Texting => ImuClass::Texting,
            _ => ImuClass::Normal,
        }
    }

    /// Whether task-specific IMU data exists for this behaviour (the
    /// phone is actively used only while talking or texting).
    pub fn has_task_imu(self) -> bool {
        matches!(self, Behavior::Talking | Behavior::Texting)
    }

    /// Whether Table 1 lists an IMU data type for this class (classes 1–3
    /// — normal driving contributes pocket-orientation IMU data; classes
    /// 4–6 are recorded as image-only).
    pub fn table1_has_imu(self) -> bool {
        matches!(
            self,
            Behavior::NormalDriving | Behavior::Talking | Behavior::Texting
        )
    }
}

impl std::fmt::Display for Behavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Phone-orientation classes for the IMU stream.
///
/// The paper positions the client device in "one of five varying
/// orientations" grouped into three classes: texting (hand, waist-to-eye
/// level), talking (at the ear), and everything else (horizontal in the
/// front-right pocket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ImuClass {
    /// Device in the pocket — all non-phone behaviours.
    Normal,
    /// Device held to the ear.
    Talking,
    /// Device held between waist and eye level.
    Texting,
}

impl ImuClass {
    /// All three classes.
    pub const ALL: [ImuClass; 3] = [ImuClass::Normal, ImuClass::Talking, ImuClass::Texting];

    /// Zero-based index.
    pub fn index(self) -> usize {
        match self {
            ImuClass::Normal => 0,
            ImuClass::Talking => 1,
            ImuClass::Texting => 2,
        }
    }

    /// The class for a zero-based index, if valid.
    pub fn from_index(index: usize) -> Option<ImuClass> {
        ImuClass::ALL.get(index).copied()
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ImuClass::Normal => "Normal",
            ImuClass::Talking => "Talking",
            ImuClass::Texting => "Texting",
        }
    }
}

impl std::fmt::Display for ImuClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 8-class canonical multi-stream taxonomy: the paper's six Table-1
/// behaviours plus two drowsiness classes (eye closure and head droop)
/// that only a multi-view, multi-modality stack separates reliably —
/// drowsiness cues live in the face/head geometry (frames) and in
/// steering micro-corrections (IMU), not in hand position.
///
/// The first six indices coincide with [`Behavior`] so 6-class models and
/// labels embed directly into the canonical set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CanonicalBehavior {
    /// Class 1 — both hands on the wheel, attention forward.
    NormalDriving,
    /// Class 2 — phone held to the ear.
    Talking,
    /// Class 3 — phone held between waist and eye level.
    Texting,
    /// Class 4 — eating or drinking.
    EatingDrinking,
    /// Class 5 — hair and makeup.
    HairMakeup,
    /// Class 6 — reaching toward the passenger side or back seat.
    Reaching,
    /// Class 7 — drowsiness onset: eyes closing, posture still nominal.
    EyesClosing,
    /// Class 8 — advanced drowsiness: head drooping toward the chest.
    HeadDroop,
}

impl CanonicalBehavior {
    /// All eight classes, the first six in Table 1 order.
    pub const ALL: [CanonicalBehavior; 8] = [
        CanonicalBehavior::NormalDriving,
        CanonicalBehavior::Talking,
        CanonicalBehavior::Texting,
        CanonicalBehavior::EatingDrinking,
        CanonicalBehavior::HairMakeup,
        CanonicalBehavior::Reaching,
        CanonicalBehavior::EyesClosing,
        CanonicalBehavior::HeadDroop,
    ];

    /// Zero-based class index.
    pub fn index(self) -> usize {
        match self {
            CanonicalBehavior::NormalDriving => 0,
            CanonicalBehavior::Talking => 1,
            CanonicalBehavior::Texting => 2,
            CanonicalBehavior::EatingDrinking => 3,
            CanonicalBehavior::HairMakeup => 4,
            CanonicalBehavior::Reaching => 5,
            CanonicalBehavior::EyesClosing => 6,
            CanonicalBehavior::HeadDroop => 7,
        }
    }

    /// The class for a zero-based index, if valid.
    pub fn from_index(index: usize) -> Option<CanonicalBehavior> {
        CanonicalBehavior::ALL.get(index).copied()
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CanonicalBehavior::EyesClosing => "Eyes Closing",
            CanonicalBehavior::HeadDroop => "Head Droop",
            other => match other.base() {
                Some(b) => b.name(),
                None => "Unknown",
            },
        }
    }

    /// The Table-1 behaviour this class embeds, or `None` for the two
    /// drowsiness classes.
    pub fn base(self) -> Option<Behavior> {
        Behavior::from_index(self.index())
    }

    /// Whether this is one of the two drowsiness classes.
    pub fn is_drowsy(self) -> bool {
        matches!(
            self,
            CanonicalBehavior::EyesClosing | CanonicalBehavior::HeadDroop
        )
    }

    /// Embeds a Table-1 behaviour into the canonical set (same index).
    pub fn from_behavior(b: Behavior) -> CanonicalBehavior {
        CanonicalBehavior::ALL[b.index()]
    }
}

impl std::fmt::Display for CanonicalBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 18-class extended taxonomy of the "previously collected distracted
/// driver dataset" the paper's dCNN privacy study evaluates on (§5.3: 18
/// classes, 10 drivers, GoPro at 30 fps).
///
/// The paper does not enumerate the 18 classes; this reproduction uses a
/// plausible refinement of the 6-class set (left/right-hand variants and
/// additional in-cabin tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ExtendedBehavior {
    NormalDriving,
    TalkingLeft,
    TalkingRight,
    TextingLeft,
    TextingRight,
    PhoneOnDash,
    Drinking,
    Eating,
    Smoking,
    Hair,
    Makeup,
    ReachingSide,
    ReachingBack,
    AdjustingRadio,
    AdjustingNavigation,
    TalkingToPassenger,
    LookingBack,
    Yawning,
}

impl ExtendedBehavior {
    /// All eighteen classes.
    pub const ALL: [ExtendedBehavior; 18] = [
        ExtendedBehavior::NormalDriving,
        ExtendedBehavior::TalkingLeft,
        ExtendedBehavior::TalkingRight,
        ExtendedBehavior::TextingLeft,
        ExtendedBehavior::TextingRight,
        ExtendedBehavior::PhoneOnDash,
        ExtendedBehavior::Drinking,
        ExtendedBehavior::Eating,
        ExtendedBehavior::Smoking,
        ExtendedBehavior::Hair,
        ExtendedBehavior::Makeup,
        ExtendedBehavior::ReachingSide,
        ExtendedBehavior::ReachingBack,
        ExtendedBehavior::AdjustingRadio,
        ExtendedBehavior::AdjustingNavigation,
        ExtendedBehavior::TalkingToPassenger,
        ExtendedBehavior::LookingBack,
        ExtendedBehavior::Yawning,
    ];

    /// Zero-based class index.
    pub fn index(self) -> usize {
        // `ALL` lists every variant in declaration order; falling back to 0
        // (instead of panicking) keeps this total should the lists ever
        // drift — `extended_taxonomy_has_18_distinct_classes` pins that
        // they don't.
        ExtendedBehavior::ALL
            .iter()
            .position(|b| *b == self)
            .unwrap_or(0)
    }

    /// The class for a zero-based index, if valid.
    pub fn from_index(index: usize) -> Option<ExtendedBehavior> {
        ExtendedBehavior::ALL.get(index).copied()
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ExtendedBehavior::NormalDriving => "Normal Driving",
            ExtendedBehavior::TalkingLeft => "Talking (left hand)",
            ExtendedBehavior::TalkingRight => "Talking (right hand)",
            ExtendedBehavior::TextingLeft => "Texting (left hand)",
            ExtendedBehavior::TextingRight => "Texting (right hand)",
            ExtendedBehavior::PhoneOnDash => "Phone on dash",
            ExtendedBehavior::Drinking => "Drinking",
            ExtendedBehavior::Eating => "Eating",
            ExtendedBehavior::Smoking => "Smoking",
            ExtendedBehavior::Hair => "Hair",
            ExtendedBehavior::Makeup => "Makeup",
            ExtendedBehavior::ReachingSide => "Reaching (side)",
            ExtendedBehavior::ReachingBack => "Reaching (back)",
            ExtendedBehavior::AdjustingRadio => "Adjusting radio",
            ExtendedBehavior::AdjustingNavigation => "Adjusting navigation",
            ExtendedBehavior::TalkingToPassenger => "Talking to passenger",
            ExtendedBehavior::LookingBack => "Looking back",
            ExtendedBehavior::Yawning => "Yawning",
        }
    }
}

impl std::fmt::Display for ExtendedBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_indices_roundtrip() {
        for (i, b) in Behavior::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
            assert_eq!(Behavior::from_index(i), Some(*b));
        }
        assert_eq!(Behavior::from_index(6), None);
    }

    #[test]
    fn imu_mapping_matches_table1_data_types() {
        assert_eq!(Behavior::NormalDriving.imu_class(), ImuClass::Normal);
        assert_eq!(Behavior::Talking.imu_class(), ImuClass::Talking);
        assert_eq!(Behavior::Texting.imu_class(), ImuClass::Texting);
        // Classes 4–6 are "Normal Driving" for the IMU per Table 1.
        assert_eq!(Behavior::EatingDrinking.imu_class(), ImuClass::Normal);
        assert_eq!(Behavior::HairMakeup.imu_class(), ImuClass::Normal);
        assert_eq!(Behavior::Reaching.imu_class(), ImuClass::Normal);
    }

    #[test]
    fn only_phone_classes_have_task_imu() {
        let with_imu: Vec<_> = Behavior::ALL.iter().filter(|b| b.has_task_imu()).collect();
        assert_eq!(with_imu.len(), 2);
    }

    #[test]
    fn canonical_taxonomy_embeds_table1_then_drowsiness() {
        assert_eq!(CanonicalBehavior::ALL.len(), 8);
        for (i, c) in CanonicalBehavior::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(CanonicalBehavior::from_index(i), Some(*c));
        }
        assert_eq!(CanonicalBehavior::from_index(8), None);
        // The first six indices coincide with Behavior.
        for b in Behavior::ALL {
            let c = CanonicalBehavior::from_behavior(b);
            assert_eq!(c.index(), b.index());
            assert_eq!(c.base(), Some(b));
            assert!(!c.is_drowsy());
        }
        assert!(CanonicalBehavior::EyesClosing.is_drowsy());
        assert!(CanonicalBehavior::HeadDroop.is_drowsy());
        assert_eq!(CanonicalBehavior::EyesClosing.base(), None);
        assert_eq!(CanonicalBehavior::HeadDroop.base(), None);
    }

    #[test]
    fn extended_taxonomy_has_18_distinct_classes() {
        assert_eq!(ExtendedBehavior::ALL.len(), 18);
        for (i, b) in ExtendedBehavior::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
            assert_eq!(ExtendedBehavior::from_index(i), Some(*b));
        }
        assert_eq!(ExtendedBehavior::from_index(18), None);
    }

    #[test]
    fn imu_class_indices_roundtrip() {
        for (i, c) in ImuClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ImuClass::from_index(i), Some(*c));
        }
    }

    #[test]
    fn display_names_are_nonempty() {
        for b in Behavior::ALL {
            assert!(!b.to_string().is_empty());
        }
        for b in ExtendedBehavior::ALL {
            assert!(!b.to_string().is_empty());
        }
    }
}
