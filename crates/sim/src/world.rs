//! The assembled driving world: drivers, vehicle dynamics, renderer, and
//! IMU synthesizer behind one façade.

use serde::{Deserialize, Serialize};

use crate::behavior::{Behavior, CanonicalBehavior, ExtendedBehavior};
use crate::driver::DriverProfile;
use crate::frame::Frame;
use crate::imu::{ImuSample, ImuSynthesizer};
use crate::render::FrameRenderer;
use crate::vehicle::VehicleDynamics;

/// World configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of driver identities to generate.
    pub drivers: usize,
    /// Square frame edge length in pixels.
    pub frame_size: usize,
    /// Master seed; every sub-generator derives from it.
    pub seed: u64,
    /// Image sensor noise sigma.
    pub image_noise: f32,
    /// IMU white-noise sigma.
    pub imu_noise: f32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            drivers: 5,
            frame_size: 48,
            seed: 0xDA12_2017,
            image_noise: 0.07,
            imu_noise: 0.08,
        }
    }
}

/// A deterministic virtual world that answers "what does driver `d`'s
/// camera frame / IMU reading look like at time `t` while performing
/// behaviour `b`?" — the ground-truth generator behind every experiment in
/// this reproduction.
#[derive(Debug, Clone)]
pub struct DrivingWorld {
    config: WorldConfig,
    drivers: Vec<DriverProfile>,
    dynamics: Vec<VehicleDynamics>,
    renderer: FrameRenderer,
    side_renderer: FrameRenderer,
    imu: ImuSynthesizer,
}

impl DrivingWorld {
    /// Builds a world from a configuration.
    pub fn new(config: WorldConfig) -> Self {
        let drivers = DriverProfile::roster(config.drivers, config.seed);
        let dynamics = drivers
            .iter()
            .map(|d| VehicleDynamics::new(d.motion_style))
            .collect();
        let renderer = FrameRenderer::new(config.seed ^ 0xF00D)
            .with_size(config.frame_size)
            .with_noise(config.image_noise);
        // The side camera is a physically separate sensor: its own seed
        // stream, same optics.
        let side_renderer = FrameRenderer::new(config.seed ^ 0x51DE)
            .with_size(config.frame_size)
            .with_noise(config.image_noise);
        let imu = ImuSynthesizer::new(config.seed ^ 0xBEEF).with_noise(config.imu_noise);
        DrivingWorld {
            config,
            drivers,
            dynamics,
            renderer,
            side_renderer,
            imu,
        }
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Number of drivers.
    pub fn driver_count(&self) -> usize {
        self.drivers.len()
    }

    /// The profile of driver `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn driver(&self, id: usize) -> &DriverProfile {
        &self.drivers[id]
    }

    /// Renders driver `id`'s camera frame at session time `t` while
    /// performing `behavior`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn render_frame(&self, id: usize, behavior: Behavior, t: f64) -> Frame {
        self.renderer.render(&self.drivers[id], behavior, t)
    }

    /// Renders an 18-class extended-behaviour frame.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn render_extended_frame(&self, id: usize, behavior: ExtendedBehavior, t: f64) -> Frame {
        self.renderer
            .render_extended(&self.drivers[id], behavior, t)
    }

    /// Synthesizes the IMU reading of driver `id`'s phone at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn imu_sample(&self, id: usize, behavior: Behavior, t: f64) -> ImuSample {
        let state = self.dynamics[id].state_at(t);
        self.imu.sample(&self.drivers[id], behavior, &state, t)
    }

    /// Renders driver `id`'s dash-camera frame for one of the 8 canonical
    /// classes (bit-identical to [`DrivingWorld::render_frame`] for the
    /// six Table-1 classes).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn render_canonical_frame(&self, id: usize, class: CanonicalBehavior, t: f64) -> Frame {
        self.renderer.render_canonical(&self.drivers[id], class, t)
    }

    /// Renders driver `id`'s side-camera (A-pillar) frame for one of the
    /// 8 canonical classes — the third registered stream.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn render_side_frame(&self, id: usize, class: CanonicalBehavior, t: f64) -> Frame {
        self.side_renderer.render_side(&self.drivers[id], class, t)
    }

    /// Synthesizes the IMU reading for one of the 8 canonical classes
    /// (bit-identical to [`DrivingWorld::imu_sample`] for the six Table-1
    /// classes).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn imu_sample_canonical(&self, id: usize, class: CanonicalBehavior, t: f64) -> ImuSample {
        let state = self.dynamics[id].state_at(t);
        self.imu
            .sample_canonical(&self.drivers[id], class, &state, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_is_deterministic() {
        let a = DrivingWorld::new(WorldConfig::default());
        let b = DrivingWorld::new(WorldConfig::default());
        assert_eq!(
            a.render_frame(2, Behavior::Talking, 3.0),
            b.render_frame(2, Behavior::Talking, 3.0)
        );
        assert_eq!(
            a.imu_sample(2, Behavior::Talking, 3.0),
            b.imu_sample(2, Behavior::Talking, 3.0)
        );
    }

    #[test]
    fn config_controls_frame_size() {
        let world = DrivingWorld::new(WorldConfig {
            frame_size: 32,
            ..WorldConfig::default()
        });
        let f = world.render_frame(0, Behavior::NormalDriving, 0.0);
        assert_eq!(f.width(), 32);
    }

    #[test]
    fn drivers_have_distinct_dynamics() {
        let world = DrivingWorld::new(WorldConfig::default());
        assert_eq!(world.driver_count(), 5);
        // Different drivers produce different IMU readings at the same
        // instant (style + identity differences).
        let a = world.imu_sample(0, Behavior::NormalDriving, 5.0);
        let b = world.imu_sample(1, Behavior::NormalDriving, 5.0);
        assert_ne!(a, b);
    }

    #[test]
    fn extended_frames_render() {
        let world = DrivingWorld::new(WorldConfig {
            drivers: 10,
            ..WorldConfig::default()
        });
        let f = world.render_extended_frame(9, ExtendedBehavior::Smoking, 1.0);
        assert_eq!(f.width(), 48);
    }

    #[test]
    fn canonical_views_are_deterministic_and_base_classes_match_legacy() {
        let a = DrivingWorld::new(WorldConfig::default());
        let b = DrivingWorld::new(WorldConfig::default());
        for c in CanonicalBehavior::ALL {
            assert_eq!(
                a.render_side_frame(1, c, 2.0),
                b.render_side_frame(1, c, 2.0)
            );
        }
        assert_eq!(
            a.render_canonical_frame(2, CanonicalBehavior::Talking, 3.0),
            a.render_frame(2, Behavior::Talking, 3.0)
        );
        assert_eq!(
            a.imu_sample_canonical(2, CanonicalBehavior::Talking, 3.0),
            a.imu_sample(2, Behavior::Talking, 3.0)
        );
        // The side camera is an independent sensor: its frames differ
        // from the dash camera's for the same instant.
        assert_ne!(
            a.render_side_frame(2, CanonicalBehavior::Talking, 3.0),
            a.render_canonical_frame(2, CanonicalBehavior::Talking, 3.0)
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_driver_panics() {
        let world = DrivingWorld::new(WorldConfig::default());
        let _ = world.render_frame(99, Behavior::Talking, 0.0);
    }
}
