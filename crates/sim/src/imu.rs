//! IMU synthesis for the driver's mobile device.
//!
//! The paper's collection agent registers listeners for the accelerometer,
//! gyroscope, gravity, and rotation sensors (25 ms updates). This module
//! produces the same four 3-axis channels as a deterministic function of
//! phone orientation (texting / talking / pocket), driver gesture dynamics,
//! and the shared vehicle motion.
//!
//! Signal design notes:
//!
//! * **Texting** — screen-up orientation, high-frequency low-amplitude
//!   typing jitter (~8 Hz) on the accelerometer.
//! * **Talking** — vertical at the ear, slow ~1 Hz sway from head/arm
//!   movement, tilted gravity vector.
//! * **Pocket (normal)** — gravity along the device's y axis, dominated by
//!   road vibration and vehicle dynamics.
//! * **Reaching** — pocket orientation *plus* large low-frequency torso
//!   sway bursts. The paper observes exactly this effect: "the movement
//!   that occurs when reaching for an object adds enough noise to the IMU
//!   data to produce a talking classification" (§5.2).

use darnet_tensor::SplitMix64;
use serde::{Deserialize, Serialize};

use crate::behavior::{Behavior, CanonicalBehavior, ImuClass};
use crate::driver::DriverProfile;
use crate::vehicle::VehicleState;

/// Standard gravity in m/s².
pub const G: f32 = 9.81;

/// One multimodal IMU reading (all four Android sensor channels the
/// paper's agent subscribes to).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSample {
    /// Accelerometer (includes gravity), m/s².
    pub accel: [f32; 3],
    /// Gyroscope, rad/s.
    pub gyro: [f32; 3],
    /// Gravity sensor (low-passed gravity direction), m/s².
    pub gravity: [f32; 3],
    /// Rotation vector (roll, pitch, yaw), radians.
    pub rotation: [f32; 3],
}

impl ImuSample {
    /// Number of scalar features per sample.
    pub const FEATURES: usize = 12;

    /// Flattens the sample to a 12-element feature vector in channel order
    /// accel, gyro, gravity, rotation.
    pub fn to_features(&self) -> [f32; Self::FEATURES] {
        [
            self.accel[0],
            self.accel[1],
            self.accel[2],
            self.gyro[0],
            self.gyro[1],
            self.gyro[2],
            self.gravity[0],
            self.gravity[1],
            self.gravity[2],
            self.rotation[0],
            self.rotation[1],
            self.rotation[2],
        ]
    }

    /// Reconstructs a sample from a 12-element feature vector.
    pub fn from_features(f: &[f32; Self::FEATURES]) -> Self {
        ImuSample {
            accel: [f[0], f[1], f[2]],
            gyro: [f[3], f[4], f[5]],
            gravity: [f[6], f[7], f[8]],
            rotation: [f[9], f[10], f[11]],
        }
    }
}

/// Deterministic IMU signal generator.
#[derive(Debug, Clone)]
pub struct ImuSynthesizer {
    seed: u64,
    noise_sigma: f32,
}

impl ImuSynthesizer {
    /// Creates a synthesizer with the given seed.
    pub fn new(seed: u64) -> Self {
        ImuSynthesizer {
            seed,
            noise_sigma: 0.08,
        }
    }

    /// Overrides the white-noise sigma added to every channel.
    pub fn with_noise(mut self, sigma: f32) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Synthesizes the IMU reading at time `t` for a driver performing
    /// `behavior` while the vehicle is in `vehicle` state.
    pub fn sample(
        &self,
        driver: &DriverProfile,
        behavior: Behavior,
        vehicle: &VehicleState,
        t: f64,
    ) -> ImuSample {
        let class = behavior.imu_class();
        let mut rng = SplitMix64::new(
            self.seed
                ^ (driver.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((t * 10_000.0) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ behavior.index() as u64,
        );
        let tf = t as f32;
        let style = driver.motion_style;
        let mj = driver.mount_jitter;

        // Base orientation (roll, pitch, yaw) and gravity direction per
        // class.
        // Base orientations deliberately overlap across drivers and
        // holding styles (wide mount jitter + slow hand wander): gravity
        // direction alone is not enough to separate the classes, so the
        // temporal signatures below carry much of the class information —
        // the regime where the paper's RNN beats the SVM.
        let wander = 0.25 * ((t * 0.13) as f32 + driver.texture_phase).sin();
        let (mut roll, mut pitch, mut yaw) = match class {
            // Screen up-ish, pitch varies with how the phone is held.
            ImuClass::Texting => (0.20 + 2.0 * mj + wander, 0.60 + wander, 0.1),
            // Tilted toward the ear.
            ImuClass::Talking => (0.55 + 2.0 * mj + wander, 0.50 - 0.5 * wander, 0.3),
            // Roughly horizontal in the front-right pocket.
            ImuClass::Normal => (0.30 + 2.0 * mj - wander, 0.80 + wander, 0.7),
        };

        // Gesture dynamics per class (plus the reaching special case).
        let mut jitter_acc = [0.0f32; 3];
        let mut jitter_gyro = [0.0f32; 3];
        match class {
            ImuClass::Texting => {
                // Typing: ~8 Hz micro-taps plus slow hand drift.
                let tap =
                    (tf * std::f32::consts::TAU * 8.3 + driver.texture_phase).sin() * 1.0 * style;
                let drift = (tf * 0.6).sin() * 0.15;
                jitter_acc = [tap * 0.4, tap, 0.3 * tap + drift];
                jitter_gyro = [0.05 * tap, 0.04 * tap, 0.02 * tap];
                roll += 0.03 * (tf * 1.1).sin();
                pitch += 0.04 * (tf * 0.9).sin();
            }
            ImuClass::Talking => {
                // Head/arm sway ~1.2 Hz, moderate amplitude.
                let sway =
                    (tf * std::f32::consts::TAU * 1.2 + driver.texture_phase).sin() * 0.8 * style;
                jitter_acc = [sway, 0.3 * sway, 0.2 * sway];
                jitter_gyro = [0.15 * sway, 0.10 * sway, 0.05 * sway];
                roll += 0.08 * (tf * 1.3).sin();
                yaw += 0.05 * (tf * 0.7).sin();
            }
            ImuClass::Normal => {
                if behavior == Behavior::Reaching {
                    // Torso sway bursts: large, low-frequency — confusable
                    // with the talking sway through a pocketed device.
                    let burst_gate = ((tf * 0.9).sin() > 0.2) as u8 as f32;
                    let sway = (tf * std::f32::consts::TAU * 1.1).sin() * 1.0 * style * burst_gate;
                    jitter_acc = [sway, 0.5 * sway, 0.3 * sway];
                    jitter_gyro = [0.12 * sway, 0.08 * sway, 0.06 * sway];
                    roll += 0.10 * (tf * 1.0).sin() * burst_gate;
                } else if behavior == Behavior::EatingDrinking || behavior == Behavior::HairMakeup {
                    // Mild body movement, clearly below the talking sway.
                    let sway = (tf * std::f32::consts::TAU * 0.8).sin() * 0.25 * style;
                    jitter_acc = [sway, 0.2 * sway, 0.1 * sway];
                    jitter_gyro = [0.03 * sway, 0.02 * sway, 0.02 * sway];
                }
            }
        }

        // Gravity vector from orientation (simplified rotation: pitch then
        // roll applied to (0, 0, g)).
        let gravity = [
            G * pitch.sin(),
            -G * roll.sin() * pitch.cos(),
            G * roll.cos() * pitch.cos(),
        ];

        // Vehicle common-mode acceleration projected into the device frame
        // (approximate: longitudinal couples to the pitch axis pair,
        // lateral to the roll pair).
        let veh_acc = [
            vehicle.accel_long * pitch.cos() + vehicle.accel_lat * yaw.sin(),
            vehicle.accel_lat * yaw.cos(),
            -vehicle.accel_long * pitch.sin(),
        ];
        // Road vibration: broadband, scaled by vehicle state.
        let vib = vehicle.vibration;
        let vib_acc = [rng.normal() * vib, rng.normal() * vib, rng.normal() * vib];

        let noise = self.noise_sigma;
        let accel = [
            gravity[0] + veh_acc[0] + jitter_acc[0] + vib_acc[0] + rng.normal() * noise,
            gravity[1] + veh_acc[1] + jitter_acc[1] + vib_acc[1] + rng.normal() * noise,
            gravity[2] + veh_acc[2] + jitter_acc[2] + vib_acc[2] + rng.normal() * noise,
        ];
        let gyro = [
            jitter_gyro[0] + vehicle.yaw_rate * yaw.sin() + rng.normal() * noise * 0.3,
            jitter_gyro[1] + vehicle.yaw_rate * yaw.cos() + rng.normal() * noise * 0.3,
            jitter_gyro[2] + vehicle.yaw_rate * 0.2 + rng.normal() * noise * 0.3,
        ];
        let rotation = [
            roll + rng.normal() * noise * 0.05,
            pitch + rng.normal() * noise * 0.05,
            yaw + vehicle.yaw_rate * 0.1 + rng.normal() * noise * 0.05,
        ];
        ImuSample {
            accel,
            gyro,
            gravity: [
                gravity[0] + rng.normal() * noise * 0.1,
                gravity[1] + rng.normal() * noise * 0.1,
                gravity[2] + rng.normal() * noise * 0.1,
            ],
            rotation,
        }
    }

    /// Synthesizes the IMU reading for one of the 8 canonical classes.
    ///
    /// The six Table-1 classes delegate to [`ImuSynthesizer::sample`] and
    /// are bit-identical to it. The two drowsiness classes share a fresh
    /// seed salt range (200+) and a *micro-correction* signature: the
    /// device sits in the pocket, voluntary gesture energy is low, the
    /// steering wander is slow — and sparse, sharp correction jerks fire
    /// when the drowsy driver snaps the wheel back, stronger and rarer the
    /// deeper the drowsiness.
    pub fn sample_canonical(
        &self,
        driver: &DriverProfile,
        class: CanonicalBehavior,
        vehicle: &VehicleState,
        t: f64,
    ) -> ImuSample {
        let base = match class.base() {
            Some(b) => return self.sample(driver, b, vehicle, t),
            None => class,
        };
        let mut rng = SplitMix64::new(
            self.seed
                ^ (driver.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((t * 10_000.0) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ (200 + base.index() as u64),
        );
        let tf = t as f32;
        let style = driver.motion_style;
        let mj = driver.mount_jitter;

        // Pocket orientation, same family as normal driving but with a
        // slower, wider wander — the drowsy body slumps gradually.
        let wander = 0.35 * ((t * 0.05) as f32 + driver.texture_phase).sin();
        let depth = match base {
            CanonicalBehavior::HeadDroop => 1.0f32,
            _ => 0.5,
        };
        let mut roll: f32 = 0.30 + 2.0 * mj - wander;
        let mut pitch: f32 = 0.80 + wander + 0.06 * depth;
        let yaw: f32 = 0.7;

        // Micro-corrections: long quiet stretches, then a sharp wheel jerk.
        // The gate opens rarely (rarer and harder with depth), producing a
        // spiky first-difference profile no Table-1 class has.
        let gate =
            (((tf * 0.31) + driver.texture_phase).sin() > (0.90 + 0.05 * depth)) as u8 as f32;
        let jerk = (tf * std::f32::consts::TAU * 2.4).sin() * (0.9 + 0.9 * depth) * style * gate;
        // Between corrections only a faint sub-gesture tremor remains —
        // less voluntary motion than any distraction class.
        let tremor = (tf * std::f32::consts::TAU * 0.4).sin() * 0.08 * style;
        let jitter_acc = [jerk + tremor, 0.4 * jerk, 0.2 * jerk + 0.5 * tremor];
        let jitter_gyro = [0.20 * jerk, 0.12 * jerk, 0.30 * jerk + 0.02 * tremor];
        roll += 0.05 * (tf * 0.3).sin() * depth;
        pitch += 0.04 * (tf * 0.2).sin() * depth;

        let gravity = [
            G * pitch.sin(),
            -G * roll.sin() * pitch.cos(),
            G * roll.cos() * pitch.cos(),
        ];
        let veh_acc = [
            vehicle.accel_long * pitch.cos() + vehicle.accel_lat * yaw.sin(),
            vehicle.accel_lat * yaw.cos(),
            -vehicle.accel_long * pitch.sin(),
        ];
        let vib = vehicle.vibration;
        let vib_acc = [rng.normal() * vib, rng.normal() * vib, rng.normal() * vib];

        let noise = self.noise_sigma;
        let accel = [
            gravity[0] + veh_acc[0] + jitter_acc[0] + vib_acc[0] + rng.normal() * noise,
            gravity[1] + veh_acc[1] + jitter_acc[1] + vib_acc[1] + rng.normal() * noise,
            gravity[2] + veh_acc[2] + jitter_acc[2] + vib_acc[2] + rng.normal() * noise,
        ];
        let gyro = [
            jitter_gyro[0] + vehicle.yaw_rate * yaw.sin() + rng.normal() * noise * 0.3,
            jitter_gyro[1] + vehicle.yaw_rate * yaw.cos() + rng.normal() * noise * 0.3,
            jitter_gyro[2] + vehicle.yaw_rate * 0.2 + rng.normal() * noise * 0.3,
        ];
        let rotation = [
            roll + rng.normal() * noise * 0.05,
            pitch + rng.normal() * noise * 0.05,
            yaw + vehicle.yaw_rate * 0.1 + rng.normal() * noise * 0.05,
        ];
        ImuSample {
            accel,
            gyro,
            gravity: [
                gravity[0] + rng.normal() * noise * 0.1,
                gravity[1] + rng.normal() * noise * 0.1,
                gravity[2] + rng.normal() * noise * 0.1,
            ],
            rotation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::VehicleDynamics;

    fn setup() -> (ImuSynthesizer, DriverProfile, VehicleState) {
        let synth = ImuSynthesizer::new(42);
        let driver = DriverProfile::generate(0, 42);
        let vehicle = VehicleDynamics::new(1.0).state_at(10.0);
        (synth, driver, vehicle)
    }

    #[test]
    fn sampling_is_deterministic() {
        let (synth, driver, vehicle) = setup();
        let a = synth.sample(&driver, Behavior::Texting, &vehicle, 1.0);
        let b = synth.sample(&driver, Behavior::Texting, &vehicle, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn gravity_magnitude_is_about_g() {
        let (synth, driver, vehicle) = setup();
        for b in Behavior::ALL {
            let s = synth.sample(&driver, b, &vehicle, 2.0);
            let mag = (s.gravity[0].powi(2) + s.gravity[1].powi(2) + s.gravity[2].powi(2)).sqrt();
            assert!((mag - G).abs() < 0.5, "{b}: |gravity| = {mag}");
        }
    }

    #[test]
    fn orientation_class_means_differ_but_overlap() {
        // Orientations are *deliberately* overlapping (wide mount jitter +
        // hand wander) so gravity direction alone cannot separate the
        // classes — but the class mean directions must still differ, or no
        // model could learn the problem at all.
        let synth = ImuSynthesizer::new(42).with_noise(0.0);
        let vehicle = VehicleDynamics::new(1.0).state_at(12.0);
        let mean_gravity = |b: Behavior| -> [f32; 3] {
            let mut acc = [0.0f32; 3];
            let mut n = 0.0f32;
            for d in 0..5 {
                let driver = DriverProfile::generate(d, 42);
                for i in 0..40 {
                    let s = synth.sample(&driver, b, &vehicle, i as f64 * 0.25);
                    for (a, g) in acc.iter_mut().zip(&s.gravity) {
                        *a += g;
                    }
                    n += 1.0;
                }
            }
            [acc[0] / n, acc[1] / n, acc[2] / n]
        };
        let cos = |a: &[f32; 3], b: &[f32; 3]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        let texting = mean_gravity(Behavior::Texting);
        let talking = mean_gravity(Behavior::Talking);
        let pocket = mean_gravity(Behavior::NormalDriving);
        assert!(
            cos(&texting, &pocket) < 0.999,
            "texting vs pocket too close"
        );
        assert!(
            cos(&talking, &pocket) < 0.999,
            "talking vs pocket too close"
        );
        assert!(
            cos(&texting, &talking) < 0.9999,
            "texting vs talking identical"
        );
    }

    #[test]
    fn texting_has_higher_frequency_energy_than_pocket() {
        let (synth, driver, _) = setup();
        let vehicle = VehicleDynamics::new(1.0).state_at(12.0); // cruise, low vibration variance
                                                                // First-difference energy as a crude high-frequency proxy.
        let diff_energy = |b: Behavior| -> f32 {
            let mut prev = synth.sample(&driver, b, &vehicle, 0.0).accel[1];
            let mut acc = 0.0;
            for i in 1..200 {
                let t = i as f64 * 0.025;
                let cur = synth.sample(&driver, b, &vehicle, t).accel[1];
                acc += (cur - prev).powi(2);
                prev = cur;
            }
            acc
        };
        let texting = diff_energy(Behavior::Texting);
        let normal = diff_energy(Behavior::NormalDriving);
        assert!(texting > normal, "texting {texting} vs normal {normal}");
    }

    #[test]
    fn reaching_is_noisier_than_plain_normal() {
        let (synth, driver, vehicle) = setup();
        let var = |b: Behavior| -> f32 {
            let samples: Vec<f32> = (0..200)
                .map(|i| synth.sample(&driver, b, &vehicle, i as f64 * 0.025).accel[0])
                .collect();
            let mean = samples.iter().sum::<f32>() / samples.len() as f32;
            samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / samples.len() as f32
        };
        assert!(var(Behavior::Reaching) > var(Behavior::NormalDriving) * 1.2);
    }

    #[test]
    fn canonical_base_classes_match_legacy_sample_bitwise() {
        let (synth, driver, vehicle) = setup();
        for b in Behavior::ALL {
            let legacy = synth.sample(&driver, b, &vehicle, 3.0);
            let canonical =
                synth.sample_canonical(&driver, CanonicalBehavior::from_behavior(b), &vehicle, 3.0);
            assert_eq!(legacy, canonical, "class {b} diverged");
        }
    }

    #[test]
    fn drowsy_imu_is_deterministic_and_quieter_between_corrections() {
        let (synth, driver, vehicle) = setup();
        for c in [CanonicalBehavior::EyesClosing, CanonicalBehavior::HeadDroop] {
            let a = synth.sample_canonical(&driver, c, &vehicle, 1.0);
            let b = synth.sample_canonical(&driver, c, &vehicle, 1.0);
            assert_eq!(a, b);
        }
        // Drowsy micro-corrections are sparse: median first-difference
        // energy sits below texting's continuous typing jitter.
        let synth = ImuSynthesizer::new(42).with_noise(0.0);
        let vehicle = VehicleDynamics::new(1.0).state_at(12.0);
        let diffs = |f: &dyn Fn(f64) -> f32| -> Vec<f32> {
            let mut prev = f(0.0);
            (1..200)
                .map(|i| {
                    let cur = f(i as f64 * 0.025);
                    let d = (cur - prev).abs();
                    prev = cur;
                    d
                })
                .collect()
        };
        let median = |mut v: Vec<f32>| -> f32 {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let drowsy = median(diffs(&|t| {
            synth
                .sample_canonical(&driver, CanonicalBehavior::EyesClosing, &vehicle, t)
                .accel[1]
        }));
        let texting = median(diffs(&|t| {
            synth.sample(&driver, Behavior::Texting, &vehicle, t).accel[1]
        }));
        assert!(
            drowsy < texting,
            "drowsy median diff {drowsy} not below texting {texting}"
        );
    }

    #[test]
    fn features_roundtrip() {
        let (synth, driver, vehicle) = setup();
        let s = synth.sample(&driver, Behavior::Talking, &vehicle, 5.0);
        let f = s.to_features();
        assert_eq!(ImuSample::from_features(&f), s);
    }

    #[test]
    fn vehicle_turn_shows_up_in_gyro() {
        let synth = ImuSynthesizer::new(42).with_noise(0.0);
        let driver = DriverProfile::generate(0, 42);
        let dynamics = VehicleDynamics::new(1.0);
        let straight = dynamics.state_at(12.0);
        let turning = dynamics.state_at(25.5);
        let s_straight = synth.sample(&driver, Behavior::NormalDriving, &straight, 12.0);
        let s_turn = synth.sample(&driver, Behavior::NormalDriving, &turning, 25.5);
        let mag = |g: &[f32; 3]| g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(mag(&s_turn.gyro) > mag(&s_straight.gyro));
    }
}
