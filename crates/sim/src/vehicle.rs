//! Deterministic vehicle dynamics along a fixed route.
//!
//! The paper's collection protocol has every driver follow the same route;
//! here the route is a repeating cycle of accelerate / cruise / turn /
//! brake segments. The resulting longitudinal/lateral acceleration and yaw
//! rate feed into every IMU channel as common-mode signal, so the IMU
//! models must separate body gestures from vehicle motion.

use serde::{Deserialize, Serialize};

/// Instantaneous vehicle state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// Speed in m/s.
    pub speed: f32,
    /// Longitudinal acceleration in m/s².
    pub accel_long: f32,
    /// Lateral (centripetal) acceleration in m/s².
    pub accel_lat: f32,
    /// Yaw rate in rad/s.
    pub yaw_rate: f32,
    /// Road-vibration amplitude scale at this instant.
    pub vibration: f32,
}

/// One segment of the scripted route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum RoutePhase {
    Accelerate,
    Cruise,
    TurnLeft,
    TurnRight,
    Brake,
}

/// A deterministic route simulator. The route is a fixed cycle; drivers
/// differ only by a style factor applied to accelerations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleDynamics {
    /// Driver style factor (1.0 = nominal; >1 more aggressive).
    style: f32,
    /// Total cycle duration in seconds.
    cycle: f64,
}

/// (phase, start, duration) table for one route cycle, in seconds.
const ROUTE: [(RoutePhase, f64, f64); 8] = [
    (RoutePhase::Accelerate, 0.0, 8.0),
    (RoutePhase::Cruise, 8.0, 15.0),
    (RoutePhase::TurnLeft, 23.0, 5.0),
    (RoutePhase::Cruise, 28.0, 12.0),
    (RoutePhase::TurnRight, 40.0, 5.0),
    (RoutePhase::Cruise, 45.0, 10.0),
    (RoutePhase::Brake, 55.0, 6.0),
    (RoutePhase::Cruise, 61.0, 9.0),
];

impl VehicleDynamics {
    /// Creates a route simulator for a driver with the given style factor.
    pub fn new(style: f32) -> Self {
        let cycle = ROUTE.iter().map(|(_, _, d)| d).sum();
        VehicleDynamics { style, cycle }
    }

    /// Route cycle length in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        self.cycle
    }

    /// Vehicle state at absolute time `t` (seconds).
    pub fn state_at(&self, t: f64) -> VehicleState {
        let tc = t.rem_euclid(self.cycle);
        let (phase, start, dur) = ROUTE
            .iter()
            .find(|(_, s, d)| tc >= *s && tc < s + d)
            .copied()
            .unwrap_or(ROUTE[0]);
        let progress = ((tc - start) / dur) as f32; // 0..1 within phase
        let s = self.style;
        // Base cruise speed ~13 m/s (about 30 mph, a surface-street route).
        let cruise = 13.0;
        let (speed, accel_long, accel_lat, yaw_rate) = match phase {
            RoutePhase::Accelerate => {
                let a = 1.8 * s;
                (cruise * progress, a, 0.0, 0.0)
            }
            RoutePhase::Cruise => (cruise, 0.0, 0.0, 0.0),
            RoutePhase::TurnLeft => {
                // Smooth half-sine turn profile.
                let amp = (std::f32::consts::PI * progress).sin();
                (cruise * 0.8, 0.0, 2.5 * s * amp, 0.35 * s * amp)
            }
            RoutePhase::TurnRight => {
                let amp = (std::f32::consts::PI * progress).sin();
                (cruise * 0.8, 0.0, -2.5 * s * amp, -0.35 * s * amp)
            }
            RoutePhase::Brake => {
                let a = -2.2 * s;
                (cruise * (1.0 - 0.8 * progress), a, 0.0, 0.0)
            }
        };
        // Road vibration grows with speed.
        let vibration = 0.05 + 0.015 * speed;
        VehicleState {
            speed,
            accel_long,
            accel_lat,
            yaw_rate,
            vibration,
        }
    }
}

impl Default for VehicleDynamics {
    fn default() -> Self {
        VehicleDynamics::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_repeats_with_cycle_period() {
        let v = VehicleDynamics::new(1.0);
        let a = v.state_at(12.5);
        let b = v.state_at(12.5 + v.cycle_seconds());
        assert_eq!(a, b);
    }

    #[test]
    fn acceleration_phase_accelerates() {
        let v = VehicleDynamics::new(1.0);
        let s = v.state_at(2.0);
        assert!(s.accel_long > 0.0);
        assert!(s.speed < 13.0);
    }

    #[test]
    fn turns_have_opposite_lateral_signs() {
        let v = VehicleDynamics::new(1.0);
        let left = v.state_at(25.5); // mid left turn
        let right = v.state_at(42.5); // mid right turn
        assert!(left.accel_lat > 0.0);
        assert!(right.accel_lat < 0.0);
        assert!(left.yaw_rate > 0.0);
        assert!(right.yaw_rate < 0.0);
    }

    #[test]
    fn braking_decelerates() {
        let v = VehicleDynamics::new(1.0);
        let s = v.state_at(58.0);
        assert!(s.accel_long < 0.0);
    }

    #[test]
    fn style_scales_accelerations() {
        let calm = VehicleDynamics::new(0.8).state_at(2.0);
        let aggressive = VehicleDynamics::new(1.2).state_at(2.0);
        assert!(aggressive.accel_long > calm.accel_long);
    }

    #[test]
    fn vibration_increases_with_speed() {
        let v = VehicleDynamics::new(1.0);
        let slow = v.state_at(0.5); // just started accelerating
        let fast = v.state_at(10.0); // cruising
        assert!(fast.vibration > slow.vibration);
    }

    #[test]
    fn negative_time_is_handled() {
        let v = VehicleDynamics::new(1.0);
        // rem_euclid keeps lookups valid for any time.
        let s = v.state_at(-3.0);
        assert!(s.speed >= 0.0);
    }
}
