//! Regenerates **Figure 4**: a frame at full resolution and at the three
//! distortion levels, written as PGM images plus ASCII previews.

use darnet_bench::header;
use darnet_core::experiment::run_fig4;
use darnet_core::privacy::PrivacyLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("darnet_fig4");
    std::fs::create_dir_all(&dir)?;
    header("Figure 4: distortion levels");
    let paths = run_fig4(&dir, 0xDA12_2017)?;
    for p in &paths {
        println!("wrote {}", p.display());
    }
    println!();
    for level in PrivacyLevel::ALL {
        println!(
            "{:8}  {}x{} px   {}x less data",
            level.model_name(),
            level.target_size(48),
            level.target_size(48),
            level.data_reduction()
        );
    }
    Ok(())
}
