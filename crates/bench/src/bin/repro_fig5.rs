//! Regenerates **Figure 5**: confusion matrices for (a) CNN+RNN,
//! (b) CNN+SVM, and (c) CNN-only on the collected dataset.

use darnet_bench::{experiment_config, header, pct};
use darnet_core::experiment::{table2_from_stack, train_stack};
use darnet_sim::Behavior;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = experiment_config();
    let stack = train_stack(&config)?;
    let report = table2_from_stack(&stack)?;
    let names: Vec<&str> = Behavior::ALL.iter().map(|b| b.name()).collect();

    header("Figure 5a: CNN+RNN (DarNet) confusion matrix");
    println!("top-1 {}", pct(report.top1_cnn_rnn));
    println!("{}", report.cm_cnn_rnn.to_table(&names));

    header("Figure 5b: CNN+SVM confusion matrix");
    println!("top-1 {}", pct(report.top1_cnn_svm));
    println!("{}", report.cm_cnn_svm.to_table(&names));

    header("Figure 5c: CNN (frame data only) confusion matrix");
    println!("top-1 {}", pct(report.top1_cnn));
    println!("{}", report.cm_cnn.to_table(&names));

    // The paper's headline per-class observation: texting accuracy jumps
    // from 36% (CNN) to 87% (CNN+RNN).
    let texting = Behavior::Texting.index();
    println!(
        "texting accuracy: CNN {} -> CNN+RNN {}",
        pct(report.cm_cnn.per_class_accuracy()[texting].unwrap_or(0.0)),
        pct(report.cm_cnn_rnn.per_class_accuracy()[texting].unwrap_or(0.0)),
    );
    Ok(())
}
