//! Parallel-backend and batched-inference benchmark with regression
//! tracking.
//!
//! Measures the tensor kernels (matmul, conv lowering) serial vs
//! 4-thread, and end-to-end engine classification at batch=1 vs
//! batch=32, then emits a flat-JSON metrics file (see
//! [`darnet_bench::metrics`]).
//!
//! Flags:
//!
//! * `--fast` — reduced sizes/reps (the CI smoke configuration).
//! * `--json` — print the metrics JSON to stdout instead of a summary.
//! * `--out PATH` — also write the metrics JSON to `PATH`.
//! * `--compare PATH` — compare `speedup_*` metrics against a committed
//!   baseline; exits non-zero on any >15% regression.
//! * `--check` — enforce the acceptance gates: ≥2× kernel speedup at 4
//!   threads *when ≥4 hardware threads exist* (on smaller hosts the
//!   threaded path must merely not collapse below 0.5×), and ≥1.5×
//!   engine throughput at batch=32 vs batch=1 unconditionally.

use std::collections::BTreeMap;
use std::time::Instant;

use darnet_bench::metrics;
use darnet_core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet_core::{
    AnalyticsEngine, BayesianCombiner, CnnConfig, CombinerKind, EngineConfig, FrameCnn,
    ImuModelSlot, ImuRnn, RnnConfig,
};
use darnet_sim::Frame;
use darnet_tensor::{im2col_with, Conv2dSpec, Parallelism, SplitMix64, Tensor};

const THREADS: usize = 4;
const TOLERANCE: f64 = 0.15;
const FRAME_SIZE: usize = 12;

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tensor::zeros(dims);
    // Non-zero everywhere: the matmul kernel skips zero elements, so a
    // zero-filled benchmark input would measure the wrong code path.
    for v in t.data_mut() {
        *v = rng.uniform(0.1, 1.0);
    }
    t
}

/// Best (minimum) seconds per call over `reps` calls, after one warmup
/// call. Min-of-N is robust to scheduler noise on small shared hosts,
/// where mean timings can swing 2× between runs.
fn time_per_call<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// A deliberately small engine: per-item compute low enough that the
/// per-call overheads batching amortizes (tensor allocation, layer
/// dispatch, per-step LSTM products) are a visible fraction of runtime.
fn tiny_engine() -> AnalyticsEngine {
    let cnn = FrameCnn::new(
        CnnConfig {
            input_size: FRAME_SIZE,
            classes: 6,
            width: 0.25,
            ..CnnConfig::default()
        },
        1,
    );
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 8,
            depth: 1,
            ..RnnConfig::default()
        },
        2,
    );
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).expect("rnn smoke fit");
    let mut combiner = BayesianCombiner::darnet();
    combiner
        .fit(
            &Tensor::full(&[6, 6], 1.0 / 6.0),
            &Tensor::full(&[6, 3], 1.0 / 3.0),
            &[0, 1, 2, 3, 4, 5],
        )
        .expect("combiner smoke fit");
    AnalyticsEngine::new(
        cnn,
        ImuModelSlot::Rnn(rnn),
        combiner,
        EngineConfig {
            combiner: CombinerKind::Bayesian,
        },
    )
}

fn run(fast: bool) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.insert("threads_available".to_string(), available as f64);

    let par = Parallelism::new(THREADS);
    let serial = Parallelism::serial();

    // Matmul: throughput in multiply-accumulates per second. Sizes are
    // large enough that thread dispatch (≈0.1 ms on this scale of host)
    // is small against the serial runtime even with one hardware thread.
    let (m, k, n) = if fast {
        (256, 256, 256)
    } else {
        (320, 320, 320)
    };
    let reps = if fast { 3 } else { 8 };
    let a = random_tensor(&[m, k], 11);
    let b = random_tensor(&[k, n], 12);
    let flops = (m * k * n) as f64;
    let t_serial = time_per_call(reps, || {
        a.matmul_with(&b, &serial).expect("matmul");
    });
    let t_par = time_per_call(reps, || {
        a.matmul_with(&b, &par).expect("matmul");
    });
    out.insert("throughput_matmul_serial".to_string(), flops / t_serial);
    out.insert("throughput_matmul_threads".to_string(), flops / t_par);
    out.insert("speedup_matmul_threads".to_string(), t_serial / t_par);

    // Conv lowering (im2col), the dominant convolution cost.
    let (cb, cc, ch) = if fast { (2, 8, 24) } else { (4, 8, 32) };
    let spec = Conv2dSpec::square(cc, 16, 3, 1, 1);
    let x = random_tensor(&[cb, cc, ch, ch], 13);
    let patches = (cb * ch * ch * spec.patch_len()) as f64;
    let t_serial = time_per_call(reps, || {
        im2col_with(&x, &spec, &serial).expect("im2col");
    });
    let t_par = time_per_call(reps, || {
        im2col_with(&x, &spec, &par).expect("im2col");
    });
    out.insert("throughput_conv_serial".to_string(), patches / t_serial);
    out.insert("throughput_conv_threads".to_string(), patches / t_par);
    out.insert("speedup_conv_threads".to_string(), t_serial / t_par);

    // End-to-end engine: batch=1 vs batch=32 items/s (serial handle, so
    // the comparison isolates batching from thread-level parallelism).
    let batch = 32usize;
    let mut engine = tiny_engine();
    let frames: Vec<Frame> = (0..batch)
        .map(|_| Frame::new(FRAME_SIZE, FRAME_SIZE))
        .collect();
    let windows = random_tensor(&[batch, WINDOW_LEN, IMU_FEATURES], 14);
    let row = WINDOW_LEN * IMU_FEATURES;
    let singles: Vec<Tensor> = (0..batch)
        .map(|i| {
            Tensor::from_vec(
                windows.data()[i * row..(i + 1) * row].to_vec(),
                &[1, WINDOW_LEN, IMU_FEATURES],
            )
            .expect("window slice")
        })
        .collect();
    let eng_reps = if fast { 5 } else { 10 };
    let t_single = time_per_call(eng_reps, || {
        for (frame, window) in frames.iter().zip(&singles) {
            engine.classify_step(frame, window).expect("classify_step");
        }
    });
    let t_batch = time_per_call(eng_reps, || {
        engine
            .classify_batch(&frames, &windows)
            .expect("classify_batch");
    });
    let items = batch as f64;
    out.insert("throughput_engine_batch1".to_string(), items / t_single);
    out.insert("throughput_engine_batch32".to_string(), items / t_batch);
    out.insert("speedup_engine_batch32".to_string(), t_single / t_batch);

    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let results = run(fast);
    let text = metrics::to_json(&results);

    if json {
        print!("{text}");
    } else {
        darnet_bench::header("parallel backend + batched inference");
        for (key, value) in &results {
            if key.starts_with("speedup_") {
                println!("{key:32} {value:.3}×");
            } else {
                println!("{key:32} {value:.3e}");
            }
        }
    }

    if let Some(path) = arg_value(&args, "--out") {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if let Some(path) = arg_value(&args, "--compare") {
        let baseline_text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let baseline =
            metrics::parse_json(&baseline_text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let regressions = metrics::compare(&baseline, &results, TOLERANCE);
        if regressions.is_empty() {
            eprintln!("no regressions against {path}");
        } else {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            failed = true;
        }
    }

    if check {
        let available = results["threads_available"];
        let kernel_floor = if available >= THREADS as f64 {
            2.0
        } else {
            // Fewer hardware threads than workers: wall-clock speedup is
            // physically capped near 1×; only guard against pathological
            // slowdown from the threaded dispatch itself.
            0.5
        };
        for key in ["speedup_matmul_threads", "speedup_conv_threads"] {
            if results[key] < kernel_floor {
                eprintln!(
                    "GATE FAILED: {key} = {:.3} < {kernel_floor} ({available} hardware threads)",
                    results[key]
                );
                failed = true;
            }
        }
        if results["speedup_engine_batch32"] < 1.5 {
            eprintln!(
                "GATE FAILED: speedup_engine_batch32 = {:.3} < 1.5",
                results["speedup_engine_batch32"]
            );
            failed = true;
        }
        if !failed {
            eprintln!("all gates passed");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
