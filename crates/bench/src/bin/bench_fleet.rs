//! Fleet-scale load benchmark: the sharded controller under tens of
//! thousands of simulated agents.
//!
//! Drives the deterministic `collect::loadgen` fleet (real collection
//! agents, fault-injected links, session-protocol traffic shapes) into a
//! [`ShardedController`] at multiple fleet sizes and shard counts, and
//! gates the fleet invariants of DESIGN.md §14:
//!
//! * **determinism** — the same seed produces a bit-identical
//!   [`FleetReport`] (counters, digests, simulated latencies);
//! * **shard transparency** — the merged canonical TSDB digest of an
//!   N-shard fleet equals a single controller's on identical traffic;
//! * **sustained ingest** — `rate_ingest_rps` (readings ingested per
//!   wall-clock second at the main fleet size, committed conservatively)
//!   must not regress;
//! * **tail latency and footprint** — `cost_ack_p99_s` (simulated-time
//!   ack p99, deterministic) and `cost_bytes_per_agent` must not grow.
//!
//! Flags (the shared bench conventions):
//!
//! * `--fast` — reduced fleet (the CI smoke configuration).
//! * `--json` — print the metrics JSON to stdout instead of a summary.
//! * `--out PATH` — also write the metrics JSON to `PATH`.
//! * `--compare PATH` — compare `speedup_*`/`rate_*`/`cost_*` metrics
//!   against a committed baseline; exits non-zero on any >15% regression.
//! * `--check` — enforce the invariant gates listed above.

use std::collections::BTreeMap;

use darnet_bench::metrics;
use darnet_collect::{
    run_fleet, run_fleet_timed, ControllerConfig, FleetAdmission, FleetConfig, ShardConfig,
};

const TOLERANCE: f64 = 0.15;
/// The fleet size whose numbers are regression-gated.
const MAIN_AGENTS: usize = 10_000;
/// Smoke fleet for `--fast` (gates still run; the committed baseline is
/// produced with the same flag CI uses).
const FAST_AGENTS: usize = 10_000;
/// Wall-clock throughput baselines are recorded at this fraction of the
/// measured rate so cross-machine noise does not trip the gate; the
/// compare tolerance then catches genuine collapses.
const CONSERVATIVE: f64 = 0.7;

fn fleet_config(agents: usize, session_seconds: f64) -> FleetConfig {
    FleetConfig {
        agents,
        session_seconds,
        ..FleetConfig::default()
    }
}

fn shard_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        // Fleet-scale queue: absorb a whole drain tick of a big fleet.
        queue_limit: 65_536,
        controller: ControllerConfig {
            // Per-agent series keep TSDB inserts append-only at fleet
            // scale (a shared series would be quadratic in fleet size).
            per_agent_series: true,
            ..ControllerConfig::default()
        },
        ..ShardConfig::default()
    }
}

fn signal_code(signal: FleetAdmission) -> f64 {
    match signal {
        FleetAdmission::Accept => 0.0,
        FleetAdmission::Throttle => 1.0,
        FleetAdmission::Shed => 2.0,
    }
}

fn run(fast: bool) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let agents = if fast { FAST_AGENTS } else { MAIN_AGENTS };
    let session = if fast { 6.0 } else { 10.0 };
    let shard_counts: &[usize] = if fast { &[1, 8] } else { &[1, 4, 8, 16] };
    let main_shards = *shard_counts.last().expect("shard counts non-empty");

    // Scale sweep: the same seeded fleet at every shard count, timed.
    // The last (highest) shard count is the gated configuration.
    let mut main_report = None;
    for &shards in shard_counts {
        let config = fleet_config(agents, session);
        let (_, report, elapsed) = run_fleet_timed(
            &FleetConfig {
                parallel_drain: shards > 1,
                ..config
            },
            shard_config(shards),
        )
        .expect("fleet run");
        let prefix = format!("fleet{agents}_shards{shards}");
        out.insert(
            format!("{prefix}_ingest_rps"),
            report.readings_ingested as f64 / elapsed.max(1e-9),
        );
        out.insert(format!("{prefix}_elapsed_s"), elapsed);
        out.insert(
            format!("{prefix}_readings_ingested"),
            report.readings_ingested as f64,
        );
        out.insert(format!("{prefix}_deliveries"), report.deliveries as f64);
        out.insert(format!("{prefix}_queue_shed"), report.queue_shed as f64);
        out.insert(format!("{prefix}_wire_mb"), report.wire_bytes as f64 / 1e6);
        out.insert(
            format!("{prefix}_peak_signal"),
            signal_code(report.peak_signal),
        );
        if shards == main_shards {
            main_report = Some(report);
        }
    }
    let main = main_report.expect("main shard count measured");

    out.insert("fleet_agents".to_string(), agents as f64);
    out.insert("fleet_shards".to_string(), main_shards as f64);

    // Gated metrics. The throughput baseline is recorded conservatively
    // (× CONSERVATIVE) so only genuine collapses trip the 15% gate; the
    // simulated-time latency and byte metrics are deterministic and gate
    // tightly.
    let rps = out[&format!("fleet{agents}_shards{main_shards}_ingest_rps")];
    out.insert("rate_ingest_rps".to_string(), rps * CONSERVATIVE);
    out.insert("cost_ack_p99_s".to_string(), main.ack_latency_p99);
    out.insert(
        "cost_bytes_per_agent".to_string(),
        main.bytes_per_agent as f64,
    );
    out.insert("fleet_ack_p50_s".to_string(), main.ack_latency_p50);
    out.insert("fleet_ack_max_s".to_string(), main.ack_latency_max);
    out.insert("fleet_acked".to_string(), main.acked as f64);
    out.insert("fleet_retransmits".to_string(), main.retransmits as f64);
    out.insert("fleet_abandoned".to_string(), main.abandoned as f64);
    out.insert(
        "fleet_deferred_flushes".to_string(),
        main.deferred_flushes as f64,
    );

    // Determinism twin: the same seed must reproduce the report bit for
    // bit (counters, simulated latencies, digests — everything).
    let twin_config = FleetConfig {
        parallel_drain: main_shards > 1,
        ..fleet_config(agents, session)
    };
    let (_, twin) = run_fleet(&twin_config, shard_config(main_shards)).expect("determinism twin");
    out.insert(
        "rate_fleet_deterministic".to_string(),
        f64::from(u8::from(twin == main)),
    );

    // Shard transparency: with feedback off (offered traffic independent
    // of controller state), the merged canonical TSDB digest of an
    // 8-shard fleet equals a single controller's on identical traffic.
    // Smaller fleet: this is an invariant check, not a measurement.
    let eq_config = FleetConfig {
        honor_backpressure: false,
        ..fleet_config(if fast { 500 } else { 2000 }, 6.0)
    };
    let (single, single_report) = run_fleet(&eq_config, shard_config(1)).expect("single-shard run");
    let (sharded, sharded_report) = run_fleet(&eq_config, shard_config(8)).expect("sharded run");
    let single_controller = single.shard_controller(0).expect("shard 0 exists");
    let digests_match = sharded.tsdb_digest() == single_controller.tsdb().canonical_fingerprint()
        && sharded_report.tsdb_digest == single_report.tsdb_digest
        && sharded_report.readings_ingested == single_report.readings_ingested;
    out.insert(
        "rate_fleet_digest_match".to_string(),
        f64::from(u8::from(digests_match)),
    );

    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let results = run(fast);
    let text = metrics::to_json(&results);

    if json {
        print!("{text}");
    } else {
        darnet_bench::header("fleet-scale sharded ingest harness");
        for (key, value) in &results {
            if key.ends_with("_rps") {
                println!("{key:38} {value:.0} readings/s");
            } else if key.ends_with("_s") {
                println!("{key:38} {value:.4} s");
            } else if key.ends_with("_mb") {
                println!("{key:38} {value:.2} MB");
            } else {
                println!("{key:38} {value:.3}");
            }
        }
    }

    if let Some(path) = arg_value(&args, "--out") {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if let Some(path) = arg_value(&args, "--compare") {
        let baseline_text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let baseline =
            metrics::parse_json(&baseline_text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let regressions = metrics::compare(&baseline, &results, TOLERANCE);
        if regressions.is_empty() {
            eprintln!("no regressions against {path}");
        } else {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            failed = true;
        }
    }

    if check {
        let floors: &[(&str, f64, &str)] = &[
            (
                "fleet_agents",
                10_000.0,
                "the harness must exercise a ≥10k-agent fleet",
            ),
            (
                "rate_fleet_deterministic",
                1.0,
                "same seed must reproduce the fleet report bitwise",
            ),
            (
                "rate_fleet_digest_match",
                1.0,
                "sharded TSDB must merge to the single-controller digest",
            ),
            ("fleet_acked", 1.0, "acks must flow back to agents"),
        ];
        for &(key, floor, why) in floors {
            if results[key] < floor {
                eprintln!("GATE FAILED: {key} = {} < {floor} — {why}", results[key]);
                failed = true;
            }
        }
        if results["fleet_abandoned"] > 0.0 {
            eprintln!(
                "GATE FAILED: fleet_abandoned = {} ≠ 0 — the retry budget must cover \
                 baseline loss at fleet scale",
                results["fleet_abandoned"]
            );
            failed = true;
        }
        if !failed {
            eprintln!("all gates passed");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
