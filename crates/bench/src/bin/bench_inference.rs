//! Zero-alloc inference-path benchmark with regression tracking.
//!
//! Measures the workspace-backed `*_into` classification paths against
//! the allocating paths on the same engine and inputs, and — via the
//! crate's counting global allocator ([`darnet_bench::alloc_counter`]) —
//! the number of heap allocation events a steady-state classification
//! performs. Three shapes are measured, matching how the engine is
//! actually driven: one step at a time (streaming), a micro-batch of 8
//! (a typical deadline flush at 4 Hz), and the `MicroBatcher` tuple
//! drain. Emits a flat-JSON metrics file (see [`darnet_bench::metrics`]).
//!
//! Flags:
//!
//! * `--fast` — reduced reps (the CI smoke configuration).
//! * `--json` — print the metrics JSON to stdout instead of a summary.
//! * `--out PATH` — also write the metrics JSON to `PATH`.
//! * `--compare PATH` — compare `speedup_*` metrics against a committed
//!   baseline; exits non-zero on any >15% regression.
//! * `--check` — enforce the acceptance gates: the warm workspace paths
//!   perform exactly **0** heap allocations per call, and single-step
//!   steady-state throughput is ≥1.15× the allocating path.

use std::collections::BTreeMap;
use std::time::Instant;

use darnet_bench::{alloc_counter, metrics};
use darnet_collect::runtime::AlignedTuple;
use darnet_collect::StreamId;
use darnet_core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet_core::{
    AnalyticsEngine, BayesianCombiner, ClassMap, CnnConfig, CombinerKind, EngineConfig, FrameCnn,
    ImuModelSlot, ImuRnn, ModalityDescriptor, MultiModalEngine, MultiStepClassification, RnnConfig,
    StepClassification, StreamInput, StreamModelSlot,
};
use darnet_sim::Frame;
use darnet_tensor::{SplitMix64, Tensor};

const TOLERANCE: f64 = 0.15;
const FRAME_SIZE: usize = 12;
/// Micro-batch size for the batched measurements: what a deadline flush
/// typically holds at the paper's 4 Hz per-driver rate. (At much larger
/// batches per-item model compute dominates and the allocation savings
/// shrink toward the noise floor.)
const BATCH: usize = 8;
const STEP_SPEEDUP_FLOOR: f64 = 1.15;

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tensor::zeros(dims);
    // Non-zero everywhere: the matmul kernel skips zero elements, so a
    // zero-filled benchmark input would measure the wrong code path.
    for v in t.data_mut() {
        *v = rng.uniform(0.1, 1.0);
    }
    t
}

/// Best (minimum) seconds per call for two alternatives measured
/// back-to-back in the same loop, after one warmup call each. The single
/// closure runs alternative A when called with `false` and B with `true`
/// (one closure, so both sides may borrow the same engine). Interleaving
/// keeps scheduler drift from loading one side of the comparison, and
/// min-of-N is robust to noise spikes on small shared hosts.
fn paired_time_per_call<F: FnMut(bool)>(reps: usize, mut f: F) -> (f64, f64) {
    f(false);
    f(true);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        f(false);
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        f(true);
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

/// The same deliberately small engine as `bench_parallel`: per-item
/// compute low enough that per-call allocation and dispatch overhead is a
/// visible fraction of runtime, which is exactly what the workspace path
/// removes. The engine keeps its default serial parallelism — threaded
/// dispatch allocates by design, so the zero-alloc contract is serial.
fn tiny_engine() -> AnalyticsEngine {
    let cnn = FrameCnn::new(
        CnnConfig {
            input_size: FRAME_SIZE,
            classes: 6,
            width: 0.25,
            ..CnnConfig::default()
        },
        1,
    );
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 8,
            depth: 1,
            ..RnnConfig::default()
        },
        2,
    );
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).expect("rnn smoke fit");
    let mut combiner = BayesianCombiner::darnet();
    combiner
        .fit(
            &Tensor::full(&[6, 6], 1.0 / 6.0),
            &Tensor::full(&[6, 3], 1.0 / 3.0),
            &[0, 1, 2, 3, 4, 5],
        )
        .expect("combiner smoke fit");
    AnalyticsEngine::new(
        cnn,
        ImuModelSlot::Rnn(rnn),
        combiner,
        EngineConfig {
            combiner: CombinerKind::Bayesian,
        },
    )
}

/// A 3-stream registry engine with the same tiny models: IMU RNN behind
/// the 6→3 projection plus front and side camera views, fused through a
/// 3-parent Bayesian combiner. Serial, like `tiny_engine` — the
/// zero-alloc contract generalizes to N streams only on the serial path.
fn tiny_registry_engine() -> MultiModalEngine {
    let tiny_cnn = |seed: u64| {
        FrameCnn::new(
            CnnConfig {
                input_size: FRAME_SIZE,
                classes: 6,
                width: 0.25,
                ..CnnConfig::default()
            },
            seed,
        )
    };
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 8,
            depth: 1,
            ..RnnConfig::default()
        },
        2,
    );
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).expect("rnn smoke fit");
    let mut engine = MultiModalEngine::new(6, CombinerKind::Bayesian);
    engine
        .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Rnn(rnn))
        .expect("register imu");
    engine
        .register(
            ModalityDescriptor::darnet_camera(),
            StreamModelSlot::Cnn(tiny_cnn(3)),
        )
        .expect("register front");
    engine
        .register(
            ModalityDescriptor::new(StreamId::CAMERA_SIDE, ClassMap::Identity),
            StreamModelSlot::Cnn(tiny_cnn(4)),
        )
        .expect("register side");
    engine
        .fit_combiner(
            &[
                &Tensor::full(&[6, 3], 1.0 / 3.0),
                &Tensor::full(&[6, 6], 1.0 / 6.0),
                &Tensor::full(&[6, 6], 1.0 / 6.0),
            ],
            &[0, 1, 2, 3, 4, 5],
        )
        .expect("combiner smoke fit");
    engine
}

/// Worst (maximum) allocation count over `probes` calls of `f`, after
/// `warmups` unmeasured calls. Max-of-N because a single allocating call
/// anywhere in steady state is a contract violation, not noise.
fn steady_allocs<F: FnMut()>(warmups: usize, probes: usize, mut f: F) -> u64 {
    for _ in 0..warmups {
        f();
    }
    let mut worst = 0u64;
    for _ in 0..probes {
        let ((), allocs) = alloc_counter::allocations_during(&mut f);
        worst = worst.max(allocs);
    }
    worst
}

fn run(fast: bool) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.insert("threads_available".to_string(), available as f64);

    let mut engine = tiny_engine();
    let frames: Vec<Frame> = (0..BATCH)
        .map(|_| Frame::new(FRAME_SIZE, FRAME_SIZE))
        .collect();
    let windows = random_tensor(&[BATCH, WINDOW_LEN, IMU_FEATURES], 14);
    let row = WINDOW_LEN * IMU_FEATURES;
    let single_window = Tensor::from_vec(
        windows.data()[..row].to_vec(),
        &[1, WINDOW_LEN, IMU_FEATURES],
    )
    .expect("window slice");
    let tuples: Vec<AlignedTuple> = (0..BATCH)
        .map(|i| AlignedTuple {
            t: i as f64 * 0.25,
            frame: frames[i].clone(),
            window: windows.data()[i * row..(i + 1) * row].to_vec(),
        })
        .collect();
    let mut results: Vec<StepClassification> = Vec::new();
    let mut step_result: Vec<StepClassification> = Vec::new();

    // Steady-state allocation counts for every workspace path.
    let probes = if fast { 3 } else { 5 };
    let allocs_batch = steady_allocs(3, probes, || {
        engine
            .classify_batch_into(&frames, &windows, &mut results)
            .expect("classify_batch_into");
    });
    out.insert("allocs_per_batch_steady".to_string(), allocs_batch as f64);
    let allocs_step = steady_allocs(3, probes, || {
        engine
            .classify_step_into(&frames[0], &single_window, &mut step_result)
            .expect("classify_step_into");
    });
    out.insert("allocs_per_step_steady".to_string(), allocs_step as f64);
    let allocs_tuples = steady_allocs(3, probes, || {
        engine
            .classify_tuples_into(&tuples, &mut results)
            .expect("classify_tuples_into");
    });
    out.insert("allocs_per_flush_steady".to_string(), allocs_tuples as f64);

    // The allocating baseline, for scale (informative, not gated).
    let ((), base_allocs) = alloc_counter::allocations_during(|| {
        engine
            .classify_batch(&frames, &windows)
            .expect("classify_batch");
    });
    out.insert(
        "allocs_per_batch_alloc_path".to_string(),
        base_allocs as f64,
    );

    // Steady-state timing: allocating path vs workspace path on the same
    // engine and inputs (everything warmed by the probes above). Only the
    // single-step comparison is a compared/gated `speedup_*` metric: it
    // has the largest allocation-to-compute ratio and therefore the most
    // stable margin; the batched ratios swing with scheduler noise on
    // small hosts and are recorded under `ratio_*` for humans.
    let reps = if fast { 15 } else { 50 };
    let (t_step_alloc, t_step_ws) = paired_time_per_call(reps, |workspace_path| {
        if workspace_path {
            engine
                .classify_step_into(&frames[0], &single_window, &mut step_result)
                .expect("classify_step_into");
        } else {
            engine
                .classify_step(&frames[0], &single_window)
                .expect("classify_step");
        }
    });
    out.insert("throughput_step_alloc".to_string(), 1.0 / t_step_alloc);
    out.insert("throughput_step_workspace".to_string(), 1.0 / t_step_ws);
    out.insert(
        "speedup_workspace_step".to_string(),
        t_step_alloc / t_step_ws,
    );

    let (t_batch_alloc, t_batch_ws) = paired_time_per_call(reps, |workspace_path| {
        if workspace_path {
            engine
                .classify_batch_into(&frames, &windows, &mut results)
                .expect("classify_batch_into");
        } else {
            engine
                .classify_batch(&frames, &windows)
                .expect("classify_batch");
        }
    });
    let items = BATCH as f64;
    out.insert("throughput_batch8_alloc".to_string(), items / t_batch_alloc);
    out.insert(
        "throughput_batch8_workspace".to_string(),
        items / t_batch_ws,
    );
    out.insert(
        "ratio_workspace_batch8".to_string(),
        t_batch_alloc / t_batch_ws,
    );

    let (t_tuples_alloc, t_tuples_ws) = paired_time_per_call(reps, |workspace_path| {
        if workspace_path {
            engine
                .classify_tuples_into(&tuples, &mut results)
                .expect("classify_tuples_into");
        } else {
            engine.classify_tuples(&tuples).expect("classify_tuples");
        }
    });
    out.insert(
        "throughput_tuples8_alloc".to_string(),
        items / t_tuples_alloc,
    );
    out.insert(
        "throughput_tuples8_workspace".to_string(),
        items / t_tuples_ws,
    );
    out.insert(
        "ratio_workspace_tuples8".to_string(),
        t_tuples_alloc / t_tuples_ws,
    );

    // The N-stream registry engine is held to the same zero-alloc bar on
    // its warm serial paths, at both measured shapes.
    let mut registry = tiny_registry_engine();
    let side_frames: Vec<Frame> = (0..BATCH)
        .map(|_| Frame::new(FRAME_SIZE, FRAME_SIZE))
        .collect();
    let batch_inputs = [
        (StreamId::IMU, StreamInput::Windows(&windows)),
        (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
        (StreamId::CAMERA_SIDE, StreamInput::Frames(&side_frames)),
    ];
    let step_inputs = [
        (StreamId::IMU, StreamInput::Windows(&single_window)),
        (
            StreamId::CAMERA_FRONT,
            StreamInput::Frames(std::slice::from_ref(&frames[0])),
        ),
        (
            StreamId::CAMERA_SIDE,
            StreamInput::Frames(std::slice::from_ref(&side_frames[0])),
        ),
    ];
    let mut multi_results: Vec<MultiStepClassification> = Vec::new();
    let mut multi_step: Vec<MultiStepClassification> = Vec::new();
    let allocs_multi_batch = steady_allocs(3, probes, || {
        registry
            .classify_batch_into(&batch_inputs, &mut multi_results)
            .expect("registry classify_batch_into");
    });
    out.insert(
        "allocs_per_multistream_batch_steady".to_string(),
        allocs_multi_batch as f64,
    );
    let allocs_multi_step = steady_allocs(3, probes, || {
        registry
            .classify_step_into(&step_inputs, &mut multi_step)
            .expect("registry classify_step_into");
    });
    out.insert(
        "allocs_per_multistream_step_steady".to_string(),
        allocs_multi_step as f64,
    );

    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let results = run(fast);
    let text = metrics::to_json(&results);

    if json {
        print!("{text}");
    } else {
        darnet_bench::header("workspace-backed zero-alloc inference");
        for (key, value) in &results {
            if key.starts_with("speedup_") {
                println!("{key:30} {value:.3}×");
            } else if key.starts_with("allocs_") {
                println!("{key:30} {value:.3}");
            } else {
                println!("{key:30} {value:.3e}");
            }
        }
    }

    if let Some(path) = arg_value(&args, "--out") {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if let Some(path) = arg_value(&args, "--compare") {
        let baseline_text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let baseline =
            metrics::parse_json(&baseline_text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let regressions = metrics::compare(&baseline, &results, TOLERANCE);
        if regressions.is_empty() {
            eprintln!("no regressions against {path}");
        } else {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            failed = true;
        }
    }

    if check {
        for key in [
            "allocs_per_batch_steady",
            "allocs_per_step_steady",
            "allocs_per_flush_steady",
            "allocs_per_multistream_batch_steady",
            "allocs_per_multistream_step_steady",
        ] {
            if results[key] != 0.0 {
                eprintln!(
                    "GATE FAILED: {key} = {} ≠ 0 — the warm workspace path must not \
                     touch the heap",
                    results[key]
                );
                failed = true;
            }
        }
        if results["speedup_workspace_step"] < STEP_SPEEDUP_FLOOR {
            eprintln!(
                "GATE FAILED: speedup_workspace_step = {:.3} < {STEP_SPEEDUP_FLOOR}",
                results["speedup_workspace_step"]
            );
            failed = true;
        }
        if !failed {
            eprintln!("all gates passed");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
