//! Regenerates **Table 1**: driver behaviour classes with per-class frame
//! counts, collected through the full agent → controller middleware.

use darnet_bench::{experiment_config, header};
use darnet_core::experiment::run_table1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = experiment_config();
    header("Table 1: Driver behaviour classes (collected dataset)");
    println!(
        "scale = {} of the paper's frame counts ({} drivers, 4 fps camera)\n",
        config.scale, config.drivers
    );
    let report = run_table1(&config)?;
    println!(
        "{:<5} {:<18} {:<12} {:>12} {:>12} {:>12}",
        "Class", "Description", "Data Types", "Paper", "Target", "Collected"
    );
    for row in &report.rows {
        println!(
            "{:<5} {:<18} {:<12} {:>12} {:>12} {:>12}",
            row.class,
            row.description,
            row.data_types,
            row.paper_frames,
            row.target_frames,
            row.collected_frames
        );
    }
    println!("\ntotal collected frames: {}", report.total_collected);
    Ok(())
}
