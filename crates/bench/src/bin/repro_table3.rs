//! Regenerates **Table 3**: CNN vs. dCNN Top-1 on the 18-class extended
//! dataset. Shape criteria: dCNN-L ≥ CNN; dCNN-M within a few points;
//! dCNN-H clearly degraded.

use darnet_bench::{header, pct, privacy_config};
use darnet_core::experiment::run_table3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = privacy_config();
    header("Table 3: CNN and dCNN Top-1 (18-class dataset)");
    println!(
        "{} drivers, {} s/class, teacher width {}\n",
        config.drivers, config.seconds_per_class, config.cnn_width
    );
    let report = run_table3(&config)?;
    println!("{:<10} {:>10} {:>12}", "Model", "Hit@1", "(paper)");
    println!(
        "{:<10} {:>10} {:>12}",
        "CNN",
        pct(report.cnn_top1),
        "78.87%"
    );
    let paper = ["80.00%", "77.78%", "63.13%"];
    for ((level, acc), p) in report.dcnn_top1.iter().zip(paper) {
        println!("{:<10} {:>10} {:>12}", level.model_name(), pct(*acc), p);
    }
    Ok(())
}
