//! Ablation: Bayesian-network combiner vs. independence product vs. CNN
//! only (DESIGN.md §6.1).

use darnet_bench::{experiment_config, header, pct};
use darnet_core::experiment::{run_ablation_combiner, train_stack};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = experiment_config();
    let stack = train_stack(&config)?;
    let ab = run_ablation_combiner(&stack)?;
    header("Ablation: modality fusion strategy (eval Top-1)");
    println!("{:<22} {:>10}", "Bayesian network", pct(ab.bayesian));
    println!("{:<22} {:>10}", "Probability product", pct(ab.product));
    println!("{:<22} {:>10}", "CNN only", pct(ab.cnn_only));
    Ok(())
}
