//! Ablation: the controller's sliding moving-average smoothing on vs. off
//! (DESIGN.md §6.2) and its effect on IMU classification.

use darnet_bench::{experiment_config, header, pct};
use darnet_core::experiment::run_ablation_alignment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = experiment_config();
    let ab = run_ablation_alignment(&config)?;
    header("Ablation: controller smoothing (RNN 3-class eval Top-1)");
    println!("{:<28} {:>10}", "smoothing window = 3", pct(ab.smoothed));
    println!("{:<28} {:>10}", "smoothing disabled", pct(ab.unsmoothed));
    Ok(())
}
