//! Ablation: the paper's unsupervised dCNN distillation vs. (a) applying
//! the teacher directly to distorted frames and (b) supervised training on
//! distorted frames (DESIGN.md §6.5). Runs at dCNN-L.

use darnet_bench::{header, pct, privacy_config};
use darnet_core::experiment::run_ablation_distill;
use darnet_core::privacy::PrivacyLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = privacy_config();
    let ab = run_ablation_distill(&config, PrivacyLevel::Low)?;
    header("Ablation: dCNN training strategy at dCNN-L (eval Top-1)");
    println!(
        "{:<40} {:>10}",
        "teacher, full resolution",
        pct(ab.teacher_full)
    );
    println!(
        "{:<40} {:>10}",
        "teacher applied to distorted frames",
        pct(ab.teacher_distorted)
    );
    println!(
        "{:<40} {:>10}",
        "supervised on distorted frames",
        pct(ab.supervised)
    );
    println!(
        "{:<40} {:>10}",
        "distilled (paper §4.3, label-free)",
        pct(ab.distilled)
    );
    Ok(())
}
