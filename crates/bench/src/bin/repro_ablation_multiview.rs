//! Ablation: the N-stream modality registry under per-stream loss
//! (DESIGN.md §17).
//!
//! A clean canonical campaign (8 classes, IMU + front + side camera)
//! trains per-stream models and fits 2- and 3-parent Bayesian combiners;
//! a second campaign injects loss and a blackout on the front-camera
//! link only, and that campaign's *recorded* health verdicts gate fusion
//! on the clean evaluation split. The paper's two-stream pairing is the
//! N=2 special case; the registry's value shows when a stream dies.
//!
//! Flags:
//!
//! * `--fast` — reduced-scale preset (the CI smoke configuration).
//! * `--json` — print the metrics JSON to stdout instead of a summary.
//! * `--out PATH` — also write the metrics JSON to `PATH`.
//! * `--compare PATH` — compare `rate_*` metrics against a committed
//!   baseline; exits non-zero on any >15% regression.
//! * `--check` — enforce the acceptance gates: the fault campaign must
//!   actually knock the front camera out, and the 3-stream engine under
//!   that loss must stay at or above the 2-stream engine under the same
//!   loss (graceful degradation) and within reach of the 2-stream
//!   engine's clean accuracy.

use std::collections::BTreeMap;

use darnet_bench::{header, metrics, multiview_config, pct};
use darnet_core::experiment::run_ablation_multiview;

const TOLERANCE: f64 = 0.15;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let config = multiview_config();
    let ab = run_ablation_multiview(&config)?;

    let mut results = BTreeMap::new();
    results.insert("eval_samples".to_string(), ab.eval_samples as f64);
    results.insert("rate_front_only".to_string(), ab.front_only);
    results.insert("rate_two_stream_clean".to_string(), ab.two_stream);
    results.insert("rate_three_stream_clean".to_string(), ab.three_stream);
    results.insert(
        "rate_two_stream_front_lost".to_string(),
        ab.two_stream_front_lost,
    );
    results.insert(
        "rate_three_stream_front_lost".to_string(),
        ab.three_stream_front_lost,
    );
    results.insert(
        "rate_front_unusable_under_fault".to_string(),
        f64::from(ab.front_unusable_under_fault),
    );
    let text = metrics::to_json(&results);

    if json {
        print!("{text}");
    } else {
        header("Ablation: N-stream registry vs front-camera loss (8-class Top-1)");
        println!("{:<34} {:>10}", "front camera only", pct(ab.front_only));
        println!("{:<34} {:>10}", "IMU + front (N=2)", pct(ab.two_stream));
        println!(
            "{:<34} {:>10}",
            "IMU + front + side (N=3)",
            pct(ab.three_stream)
        );
        println!(
            "{:<34} {:>10}",
            "N=2, front lost",
            pct(ab.two_stream_front_lost)
        );
        println!(
            "{:<34} {:>10}",
            "N=3, front lost",
            pct(ab.three_stream_front_lost)
        );
        println!(
            "\nfault campaign marked the front camera unusable: {}",
            ab.front_unusable_under_fault
        );
    }

    if let Some(path) = arg_value(&args, "--out") {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if let Some(path) = arg_value(&args, "--compare") {
        let baseline_text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let baseline =
            metrics::parse_json(&baseline_text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let regressions = metrics::compare(&baseline, &results, TOLERANCE);
        if regressions.is_empty() {
            eprintln!("no regressions against {path}");
        } else {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            failed = true;
        }
    }

    if check {
        if !ab.front_unusable_under_fault {
            eprintln!(
                "GATE FAILED: the fault campaign did not drive the front camera to \
                 Unavailable — the loss scenario is not exercising the subset policy"
            );
            failed = true;
        }
        if ab.three_stream_front_lost < ab.two_stream_front_lost {
            eprintln!(
                "GATE FAILED: 3-stream accuracy under front loss ({}) fell below the \
                 2-stream engine under the same loss ({})",
                pct(ab.three_stream_front_lost),
                pct(ab.two_stream_front_lost)
            );
            failed = true;
        }
        // The headline claim: losing the front camera costs the 3-stream
        // registry at most the comparison tolerance relative to the
        // 2-stream engine's *clean* accuracy — the side view absorbs the
        // loss instead of collapsing to the IMU projection.
        if ab.three_stream_front_lost < ab.two_stream * (1.0 - TOLERANCE) {
            eprintln!(
                "GATE FAILED: 3-stream accuracy under front loss ({}) is more than \
                 {:.0}% below the clean 2-stream baseline ({})",
                pct(ab.three_stream_front_lost),
                TOLERANCE * 100.0,
                pct(ab.two_stream)
            );
            failed = true;
        }
        if !failed {
            eprintln!("all gates passed");
        }
    }

    if failed {
        std::process::exit(1);
    }
    Ok(())
}
