//! Ablation: proxy pre-training + fine-tuning vs. from-scratch training
//! at the same fine-tuning budget (DESIGN.md §6.4 — the paper's transfer
//! learning rationale).

use darnet_bench::{experiment_config, header, pct};
use darnet_core::experiment::run_ablation_pretrain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = experiment_config();
    let ab = run_ablation_pretrain(&config)?;
    header("Ablation: CNN transfer learning (eval Top-1 at equal fine-tune budget)");
    println!(
        "{:<28} {:>10}",
        "pre-trained + fine-tuned",
        pct(ab.pretrained)
    );
    println!("{:<28} {:>10}", "from scratch", pct(ab.from_scratch));
    Ok(())
}
