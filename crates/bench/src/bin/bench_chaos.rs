//! Deterministic chaos benchmark: crash-tolerant collection under fire.
//!
//! Drives one seeded collection session through two controller
//! kill/restart windows (with torn tail writes at each kill), 5% link
//! loss, and — in a separate measurement — a starved admission bucket,
//! then gates the recovery invariants of DESIGN.md §13:
//!
//! * **zero acked loss** — every batch whose ack an agent received is in
//!   the recovered controller (`chaos_acked_lost == 0`), while the
//!   negative control without a WAL demonstrably loses acked data;
//! * **bounded replay** — recovering state from the WAL stays under an
//!   absolute time budget and beats re-running the session from scratch
//!   (`speedup_recovery_vs_rerun`, the regression-compared metric);
//! * **determinism** — two runs against fresh stores produce identical
//!   recordings, chaos reports, and recovered state digests;
//! * **graceful shedding** — overload sheds low-priority frame batches
//!   first and the IMU stream stays comparatively whole.
//!
//! Flags (the shared bench conventions):
//!
//! * `--fast` — reduced reps (the CI smoke configuration).
//! * `--json` — print the metrics JSON to stdout instead of a summary.
//! * `--out PATH` — also write the metrics JSON to `PATH`.
//! * `--compare PATH` — compare `speedup_*` metrics against a committed
//!   baseline; exits non-zero on any >15% regression.
//! * `--check` — enforce the invariant gates listed above.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use darnet_bench::metrics;
use darnet_collect::runtime::{
    run_session, run_session_durable, CampaignConfig, CrashWindow, Durability,
};
use darnet_collect::{replay_into, AdmissionConfig, Controller, MemStorage, WalConfig, WalStorage};
use darnet_sim::{Behavior, DrivingWorld, Segment, WorldConfig};

const TOLERANCE: f64 = 0.15;
/// Garbage bytes appended at each kill (the torn final write).
const TORN_BYTES: u64 = 13;
/// Absolute budget for replaying the full session log, milliseconds.
/// Replay of a 10 s session is sub-millisecond on any host; the budget
/// only has to catch a catastrophic regression (e.g. quadratic replay).
const REPLAY_BUDGET_MS: f64 = 50.0;
/// Replaying the log must beat re-collecting the session outright by at
/// least this factor, or durability is not paying for its complexity.
const SPEEDUP_FLOOR: f64 = 2.0;

fn schedule() -> Vec<Segment<Behavior>> {
    vec![
        Segment {
            driver: 0,
            behavior: Behavior::NormalDriving,
            start: 0.0,
            duration: 5.0,
        },
        Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 5.0,
            duration: 5.0,
        },
    ]
}

/// The chaos session: 5% loss on every link on top of the crash windows.
fn chaos_config() -> CampaignConfig {
    let mut config = CampaignConfig::default();
    config.link.loss = 0.05;
    config
}

/// Two controller outages — a 1 s blackout mid-collection and a shorter
/// one near the end — each preceded by a torn tail write.
fn chaos_durability(storage: Option<Arc<MemStorage>>) -> Durability {
    Durability {
        storage: storage.map(|s| s as Arc<dyn WalStorage>),
        wal: WalConfig {
            segment_max_records: 8,
            snapshot_every: 20,
        },
        crashes: vec![
            CrashWindow {
                kill_t: 3.0,
                restart_t: 4.0,
            },
            CrashWindow {
                kill_t: 7.0,
                restart_t: 7.75,
            },
        ],
        torn_tail_bytes: TORN_BYTES as usize,
    }
}

/// Best (minimum) seconds per call over `reps` measured calls.
fn min_time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn run(fast: bool) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
    let schedule = schedule();
    let config = chaos_config();

    // The chaos session proper, twice against fresh stores: the second
    // run exists purely to prove bitwise determinism.
    let storage_a = Arc::new(MemStorage::new());
    let (rec_a, chaos) = run_session_durable(
        &world,
        0,
        &schedule,
        &config,
        &chaos_durability(Some(Arc::clone(&storage_a))),
    )
    .expect("chaos session");
    let storage_b = Arc::new(MemStorage::new());
    let (rec_b, chaos_b) = run_session_durable(
        &world,
        0,
        &schedule,
        &config,
        &chaos_durability(Some(Arc::clone(&storage_b))),
    )
    .expect("chaos session (determinism twin)");

    out.insert("chaos_acked".to_string(), chaos.acked as f64);
    out.insert("chaos_acked_lost".to_string(), chaos.acked_lost as f64);
    out.insert("chaos_recoveries".to_string(), chaos.recoveries as f64);
    out.insert(
        "chaos_replayed_records".to_string(),
        chaos.replayed_records as f64,
    );
    out.insert(
        "chaos_torn_bytes".to_string(),
        chaos.torn_tail_bytes_discarded as f64,
    );
    out.insert(
        "chaos_deliveries_while_down".to_string(),
        chaos.deliveries_while_down as f64,
    );
    out.insert("chaos_wal_appends".to_string(), chaos.wal_appends as f64);
    out.insert("chaos_wal_bytes".to_string(), chaos.wal_bytes as f64);
    out.insert(
        "chaos_wal_snapshots".to_string(),
        chaos.wal_snapshots as f64,
    );
    out.insert(
        "chaos_lossless".to_string(),
        f64::from(u8::from(rec_a.transport.lossless())),
    );

    // Determinism: identical recordings and chaos reports, and the two
    // logs recover to the same controller state digest.
    let digest = |storage: Arc<MemStorage>| {
        let mut controller = Controller::new(config.controller);
        replay_into(&mut controller, storage.as_ref()).expect("replay");
        controller.state_digest()
    };
    let deterministic =
        rec_a == rec_b && chaos == chaos_b && digest(Arc::clone(&storage_a)) == digest(storage_b);
    out.insert(
        "chaos_deterministic".to_string(),
        f64::from(u8::from(deterministic)),
    );

    // Negative control: the same chaos without a WAL must lose acked
    // data — it proves the harness actually kills state, so the zero-loss
    // gate above is meaningful.
    let (_, no_wal) = run_session_durable(&world, 0, &schedule, &config, &chaos_durability(None))
        .expect("no-WAL control session");
    out.insert("acked_lost_no_wal".to_string(), no_wal.acked_lost as f64);

    // Overload burst: a starved token bucket sheds low-priority frame
    // batches first while the IMU stream keeps flowing.
    let mut overload_config = CampaignConfig::default();
    overload_config.controller.admission = AdmissionConfig {
        enabled: true,
        capacity: 64.0,
        drain_per_sec: 24.0,
        low_priority_reserve: 32.0,
    };
    let (overload_rec, overload) = run_session_durable(
        &world,
        0,
        &schedule,
        &overload_config,
        &Durability::default(),
    )
    .expect("overload session");
    out.insert(
        "overload_shed_batches".to_string(),
        overload.shed_batches as f64,
    );
    let imu_shed = overload_rec
        .transport
        .imu_stream
        .map(|h| h.shed_ratio())
        .unwrap_or(1.0);
    let cam_shed = overload_rec
        .transport
        .camera_stream
        .map(|h| h.shed_ratio())
        .unwrap_or(1.0);
    out.insert("overload_imu_shed_ratio".to_string(), imu_shed);
    out.insert("overload_camera_shed_ratio".to_string(), cam_shed);
    out.insert(
        "overload_priority_ordered".to_string(),
        f64::from(u8::from(imu_shed < cam_shed)),
    );

    // Bounded replay: rebuilding controller state from the WAL vs
    // re-collecting the session from scratch (the only alternative when
    // the TSDB dies without a log). The in-session recoveries already
    // repaired the tail, so repeated replays see a clean, stable log.
    let replay_reps = if fast { 10 } else { 30 };
    let t_replay = min_time(replay_reps, || {
        let mut controller = Controller::new(config.controller);
        replay_into(&mut controller, storage_a.as_ref()).expect("timed replay");
    });
    let rerun_reps = if fast { 3 } else { 8 };
    let t_rerun = min_time(rerun_reps, || {
        run_session(&world, 0, &schedule, &config).expect("timed rerun");
    });
    out.insert("recovery_replay_ms".to_string(), t_replay * 1e3);
    out.insert("session_rerun_ms".to_string(), t_rerun * 1e3);
    out.insert("speedup_recovery_vs_rerun".to_string(), t_rerun / t_replay);

    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let results = run(fast);
    let text = metrics::to_json(&results);

    if json {
        print!("{text}");
    } else {
        darnet_bench::header("crash-tolerant collection chaos harness");
        for (key, value) in &results {
            if key.starts_with("speedup_") {
                println!("{key:30} {value:.3}×");
            } else if key.ends_with("_ms") {
                println!("{key:30} {value:.4} ms");
            } else {
                println!("{key:30} {value:.3}");
            }
        }
    }

    if let Some(path) = arg_value(&args, "--out") {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if let Some(path) = arg_value(&args, "--compare") {
        let baseline_text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let baseline =
            metrics::parse_json(&baseline_text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let regressions = metrics::compare(&baseline, &results, TOLERANCE);
        if regressions.is_empty() {
            eprintln!("no regressions against {path}");
        } else {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            failed = true;
        }
    }

    if check {
        // (key, minimum, human meaning); equality gates use min == max.
        let floors: &[(&str, f64, &str)] = &[
            ("chaos_recoveries", 2.0, "both crash windows must recover"),
            ("chaos_replayed_records", 1.0, "replay must do real work"),
            (
                "chaos_torn_bytes",
                2.0 * TORN_BYTES as f64,
                "each kill tears the tail; recovery must repair both",
            ),
            (
                "acked_lost_no_wal",
                1.0,
                "the no-WAL control must demonstrably lose acked data",
            ),
            ("overload_shed_batches", 1.0, "starved bucket must shed"),
            (
                "overload_priority_ordered",
                1.0,
                "frames shed before the IMU stream",
            ),
            (
                "chaos_deterministic",
                1.0,
                "seeded chaos must replay bitwise",
            ),
            ("chaos_lossless", 1.0, "retransmission must close the gaps"),
        ];
        for &(key, floor, why) in floors {
            if results[key] < floor {
                eprintln!("GATE FAILED: {key} = {} < {floor} — {why}", results[key]);
                failed = true;
            }
        }
        if results["chaos_acked_lost"] != 0.0 {
            eprintln!(
                "GATE FAILED: chaos_acked_lost = {} ≠ 0 — WAL recovery must preserve \
                 every acked batch",
                results["chaos_acked_lost"]
            );
            failed = true;
        }
        if results["recovery_replay_ms"] > REPLAY_BUDGET_MS {
            eprintln!(
                "GATE FAILED: recovery_replay_ms = {:.3} > {REPLAY_BUDGET_MS} — replay \
                 must stay bounded",
                results["recovery_replay_ms"]
            );
            failed = true;
        }
        if results["speedup_recovery_vs_rerun"] < SPEEDUP_FLOOR {
            eprintln!(
                "GATE FAILED: speedup_recovery_vs_rerun = {:.3} < {SPEEDUP_FLOOR}",
                results["speedup_recovery_vs_rerun"]
            );
            failed = true;
        }
        if !failed {
            eprintln!("all gates passed");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
