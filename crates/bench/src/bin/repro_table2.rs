//! Regenerates **Table 2** (ensemble Top-1 classification) plus the §5.2
//! IMU-only numbers. Shape criteria: CNN+RNN ≥ CNN+SVM ≫ CNN alone;
//! RNN > SVM on the IMU stream.

use darnet_bench::{experiment_config, header, pct};
use darnet_core::experiment::{run_table2, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config: ExperimentConfig = experiment_config();
    header("Table 2: Ensemble model Top-1 classification results");
    let report = run_table2(&config)?;
    println!("{:<10} {:>10} {:>12}", "Model", "Hit@1", "(paper)");
    println!(
        "{:<10} {:>10} {:>12}",
        "CNN+RNN",
        pct(report.top1_cnn_rnn),
        "87.02%"
    );
    println!(
        "{:<10} {:>10} {:>12}",
        "CNN+SVM",
        pct(report.top1_cnn_svm),
        "86.23%"
    );
    println!(
        "{:<10} {:>10} {:>12}",
        "CNN",
        pct(report.top1_cnn),
        "73.88%"
    );
    header("IMU stream alone (3 classes, §5.2)");
    println!(
        "{:<10} {:>10} {:>12}",
        "RNN",
        pct(report.imu_rnn_top1),
        "97.44%"
    );
    println!(
        "{:<10} {:>10} {:>12}",
        "SVM",
        pct(report.imu_svm_top1),
        "95.37%"
    );
    Ok(())
}
