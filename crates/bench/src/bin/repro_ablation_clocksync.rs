//! Ablation: the 5-second master–slave clock-sync protocol on vs. off
//! (DESIGN.md §6.3).

use darnet_bench::{experiment_config, header};
use darnet_core::experiment::run_ablation_clocksync;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = experiment_config();
    let ab = run_ablation_clocksync(&config)?;
    header("Ablation: clock synchronization (max agent timestamp error)");
    println!(
        "{:<24} {:>12.1} ms",
        "5 s sync (paper)",
        ab.max_error_synced * 1000.0
    );
    println!(
        "{:<24} {:>12.1} ms",
        "sync disabled",
        ab.max_error_unsynced * 1000.0
    );
    println!(
        "\nwithout sync, timestamps drift {:.0}x further from controller time",
        ab.max_error_unsynced / ab.max_error_synced.max(1e-9)
    );
    Ok(())
}
