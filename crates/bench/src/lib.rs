//! # darnet-bench
//!
//! Benchmark harness for the DarNet reproduction. Two kinds of targets:
//!
//! * **`repro_*` binaries** — regenerate every table and figure of the
//!   paper (`cargo run -p darnet-bench --release --bin repro_table2`).
//!   Each accepts `--fast` to run a reduced-scale smoke version.
//! * **Criterion benches** (`cargo bench`) — performance characterization
//!   of the substrates: tensor kernels, model inference, controller
//!   ingest/alignment, end-to-end per-time-step classification latency,
//!   and privacy transforms.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use darnet_core::experiment::{ExperimentConfig, PrivacyExperimentConfig};

/// Returns true if the process args request the reduced-scale preset.
pub fn fast_requested() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Picks the experiment config from the command line (`--fast` or full).
pub fn experiment_config() -> ExperimentConfig {
    if fast_requested() {
        ExperimentConfig::fast()
    } else {
        ExperimentConfig::paper()
    }
}

/// Picks the privacy experiment config from the command line.
pub fn privacy_config() -> PrivacyExperimentConfig {
    if fast_requested() {
        PrivacyExperimentConfig::fast()
    } else {
        PrivacyExperimentConfig::paper()
    }
}

/// Formats a fraction as a paper-style percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.8702), "87.02%");
        assert_eq!(pct(0.0), "0.00%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
