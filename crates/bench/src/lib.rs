//! # darnet-bench
//!
//! Benchmark harness for the DarNet reproduction. Two kinds of targets:
//!
//! * **`repro_*` binaries** — regenerate every table and figure of the
//!   paper (`cargo run -p darnet-bench --release --bin repro_table2`).
//!   Each accepts `--fast` to run a reduced-scale smoke version.
//! * **Criterion benches** (`cargo bench`) — performance characterization
//!   of the substrates: tensor kernels, model inference, controller
//!   ingest/alignment, end-to-end per-time-step classification latency,
//!   and privacy transforms.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

use darnet_core::experiment::{ExperimentConfig, MultiviewConfig, PrivacyExperimentConfig};

/// Returns true if the process args request the reduced-scale preset.
pub fn fast_requested() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Picks the experiment config from the command line (`--fast` or full).
pub fn experiment_config() -> ExperimentConfig {
    if fast_requested() {
        ExperimentConfig::fast()
    } else {
        ExperimentConfig::paper()
    }
}

/// Picks the privacy experiment config from the command line.
pub fn privacy_config() -> PrivacyExperimentConfig {
    if fast_requested() {
        PrivacyExperimentConfig::fast()
    } else {
        PrivacyExperimentConfig::paper()
    }
}

/// Picks the multiview N-stream ablation config from the command line.
pub fn multiview_config() -> MultiviewConfig {
    if fast_requested() {
        MultiviewConfig::fast()
    } else {
        MultiviewConfig::paper()
    }
}

/// Formats a fraction as a paper-style percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Flat-JSON metric files for bench-regression tracking.
///
/// The CI pipeline commits a baseline `BENCH_parallel.json` and compares
/// every run's metrics against it. Files are a single flat object of
/// numeric values — hand-rolled here so the harness works offline with no
/// serde dependence. Three key prefixes participate in regression
/// comparison: `speedup_*` and `rate_*` are higher-is-better, `cost_*`
/// is lower-is-better. Speedups are ratios of two timings taken on the
/// same machine in the same run, so they are comparable across machines;
/// `rate_`/`cost_` keys must likewise be machine-portable (simulated-time
/// latencies, deterministic byte counts, 0/1 invariant checks — or
/// wall-clock rates whose committed baselines are deliberately
/// conservative). Everything else is recorded for humans but would make
/// the gate flaky across hardware.
pub mod metrics {
    use std::collections::BTreeMap;

    /// Higher-is-better metric prefix subject to regression comparison.
    pub const COMPARED_PREFIX: &str = "speedup_";
    /// Higher-is-better prefix for throughputs and invariant indicators.
    pub const RATE_PREFIX: &str = "rate_";
    /// Lower-is-better prefix for latencies and footprints.
    pub const COST_PREFIX: &str = "cost_";

    /// Serializes metrics as a flat JSON object (sorted keys, one per
    /// line — diff-friendly for a committed baseline).
    pub fn to_json(metrics: &BTreeMap<String, f64>) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (k, v) in metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  {k:?}: {v}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a flat JSON object of numbers (the subset [`to_json`]
    /// emits, whitespace-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| "metrics file is not a JSON object".to_string())?;
        let mut out = BTreeMap::new();
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed entry {entry:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted key in {entry:?}"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad number for {key:?}: {e}"))?;
            out.insert(key.to_string(), value);
        }
        Ok(out)
    }

    /// Compares a run against a committed baseline: every `speedup_*` or
    /// `rate_*` key present in both must not fall below
    /// `baseline × (1 − tolerance)`, and every `cost_*` key must not rise
    /// above `baseline × (1 + tolerance)`. Improvements never fail.
    /// Returns the list of regression descriptions (empty = pass).
    // darlint: pure-root
    pub fn compare(
        baseline: &BTreeMap<String, f64>,
        current: &BTreeMap<String, f64>,
        tolerance: f64,
    ) -> Vec<String> {
        let mut regressions = Vec::new();
        for (key, &base) in baseline {
            let higher_better = key.starts_with(COMPARED_PREFIX) || key.starts_with(RATE_PREFIX);
            let lower_better = key.starts_with(COST_PREFIX);
            if (!higher_better && !lower_better) || base <= 0.0 {
                continue;
            }
            match current.get(key) {
                Some(&cur) if higher_better && cur < base * (1.0 - tolerance) => {
                    regressions.push(format!(
                        "{key}: {cur:.3} is below baseline {base:.3} − {:.0}% tolerance",
                        tolerance * 100.0
                    ));
                }
                Some(&cur) if lower_better && cur > base * (1.0 + tolerance) => {
                    regressions.push(format!(
                        "{key}: {cur:.3} is above baseline {base:.3} + {:.0}% tolerance",
                        tolerance * 100.0
                    ));
                }
                Some(_) => {}
                None => regressions.push(format!("{key}: missing from current run")),
            }
        }
        regressions
    }
}

/// Counting global allocator for allocation-budget benchmarks and tests.
///
/// Installed as this crate's `#[global_allocator]`, so every
/// `darnet-bench` binary, test, and Criterion bench can measure heap
/// allocation events (alloc + realloc; frees are not counted). The
/// zero-alloc inference gate (`bench_inference`, the `zero_alloc`
/// integration test) is built on this.
#[allow(unsafe_code)]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// A [`System`]-backed allocator that counts every allocation event.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Total allocation events since process start.
    pub fn allocation_count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Runs `f` and returns its result together with the number of
    /// allocation events it performed. Only meaningful when no other
    /// thread is allocating concurrently.
    pub fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let before = allocation_count();
        let out = f();
        (out, allocation_count() - before)
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.8702), "87.02%");
        assert_eq!(pct(0.0), "0.00%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn metrics_json_roundtrips() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("speedup_matmul_threads".to_string(), 2.125);
        m.insert("threads_available".to_string(), 4.0);
        m.insert("throughput_matmul_serial".to_string(), 1.5e9);
        let text = metrics::to_json(&m);
        assert_eq!(metrics::parse_json(&text).unwrap(), m);
    }

    #[test]
    fn metrics_parser_rejects_garbage() {
        assert!(metrics::parse_json("not json").is_err());
        assert!(metrics::parse_json("{\"a\": nope}").is_err());
        assert!(metrics::parse_json("{a: 1}").is_err());
        assert_eq!(metrics::parse_json("{}").unwrap().len(), 0);
    }

    #[test]
    fn compare_flags_only_speedup_regressions() {
        let mut base = std::collections::BTreeMap::new();
        base.insert("speedup_matmul_threads".to_string(), 2.0);
        base.insert("speedup_engine_batch32".to_string(), 1.8);
        base.insert("throughput_matmul_serial".to_string(), 1e9);

        // Within tolerance, absolute throughput halved: pass.
        let mut cur = base.clone();
        cur.insert("speedup_matmul_threads".to_string(), 1.75);
        cur.insert("throughput_matmul_serial".to_string(), 5e8);
        assert!(metrics::compare(&base, &cur, 0.15).is_empty());

        // Speedup collapsed: fail.
        cur.insert("speedup_matmul_threads".to_string(), 1.0);
        let regressions = metrics::compare(&base, &cur, 0.15);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("speedup_matmul_threads"));

        // Missing compared key: fail.
        cur.remove("speedup_engine_batch32");
        cur.insert("speedup_matmul_threads".to_string(), 2.0);
        let regressions = metrics::compare(&base, &cur, 0.15);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("missing"));

        // Improvements never fail.
        cur.insert("speedup_engine_batch32".to_string(), 3.0);
        assert!(metrics::compare(&base, &cur, 0.15).is_empty());
    }

    #[test]
    fn compare_gates_rates_up_and_costs_down() {
        let mut base = std::collections::BTreeMap::new();
        base.insert("rate_ingest_rps".to_string(), 100_000.0);
        base.insert("cost_ack_p99_s".to_string(), 0.20);
        base.insert("cost_bytes_per_agent".to_string(), 4096.0);
        base.insert("agents".to_string(), 10_000.0);

        // Within tolerance both ways; the unprefixed key is ignored.
        let mut cur = base.clone();
        cur.insert("rate_ingest_rps".to_string(), 90_000.0);
        cur.insert("cost_ack_p99_s".to_string(), 0.22);
        cur.insert("agents".to_string(), 1.0);
        assert!(metrics::compare(&base, &cur, 0.15).is_empty());

        // Throughput collapse fails.
        cur.insert("rate_ingest_rps".to_string(), 50_000.0);
        let regressions = metrics::compare(&base, &cur, 0.15);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("rate_ingest_rps"));

        // Cost blow-up fails (lower-is-better inverts the check).
        cur.insert("rate_ingest_rps".to_string(), 100_000.0);
        cur.insert("cost_bytes_per_agent".to_string(), 9000.0);
        let regressions = metrics::compare(&base, &cur, 0.15);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("cost_bytes_per_agent"));

        // Cost improvements never fail; missing gated cost key does.
        cur.insert("cost_bytes_per_agent".to_string(), 100.0);
        assert!(metrics::compare(&base, &cur, 0.15).is_empty());
        cur.remove("cost_ack_p99_s");
        assert_eq!(metrics::compare(&base, &cur, 0.15).len(), 1);
    }
}
