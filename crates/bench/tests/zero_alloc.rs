//! Steady-state zero-allocation gate for the workspace inference path.
//!
//! Uses the crate's counting global allocator
//! ([`darnet_bench::alloc_counter`]) to prove that, after warm-up, the
//! `*_into` classification paths of a serially-configured engine never
//! touch the heap. Kept as a single `#[test]` in its own integration
//! binary: the allocation counter is process-global, so a concurrently
//! running test would pollute the measurement.

use darnet_bench::alloc_counter;
use darnet_collect::runtime::AlignedTuple;
use darnet_collect::StreamId;
use darnet_core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet_core::{
    AnalyticsEngine, BayesianCombiner, ClassMap, CnnConfig, CombinerKind, EngineConfig, FrameCnn,
    ImuModelSlot, ImuRnn, ModalityDescriptor, ModalityStatus, MultiModalEngine,
    MultiStepClassification, RnnConfig, StepClassification, StreamInput, StreamModelSlot,
};
use darnet_sim::Frame;
use darnet_tensor::{SplitMix64, Tensor};

const FRAME_SIZE: usize = 12;
const BATCH: usize = 8;

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(0.1, 1.0);
    }
    t
}

fn tiny_engine() -> AnalyticsEngine {
    let cnn = FrameCnn::new(
        CnnConfig {
            input_size: FRAME_SIZE,
            classes: 6,
            width: 0.25,
            ..CnnConfig::default()
        },
        1,
    );
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 8,
            depth: 1,
            ..RnnConfig::default()
        },
        2,
    );
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).expect("rnn smoke fit");
    let mut combiner = BayesianCombiner::darnet();
    combiner
        .fit(
            &Tensor::full(&[6, 6], 1.0 / 6.0),
            &Tensor::full(&[6, 3], 1.0 / 3.0),
            &[0, 1, 2, 3, 4, 5],
        )
        .expect("combiner smoke fit");
    AnalyticsEngine::new(
        cnn,
        ImuModelSlot::Rnn(rnn),
        combiner,
        EngineConfig {
            combiner: CombinerKind::Bayesian,
        },
    )
}

fn tiny_cnn(seed: u64) -> FrameCnn {
    FrameCnn::new(
        CnnConfig {
            input_size: FRAME_SIZE,
            classes: 6,
            width: 0.25,
            ..CnnConfig::default()
        },
        seed,
    )
}

/// A 3-stream registry engine: IMU RNN behind the 6→3 projection plus
/// two camera views, fused through a 3-parent Bayesian combiner.
fn tiny_registry_engine() -> MultiModalEngine {
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 8,
            depth: 1,
            ..RnnConfig::default()
        },
        2,
    );
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).expect("rnn smoke fit");
    let mut engine = MultiModalEngine::new(6, CombinerKind::Bayesian);
    engine
        .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Rnn(rnn))
        .expect("register imu");
    engine
        .register(
            ModalityDescriptor::darnet_camera(),
            StreamModelSlot::Cnn(tiny_cnn(3)),
        )
        .expect("register front");
    engine
        .register(
            ModalityDescriptor::new(StreamId::CAMERA_SIDE, ClassMap::Identity),
            StreamModelSlot::Cnn(tiny_cnn(4)),
        )
        .expect("register side");
    engine
        .fit_combiner(
            &[
                &Tensor::full(&[6, 3], 1.0 / 3.0),
                &Tensor::full(&[6, 6], 1.0 / 6.0),
                &Tensor::full(&[6, 6], 1.0 / 6.0),
            ],
            &[0, 1, 2, 3, 4, 5],
        )
        .expect("combiner smoke fit");
    engine
}

#[test]
fn warm_into_paths_perform_zero_heap_allocations() {
    let mut engine = tiny_engine();
    let frames: Vec<Frame> = (0..BATCH)
        .map(|_| Frame::new(FRAME_SIZE, FRAME_SIZE))
        .collect();
    let windows = random_tensor(&[BATCH, WINDOW_LEN, IMU_FEATURES], 14);
    let row = WINDOW_LEN * IMU_FEATURES;
    let single_window = Tensor::from_vec(
        windows.data()[..row].to_vec(),
        &[1, WINDOW_LEN, IMU_FEATURES],
    )
    .expect("window slice");
    let tuples: Vec<AlignedTuple> = (0..BATCH)
        .map(|i| AlignedTuple {
            t: i as f64 * 0.25,
            frame: frames[i].clone(),
            window: windows.data()[i * row..(i + 1) * row].to_vec(),
        })
        .collect();
    let mut results: Vec<StepClassification> = Vec::new();
    let mut step_result: Vec<StepClassification> = Vec::new();

    // Warm-up: one call per path populates the workspaces and session
    // buffers for every shape used below.
    for _ in 0..2 {
        engine
            .classify_batch_into(&frames, &windows, &mut results)
            .expect("warm classify_batch_into");
        engine
            .classify_step_into(&frames[0], &single_window, &mut step_result)
            .expect("warm classify_step_into");
        engine
            .classify_tuples_into(&tuples, &mut results)
            .expect("warm classify_tuples_into");
    }

    // Steady state: several rounds, every round must be allocation-free.
    for round in 0..3 {
        let ((), allocs) = alloc_counter::allocations_during(|| {
            engine
                .classify_batch_into(&frames, &windows, &mut results)
                .expect("steady classify_batch_into");
        });
        assert_eq!(allocs, 0, "classify_batch_into allocated in round {round}");
        assert_eq!(results.len(), BATCH);

        let ((), allocs) = alloc_counter::allocations_during(|| {
            engine
                .classify_step_into(&frames[0], &single_window, &mut step_result)
                .expect("steady classify_step_into");
        });
        assert_eq!(allocs, 0, "classify_step_into allocated in round {round}");
        assert_eq!(step_result.len(), 1);

        let ((), allocs) = alloc_counter::allocations_during(|| {
            engine
                .classify_tuples_into(&tuples, &mut results)
                .expect("steady classify_tuples_into");
        });
        assert_eq!(allocs, 0, "classify_tuples_into allocated in round {round}");
        assert_eq!(results.len(), BATCH);
    }

    // The N-stream registry engine must meet the same bar: after
    // warm-up, serial `classify_*_into` calls — full fusion and the
    // health-gated subset path alike — never touch the heap.
    let mut registry = tiny_registry_engine();
    let side_frames: Vec<Frame> = (0..BATCH)
        .map(|_| Frame::new(FRAME_SIZE, FRAME_SIZE))
        .collect();
    let batch_inputs = [
        (StreamId::IMU, StreamInput::Windows(&windows)),
        (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
        (StreamId::CAMERA_SIDE, StreamInput::Frames(&side_frames)),
    ];
    let step_inputs = [
        (StreamId::IMU, StreamInput::Windows(&single_window)),
        (
            StreamId::CAMERA_FRONT,
            StreamInput::Frames(std::slice::from_ref(&frames[0])),
        ),
        (
            StreamId::CAMERA_SIDE,
            StreamInput::Frames(std::slice::from_ref(&side_frames[0])),
        ),
    ];
    let front_down = [(StreamId::CAMERA_FRONT, ModalityStatus::Unavailable)];
    let mut multi_results: Vec<MultiStepClassification> = Vec::new();
    let mut multi_step: Vec<MultiStepClassification> = Vec::new();

    for _ in 0..2 {
        registry
            .classify_batch_into(&batch_inputs, &mut multi_results)
            .expect("warm registry classify_batch_into");
        registry
            .classify_step_into(&step_inputs, &mut multi_step)
            .expect("warm registry classify_step_into");
        registry
            .classify_batch_checked_into(&batch_inputs, &front_down, &mut multi_results)
            .expect("warm registry subset path");
    }

    for round in 0..3 {
        let ((), allocs) = alloc_counter::allocations_during(|| {
            registry
                .classify_batch_into(&batch_inputs, &mut multi_results)
                .expect("steady registry classify_batch_into");
        });
        assert_eq!(
            allocs, 0,
            "registry classify_batch_into allocated in round {round}"
        );
        assert_eq!(multi_results.len(), BATCH);

        let ((), allocs) = alloc_counter::allocations_during(|| {
            registry
                .classify_step_into(&step_inputs, &mut multi_step)
                .expect("steady registry classify_step_into");
        });
        assert_eq!(
            allocs, 0,
            "registry classify_step_into allocated in round {round}"
        );
        assert_eq!(multi_step.len(), 1);

        let ((), allocs) = alloc_counter::allocations_during(|| {
            registry
                .classify_batch_checked_into(&batch_inputs, &front_down, &mut multi_results)
                .expect("steady registry subset path");
        });
        assert_eq!(
            allocs, 0,
            "registry health-gated subset path allocated in round {round}"
        );
        assert_eq!(multi_results.len(), BATCH);
    }
}
