//! Steady-state zero-allocation gate for the workspace inference path.
//!
//! Uses the crate's counting global allocator
//! ([`darnet_bench::alloc_counter`]) to prove that, after warm-up, the
//! `*_into` classification paths of a serially-configured engine never
//! touch the heap. Kept as a single `#[test]` in its own integration
//! binary: the allocation counter is process-global, so a concurrently
//! running test would pollute the measurement.

use darnet_bench::alloc_counter;
use darnet_collect::runtime::AlignedTuple;
use darnet_core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet_core::{
    AnalyticsEngine, BayesianCombiner, CnnConfig, CombinerKind, EngineConfig, FrameCnn,
    ImuModelSlot, ImuRnn, RnnConfig, StepClassification,
};
use darnet_sim::Frame;
use darnet_tensor::{SplitMix64, Tensor};

const FRAME_SIZE: usize = 12;
const BATCH: usize = 8;

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(0.1, 1.0);
    }
    t
}

fn tiny_engine() -> AnalyticsEngine {
    let cnn = FrameCnn::new(
        CnnConfig {
            input_size: FRAME_SIZE,
            classes: 6,
            width: 0.25,
            ..CnnConfig::default()
        },
        1,
    );
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 8,
            depth: 1,
            ..RnnConfig::default()
        },
        2,
    );
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).expect("rnn smoke fit");
    let mut combiner = BayesianCombiner::darnet();
    combiner
        .fit(
            &Tensor::full(&[6, 6], 1.0 / 6.0),
            &Tensor::full(&[6, 3], 1.0 / 3.0),
            &[0, 1, 2, 3, 4, 5],
        )
        .expect("combiner smoke fit");
    AnalyticsEngine::new(
        cnn,
        ImuModelSlot::Rnn(rnn),
        combiner,
        EngineConfig {
            combiner: CombinerKind::Bayesian,
        },
    )
}

#[test]
fn warm_into_paths_perform_zero_heap_allocations() {
    let mut engine = tiny_engine();
    let frames: Vec<Frame> = (0..BATCH)
        .map(|_| Frame::new(FRAME_SIZE, FRAME_SIZE))
        .collect();
    let windows = random_tensor(&[BATCH, WINDOW_LEN, IMU_FEATURES], 14);
    let row = WINDOW_LEN * IMU_FEATURES;
    let single_window = Tensor::from_vec(
        windows.data()[..row].to_vec(),
        &[1, WINDOW_LEN, IMU_FEATURES],
    )
    .expect("window slice");
    let tuples: Vec<AlignedTuple> = (0..BATCH)
        .map(|i| AlignedTuple {
            t: i as f64 * 0.25,
            frame: frames[i].clone(),
            window: windows.data()[i * row..(i + 1) * row].to_vec(),
        })
        .collect();
    let mut results: Vec<StepClassification> = Vec::new();
    let mut step_result: Vec<StepClassification> = Vec::new();

    // Warm-up: one call per path populates the workspaces and session
    // buffers for every shape used below.
    for _ in 0..2 {
        engine
            .classify_batch_into(&frames, &windows, &mut results)
            .expect("warm classify_batch_into");
        engine
            .classify_step_into(&frames[0], &single_window, &mut step_result)
            .expect("warm classify_step_into");
        engine
            .classify_tuples_into(&tuples, &mut results)
            .expect("warm classify_tuples_into");
    }

    // Steady state: several rounds, every round must be allocation-free.
    for round in 0..3 {
        let ((), allocs) = alloc_counter::allocations_during(|| {
            engine
                .classify_batch_into(&frames, &windows, &mut results)
                .expect("steady classify_batch_into");
        });
        assert_eq!(allocs, 0, "classify_batch_into allocated in round {round}");
        assert_eq!(results.len(), BATCH);

        let ((), allocs) = alloc_counter::allocations_during(|| {
            engine
                .classify_step_into(&frames[0], &single_window, &mut step_result)
                .expect("steady classify_step_into");
        });
        assert_eq!(allocs, 0, "classify_step_into allocated in round {round}");
        assert_eq!(step_result.len(), 1);

        let ((), allocs) = alloc_counter::allocations_during(|| {
            engine
                .classify_tuples_into(&tuples, &mut results)
                .expect("steady classify_tuples_into");
        });
        assert_eq!(allocs, 0, "classify_tuples_into allocated in round {round}");
        assert_eq!(results.len(), BATCH);
    }
}
