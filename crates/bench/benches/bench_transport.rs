//! Transport-layer benchmarks: full-session ingest throughput under 0%,
//! 5%, and 20% link loss, with the reliable (ack + retransmit) transport
//! on, and the fire-and-forget baseline for comparison — the cost of
//! reliability is the retransmission traffic, visible as the gap between
//! the two modes at each loss rate.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use darnet_collect::runtime::{run_session, CampaignConfig};
use darnet_collect::RetransmitConfig;
use darnet_sim::{Behavior, DrivingWorld, Segment, WorldConfig};

fn schedule() -> Vec<Segment<Behavior>> {
    vec![
        Segment {
            driver: 0,
            behavior: Behavior::NormalDriving,
            start: 0.0,
            duration: 4.0,
        },
        Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 4.0,
            duration: 4.0,
        },
    ]
}

fn config_at(loss: f64, reliable: bool) -> CampaignConfig {
    let mut config = CampaignConfig::default();
    config.link.loss = loss;
    if !reliable {
        config.retransmit = RetransmitConfig::disabled();
    }
    config
}

fn bench_ingest_under_loss(c: &mut Criterion) {
    let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
    let sched = schedule();
    let mut group = c.benchmark_group("session ingest throughput");
    group.sample_size(10);
    for loss_pct in [0u32, 5, 20] {
        let loss = loss_pct as f64 / 100.0;
        group.bench_function(format!("reliable transport, {loss_pct}% loss"), |bench| {
            bench
                .iter(|| black_box(run_session(&world, 0, &sched, &config_at(loss, true)).unwrap()))
        });
        group.bench_function(format!("fire-and-forget, {loss_pct}% loss"), |bench| {
            bench.iter(|| {
                black_box(run_session(&world, 0, &sched, &config_at(loss, false)).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest_under_loss);
criterion_main!(benches);
