//! End-to-end per-time-step classification latency (the paper's
//! "near real-time detection" claim) and wire-format costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use darnet_collect::{decode_batch, encode_batch, Batch, SensorReading, StampedReading};
use darnet_core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet_core::{
    AnalyticsEngine, BayesianCombiner, CnnConfig, EngineConfig, FrameCnn, ImuModelSlot, ImuRnn,
    RnnConfig,
};
use darnet_sim::Frame;
use darnet_tensor::Tensor;

fn engine() -> AnalyticsEngine {
    let cnn = FrameCnn::new(
        CnnConfig {
            width: 1.5,
            ..CnnConfig::default()
        },
        1,
    );
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: 32,
            depth: 2,
            ..RnnConfig::default()
        },
        2,
    );
    // One-epoch fit so the standardizer exists; weights are irrelevant to
    // the latency measurement.
    let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
    rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).unwrap();
    let mut combiner = BayesianCombiner::darnet();
    combiner
        .fit(
            &Tensor::full(&[6, 6], 1.0 / 6.0),
            &Tensor::full(&[6, 3], 1.0 / 3.0),
            &[0, 1, 2, 3, 4, 5],
        )
        .unwrap();
    AnalyticsEngine::new(
        cnn,
        ImuModelSlot::Rnn(rnn),
        combiner,
        EngineConfig::default(),
    )
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    let mut eng = engine();
    let frame = Frame::new(48, 48);
    let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
    group.bench_function("engine classify_step (frame + imu window)", |bench| {
        bench.iter(|| black_box(eng.classify_step(&frame, &window).unwrap()))
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let frame = Frame::new(48, 48);
    let batch = Batch {
        agent_id: 0,
        seq: 0,
        readings: vec![StampedReading {
            timestamp: 0.0,
            reading: SensorReading::Frame(frame),
        }],
    };
    c.bench_function("wire encode+decode 48x48 frame batch", |bench| {
        bench.iter(|| black_box(decode_batch(encode_batch(black_box(&batch))).unwrap()))
    });
}

criterion_group!(benches, bench_step, bench_wire);
criterion_main!(benches);
