//! Tensor-kernel microbenchmarks: the matmul and im2col/col2im paths that
//! dominate CNN training time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use darnet_tensor::{col2im, im2col, Conv2dSpec, SplitMix64, Tensor};

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(-1.0, 1.0);
    }
    t
}

fn bench_matmul(c: &mut Criterion) {
    let a = random_tensor(&[64, 64], 1);
    let b = random_tensor(&[64, 64], 2);
    c.bench_function("matmul 64x64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()))
    });
    let at = random_tensor(&[128, 96], 3);
    let bt = random_tensor(&[64, 96], 4);
    c.bench_function("matmul_transpose_b 128x96x64", |bench| {
        bench.iter(|| black_box(at.matmul_transpose_b(&bt).unwrap()))
    });
}

fn bench_im2col(c: &mut Criterion) {
    // The CNN stem geometry: batch 8, 48x48 grayscale, 3x3 kernel.
    let input = random_tensor(&[8, 1, 48, 48], 5);
    let spec = Conv2dSpec::square(1, 12, 3, 1, 1);
    c.bench_function("im2col stem 8x1x48x48 k3", |bench| {
        bench.iter(|| black_box(im2col(&input, &spec).unwrap()))
    });
    let cols = im2col(&input, &spec).unwrap();
    c.bench_function("col2im stem 8x1x48x48 k3", |bench| {
        bench.iter(|| black_box(col2im(&cols, &spec, 8, 48, 48).unwrap()))
    });
}

criterion_group!(benches, bench_matmul, bench_im2col);
criterion_main!(benches);
