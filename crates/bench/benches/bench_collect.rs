//! Middleware microbenchmarks: controller ingest, interpolation +
//! smoothing, clock sync, and TSDB operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use darnet_collect::{
    interpolate_grid, moving_average, Batch, Controller, ControllerConfig, DriftClock, GridSpec,
    SensorReading, StampedReading, TsDb,
};
use darnet_sim::ImuSample;

fn imu_batch(n: usize) -> Batch {
    Batch {
        agent_id: 0,
        seq: 0,
        readings: (0..n)
            .map(|i| StampedReading {
                timestamp: i as f64 * 0.025,
                reading: SensorReading::Imu(ImuSample {
                    accel: [0.1, 0.2, 9.8],
                    gyro: [0.0; 3],
                    gravity: [0.0, 0.0, 9.8],
                    rotation: [0.0; 3],
                }),
            })
            .collect(),
    }
}

fn bench_ingest(c: &mut Criterion) {
    let batch = imu_batch(20);
    c.bench_function("controller ingest 20-reading batch", |bench| {
        bench.iter(|| {
            let mut controller = Controller::new(ControllerConfig::default());
            controller.ingest(black_box(&batch));
            black_box(controller)
        })
    });
}

fn bench_alignment(c: &mut Criterion) {
    let observations: Vec<(f64, Vec<f32>)> = (0..1000)
        .map(|i| (i as f64 * 0.025, vec![i as f32; 12]))
        .collect();
    let grid = GridSpec {
        start: 0.0,
        end: 25.0,
        hz: 4.0,
    };
    c.bench_function("interpolate 1000 obs -> 4 Hz grid", |bench| {
        bench.iter(|| black_box(interpolate_grid(&observations, &grid)))
    });
    let series: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32; 12]).collect();
    c.bench_function("moving average window 3 x 100", |bench| {
        bench.iter(|| black_box(moving_average(&series, 3)))
    });
}

fn bench_clock(c: &mut Criterion) {
    c.bench_function("clock sync round", |bench| {
        bench.iter(|| {
            let mut clock = DriftClock::new(100e-6, 0.25);
            clock.apply_sync(black_box(10.0), 9.98, 0.02);
            black_box(clock.now(10.5))
        })
    });
}

fn bench_tsdb(c: &mut Criterion) {
    c.bench_function("tsdb insert 1000 points", |bench| {
        bench.iter(|| {
            let db = TsDb::new();
            for i in 0..1000 {
                db.insert("m", i as f64, i as f32);
            }
            black_box(db)
        })
    });
    let db = TsDb::new();
    for i in 0..10_000 {
        db.insert("m", i as f64, i as f32);
    }
    c.bench_function("tsdb range query over 10k points", |bench| {
        bench.iter(|| black_box(db.query_range("m", 2500.0, 7500.0).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_ingest,
    bench_alignment,
    bench_clock,
    bench_tsdb
);
criterion_main!(benches);
