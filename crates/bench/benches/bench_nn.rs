//! Model microbenchmarks: per-frame CNN inference, BiLSTM windows, SVM
//! scoring — the per-time-step costs behind the paper's near-real-time
//! classification claim.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use darnet_core::{CnnConfig, FrameCnn};
use darnet_nn::{BiLstm, LinearSvm, Mode};
use darnet_tensor::{SplitMix64, Tensor};

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(-1.0, 1.0);
    }
    t
}

fn bench_cnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn");
    group.sample_size(20);
    let mut cnn = FrameCnn::new(
        CnnConfig {
            width: 1.5,
            ..CnnConfig::default()
        },
        1,
    );
    let frame = random_tensor(&[1, 1, 48, 48], 2);
    group.bench_function("cnn forward 1 frame (paper width)", |bench| {
        bench.iter(|| black_box(cnn.predict_proba(&frame).unwrap()))
    });
    group.finish();
}

fn bench_lstm(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let mut bilstm = BiLstm::new(12, 32, &mut rng);
    let window = random_tensor(&[1, 20, 12], 4);
    c.bench_function("bilstm forward 20-step window", |bench| {
        bench.iter(|| black_box(bilstm.forward_seq(&window, Mode::Eval).unwrap()))
    });
}

fn bench_svm(c: &mut Criterion) {
    let svm = LinearSvm::new(240, 3);
    let x = random_tensor(&[1, 240], 5);
    c.bench_function("svm decision 240 features", |bench| {
        bench.iter(|| black_box(svm.decision_function(&x).unwrap()))
    });
}

criterion_group!(benches, bench_cnn, bench_lstm, bench_svm);
criterion_main!(benches);
