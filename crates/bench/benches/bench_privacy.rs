//! Privacy-path microbenchmarks: the distortion module at each level and
//! one distillation training step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use darnet_core::privacy::{Downsampler, PrivacyLevel};
use darnet_core::{CnnConfig, FrameCnn};
use darnet_nn::Sgd;
use darnet_sim::Frame;
use darnet_tensor::Tensor;

fn bench_downsample(c: &mut Criterion) {
    let frame = Frame::new(48, 48);
    let ds = Downsampler::new(48);
    for level in PrivacyLevel::ALL {
        c.bench_function(format!("distort {}", level.model_name()), |bench| {
            bench.iter(|| black_box(ds.distort(black_box(&frame), level)))
        });
    }
}

fn bench_distill_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("distill");
    group.sample_size(10);
    let config = CnnConfig {
        width: 0.75,
        ..CnnConfig::default()
    };
    let mut teacher = FrameCnn::new(config, 1);
    let mut student = FrameCnn::new(config, 2);
    let frames = Tensor::zeros(&[8, 1, 48, 48]);
    let teacher_logits = teacher.logits(&frames).unwrap();
    let mut opt = Sgd::with_momentum(0.01, 0.9);
    group.bench_function("distill step batch 8", |bench| {
        bench.iter(|| {
            black_box(
                student
                    .distill_step(&frames, &teacher_logits, &mut opt)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_downsample, bench_distill_step);
criterion_main!(benches);
