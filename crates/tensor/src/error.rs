//! Error type for tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    ShapeDataMismatch {
        /// Number of elements the shape implies.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// `[rows, cols]` of the left matrix.
        left: Vec<usize>,
        /// `[rows, cols]` of the right matrix.
        right: Vec<usize>,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger than
    /// padded input).
    InvalidGeometry(String),
    /// A reshape changed the total number of elements.
    ReshapeMismatch {
        /// Element count before the reshape.
        from: usize,
        /// Element count the new shape implies.
        to: usize,
    },
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were supplied"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::MatmulDimMismatch { left, right } => {
                write!(f, "matmul dimension mismatch: {left:?} x {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected} tensor, got rank {actual}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "reshape changes element count from {from} to {to}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
        };
        let msg = err.to_string();
        assert!(msg.starts_with("shape mismatch"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
