//! Convolution lowering: `im2col` / `col2im`.
//!
//! Convolutions in `darnet-nn` are computed as matrix products over patch
//! matrices. [`im2col`] turns a `[batch, channels, height, width]` input into
//! a `[batch * out_h * out_w, channels * kh * kw]` patch matrix; the
//! convolution is then a single matmul with the `[out_channels, channels *
//! kh * kw]` weight matrix. [`col2im`] scatters patch-matrix gradients back
//! into input-shaped gradients for the backward pass.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::parallel::Parallelism;
use crate::tensor::Tensor;
use crate::Result;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Zero padding applied on every side.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Convenience constructor for a square kernel.
    pub fn square(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel does not fit in
    /// the padded input or stride is zero.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be non-zero".into(),
            ));
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if self.kernel_h > ph || self.kernel_w > pw {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kernel_h, self.kernel_w, ph, pw
            )));
        }
        Ok((
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        ))
    }

    /// Number of elements in one flattened patch (`in_channels * kh * kw`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// Lowers a `[batch, c, h, w]` tensor to a patch matrix of shape
/// `[batch * out_h * out_w, c * kh * kw]`.
///
/// # Errors
///
/// Returns an error if the input is not rank 4, the channel count disagrees
/// with `spec`, or the geometry is impossible.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    im2col_with(input, spec, &Parallelism::serial())
}

/// Fills patch rows `row0..` into `chunk`; each patch row is an independent
/// gather, so any contiguous row range can be produced by any thread.
fn im2col_rows(
    data: &[f32],
    spec: &Conv2dSpec,
    geom: (usize, usize, usize, usize, usize), // (c, h, w, oh, ow)
    row0: usize,
    chunk: &mut [f32],
) {
    let (c, h, w, oh, ow) = geom;
    let patch = spec.patch_len();
    let pad = spec.padding as isize;
    for (i, dst) in chunk.chunks_mut(patch).enumerate() {
        let row = row0 + i;
        let n = row / (oh * ow);
        let rem = row % (oh * ow);
        let (oy, ox) = (rem / ow, rem % ow);
        let base_n = n * c * h * w;
        let mut k = 0usize;
        for ch in 0..c {
            let base_c = base_n + ch * h * w;
            for ky in 0..spec.kernel_h {
                let iy = (oy * spec.stride + ky) as isize - pad;
                for kx in 0..spec.kernel_w {
                    let ix = (ox * spec.stride + kx) as isize - pad;
                    dst[k] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                        data[base_c + iy as usize * w + ix as usize]
                    } else {
                        0.0
                    };
                    k += 1;
                }
            }
        }
    }
}

/// [`im2col`] with a parallel execution policy: patch rows are chunked
/// across scoped threads. Each row is a pure gather from the (shared,
/// read-only) input, so the result is bitwise identical to serial.
///
/// # Errors
///
/// Same conditions as [`im2col`].
pub fn im2col_with(input: &Tensor, spec: &Conv2dSpec, par: &Parallelism) -> Result<Tensor> {
    let ((b, c, h, w), (oh, ow), patch) = check_im2col(input, spec)?;
    let mut out = vec![0.0f32; b * oh * ow * patch];
    let data = input.data();
    if patch > 0 {
        par.run_rows(&mut out, patch, patch, |row0, chunk| {
            im2col_rows(data, spec, (c, h, w, oh, ow), row0, chunk)
        });
    }
    Tensor::from_vec(out, &[b * oh * ow, patch])
}

/// Validates an im2col input against `spec`, returning the input dims, the
/// output spatial size, and the patch length.
#[allow(clippy::type_complexity)]
fn check_im2col(
    input: &Tensor,
    spec: &Conv2dSpec,
) -> Result<((usize, usize, usize, usize), (usize, usize), usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    let dims = input.dims();
    let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if c != spec.in_channels {
        return Err(TensorError::InvalidArgument(format!(
            "input has {c} channels, spec expects {}",
            spec.in_channels
        )));
    }
    let (oh, ow) = spec.output_size(h, w)?;
    Ok(((b, c, h, w), (oh, ow), spec.patch_len()))
}

/// [`im2col_with`] writing into a caller-provided `[batch * out_h * out_w,
/// c * kh * kw]` buffer (typically a [`crate::Workspace`] checkout);
/// bitwise identical to the allocating variant. Every output element is
/// overwritten (padding positions included), so `out`'s prior contents are
/// irrelevant.
///
/// # Errors
///
/// Same conditions as [`im2col`], plus [`TensorError::ShapeMismatch`] if
/// `out` does not have the patch-matrix shape.
// darlint: hot
pub fn im2col_into(
    input: &Tensor,
    spec: &Conv2dSpec,
    par: &Parallelism,
    out: &mut Tensor,
) -> Result<()> {
    let ((b, c, h, w), (oh, ow), patch) = check_im2col(input, spec)?;
    check_out_dims(out, &[b * oh * ow, patch])?;
    let data = input.data();
    if patch > 0 {
        par.run_rows(out.data_mut(), patch, patch, |row0, chunk| {
            im2col_rows(data, spec, (c, h, w, oh, ow), row0, chunk)
        });
    }
    Ok(())
}

/// Validates that `out` has exactly `dims`.
pub(crate) fn check_out_dims(out: &Tensor, dims: &[usize]) -> Result<()> {
    if out.dims() != dims {
        return Err(TensorError::ShapeMismatch {
            // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
            left: out.dims().to_vec(),
            // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
            right: dims.to_vec(),
        });
    }
    Ok(())
}

/// Scatters a patch-matrix gradient (shape `[batch * out_h * out_w,
/// c * kh * kw]`) back to an input-shaped gradient `[batch, c, h, w]`.
/// Overlapping patches accumulate, matching the adjoint of [`im2col`].
///
/// # Errors
///
/// Returns an error if shapes disagree with the spec and geometry.
pub fn col2im(
    cols: &Tensor,
    spec: &Conv2dSpec,
    batch: usize,
    h: usize,
    w: usize,
) -> Result<Tensor> {
    let (oh, ow) = spec.output_size(h, w)?;
    let patch = spec.patch_len();
    if cols.rank() != 2 || cols.dims()[0] != batch * oh * ow || cols.dims()[1] != patch {
        return Err(TensorError::ShapeMismatch {
            left: cols.dims().to_vec(),
            right: vec![batch * oh * ow, patch],
        });
    }
    let c = spec.in_channels;
    let mut out = vec![0.0f32; batch * c * h * w];
    let data = cols.data();
    let pad = spec.padding as isize;

    let mut row = 0usize;
    for n in 0..batch {
        let base_n = n * c * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let src = &data[row * patch..(row + 1) * patch];
                let mut k = 0usize;
                for ch in 0..c {
                    let base_c = base_n + ch * h * w;
                    for ky in 0..spec.kernel_h {
                        let iy = (oy * spec.stride + ky) as isize - pad;
                        for kx in 0..spec.kernel_w {
                            let ix = (ox * spec.stride + kx) as isize - pad;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                out[base_c + iy as usize * w + ix as usize] += src[k];
                            }
                            k += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(out, &[batch, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_matches_formula() {
        let spec = Conv2dSpec::square(1, 1, 3, 1, 1);
        assert_eq!(spec.output_size(5, 5).unwrap(), (5, 5));
        let spec2 = Conv2dSpec::square(1, 1, 3, 2, 0);
        assert_eq!(spec2.output_size(7, 7).unwrap(), (3, 3));
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let spec = Conv2dSpec::square(1, 1, 5, 1, 0);
        assert!(spec.output_size(3, 3).is_err());
        let zero_stride = Conv2dSpec {
            stride: 0,
            ..Conv2dSpec::square(1, 1, 1, 1, 0)
        };
        assert!(zero_stride.output_size(3, 3).is_err());
    }

    #[test]
    fn im2col_into_matches_allocating_variant() {
        use crate::workspace::Workspace;
        let input = Tensor::from_vec(
            (0..2 * 3 * 6 * 6)
                .map(|v| ((v * 31) % 23) as f32 * 0.25 - 2.0)
                .collect(),
            &[2, 3, 6, 6],
        )
        .unwrap();
        let spec = Conv2dSpec::square(3, 4, 3, 1, 1);
        let mut ws = Workspace::new();
        for threads in [1, 4] {
            let par = Parallelism::new(threads).with_min_work(1);
            let expected = im2col_with(&input, &spec, &par).unwrap();
            let mut out = ws.checkout(expected.dims());
            out.data_mut().fill(7.0); // stale contents must be overwritten
            im2col_into(&input, &spec, &par, &mut out).unwrap();
            assert_eq!(out, expected);
            ws.restore(out);
        }
    }

    #[test]
    fn im2col_into_rejects_bad_output_shape() {
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        let spec = Conv2dSpec::square(1, 1, 2, 2, 0);
        let mut bad = Tensor::zeros(&[3, 3]);
        assert!(im2col_into(&input, &spec, &Parallelism::serial(), &mut bad).is_err());
    }

    #[test]
    fn im2col_identity_kernel_copies_input() {
        // 1x1 kernel, stride 1, no padding: patch matrix is just the input
        // laid out one pixel per row.
        let input = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let spec = Conv2dSpec::square(2, 1, 1, 1, 0);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.dims(), &[4, 2]);
        // Row for pixel (0,0) holds channels [0, 4].
        assert_eq!(cols.data()[0], 0.0);
        assert_eq!(cols.data()[1], 4.0);
    }

    #[test]
    fn im2col_3x3_on_known_input() {
        // 3x3 input, 3x3 kernel, no padding: single patch = whole image.
        let input = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let spec = Conv2dSpec::square(1, 1, 3, 1, 0);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.dims(), &[1, 9]);
        assert_eq!(cols.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_padding_inserts_zeros() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let spec = Conv2dSpec::square(1, 1, 3, 1, 1);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output patch: the first row and column of the kernel see
        // padding.
        let first = &cols.data()[0..9];
        assert_eq!(first, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y — the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let spec = Conv2dSpec::square(2, 1, 3, 2, 1);
        let (b, h, w) = (2, 5, 4);
        let x = Tensor::from_vec(
            (0..b * 2 * h * w)
                .map(|v| ((v * 13) % 7) as f32 - 3.0)
                .collect(),
            &[b, 2, h, w],
        )
        .unwrap();
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::from_vec(
            (0..cols.len())
                .map(|v| ((v * 5) % 11) as f32 - 5.0)
                .collect(),
            cols.dims(),
        )
        .unwrap();
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let back = col2im(&y, &spec, b, h, w).unwrap();
        let rhs: f32 = x.mul(&back).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn parallel_im2col_is_bitwise_serial() {
        let spec = Conv2dSpec::square(3, 4, 3, 2, 1);
        let (b, h, w) = (3, 9, 7);
        let x = Tensor::from_vec(
            (0..b * 3 * h * w)
                .map(|v| ((v * 17) % 29) as f32 * 0.4 - 5.0)
                .collect(),
            &[b, 3, h, w],
        )
        .unwrap();
        let serial = im2col(&x, &spec).unwrap();
        for threads in [2, 4, 7] {
            let par = Parallelism::new(threads).with_min_work(1);
            assert_eq!(serial, im2col_with(&x, &spec, &par).unwrap());
        }
    }

    #[test]
    fn col2im_shape_validation() {
        let spec = Conv2dSpec::square(1, 1, 2, 1, 0);
        let bad = Tensor::zeros(&[3, 4]);
        assert!(col2im(&bad, &spec, 1, 3, 3).is_err());
    }
}
