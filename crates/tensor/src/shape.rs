//! Shape and index arithmetic for row-major tensors.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::Result;

/// An owned tensor shape with row-major stride computation.
///
/// A `Shape` is a thin wrapper over `Vec<usize>` that centralizes element
/// counting and flat-index arithmetic so that kernels never re-derive stride
/// math ad hoc.
///
/// ```
/// use darnet_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    // darlint: cold — copying constructor; hot code builds shapes via From<Vec<usize>>, which wraps the recycled dims buffer
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Total number of elements (product of dimensions; 1 for a scalar/rank-0
    /// shape).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Consumes the shape, returning the backing dimension vector (used by
    /// the workspace pool to recycle the allocation).
    pub(crate) fn into_dims(self) -> Vec<usize> {
        self.0
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// Returns `None` if the index rank does not match or any coordinate is
    /// out of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.0).zip(&strides) {
            if i >= d {
                return None;
            }
            flat += i * s;
        }
        Some(flat)
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    ///
    /// Returns `None` if the offset is out of range.
    pub fn multi_index(&self, mut flat: usize) -> Option<Vec<usize>> {
        if flat >= self.len() {
            return None;
        }
        let strides = self.strides();
        let mut out = vec![0usize; self.0.len()];
        for (o, &s) in out.iter_mut().zip(&strides) {
            *o = flat / s;
            flat %= s;
        }
        Some(out)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn flat_and_multi_index_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.len() {
            let multi = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&multi), Some(flat));
        }
    }

    #[test]
    fn out_of_bounds_index_rejected() {
        let s = Shape::new(&[2, 2]);
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.flat_index(&[0]), None);
        assert_eq!(s.multi_index(4), None);
    }

    #[test]
    fn dim_accessor_errors_on_bad_axis() {
        let s = Shape::new(&[2, 2]);
        assert!(s.dim(2).is_err());
        assert_eq!(s.dim(1).unwrap(), 2);
    }

    #[test]
    fn zero_size_dimension_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
