//! Scoped-thread execution policy for tensor kernels.
//!
//! [`Parallelism`] is a tiny, copyable handle describing how much thread
//! fan-out a kernel may use. Kernels that accept one (`matmul_with`,
//! `im2col_with`, the pooling `_with` variants, …) split their *output* into
//! contiguous row chunks and run the exact same per-row kernel on each chunk
//! from a `std::thread::scope` worker. Because every output row is written by
//! exactly one thread and each row is computed by the very same code path the
//! serial kernel uses — same loop order, same accumulation order — parallel
//! results are **bitwise identical** to serial results for every shape and
//! thread count.
//!
//! Below a tunable total-work threshold ([`Parallelism::with_min_work`]) the
//! dispatcher falls back to running the kernel inline on the calling thread,
//! so small tensors never pay thread-spawn overhead.

use std::ops::Range;

/// How much work a chunk must amortize before fanning out is worthwhile.
/// Expressed in rough "inner-loop operations" (multiply-adds, copies).
const DEFAULT_MIN_WORK: usize = 1 << 16;

/// A copyable parallel-execution policy for tensor kernels.
///
/// The default ([`Parallelism::serial`]) runs everything inline on the
/// calling thread; [`Parallelism::new`] requests a fixed fan-out and
/// [`Parallelism::auto`] sizes it to the machine (overridable with the
/// `DARNET_THREADS` environment variable).
///
/// ```
/// use darnet_tensor::{Parallelism, Tensor};
///
/// let a = Tensor::ones(&[64, 64]);
/// let par = Parallelism::new(4);
/// let serial = a.matmul(&a)?;
/// let parallel = a.matmul_with(&a, &par)?;
/// assert_eq!(serial, parallel); // bitwise identical
/// # Ok::<(), darnet_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
    min_work: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

impl Parallelism {
    /// A policy that always runs kernels inline on the calling thread.
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            min_work: DEFAULT_MIN_WORK,
        }
    }

    /// A policy allowing up to `threads` worker threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
            min_work: DEFAULT_MIN_WORK,
        }
    }

    /// A policy sized to the machine: `DARNET_THREADS` if set and valid,
    /// otherwise [`std::thread::available_parallelism`], otherwise 1.
    pub fn auto() -> Self {
        let env = std::env::var("DARNET_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Parallelism::new(threads)
    }

    /// Returns the same policy with a different serial-fallback threshold:
    /// kernels whose total work is below `min_work` inner-loop operations run
    /// inline. `min_work` is clamped to ≥ 1; a value of 1 forces fan-out for
    /// every non-trivial shape (useful in tests).
    pub fn with_min_work(mut self, min_work: usize) -> Self {
        self.min_work = min_work.max(1);
        self
    }

    /// Maximum worker threads this policy allows.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serial-fallback threshold in inner-loop operations.
    pub fn min_work(&self) -> usize {
        self.min_work
    }

    /// Whether this policy can never fan out.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Number of threads a kernel with `rows` output rows of `work_per_row`
    /// inner-loop operations each would actually use: 1 when the total work
    /// is under the threshold, otherwise at most one thread per `min_work`
    /// of work, capped by the policy and by `rows`.
    pub fn effective_threads(&self, rows: usize, work_per_row: usize) -> usize {
        if self.threads <= 1 || rows <= 1 {
            return 1;
        }
        let total = rows.saturating_mul(work_per_row.max(1));
        if total < self.min_work {
            return 1;
        }
        (total / self.min_work).clamp(1, self.threads.min(rows))
    }

    /// Splits `0..rows` into the contiguous, in-order chunks the dispatcher
    /// would hand to worker threads. Deterministic: depends only on the
    /// policy and the arguments, never on runtime load. Returns a single
    /// full-range chunk when the kernel would run serially.
    // darlint: cold — the threaded dispatch branch materializes its chunk list by design; the serial fast path the alloc gate runs never calls this
    pub fn partition(&self, rows: usize, work_per_row: usize) -> Vec<Range<usize>> {
        if rows == 0 {
            return Vec::new();
        }
        let t = self.effective_threads(rows, work_per_row);
        let chunk = rows.div_ceil(t);
        (0..rows)
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(rows))
            .collect()
    }

    /// Runs `kernel` over every output row of `out` (rows of `row_len`
    /// elements), fanning out across scoped threads when the policy and the
    /// work size allow it. `kernel(first_row, chunk)` must fill `chunk`,
    /// which covers rows `first_row..first_row + chunk.len() / row_len`.
    pub(crate) fn run_rows<F>(
        &self,
        out: &mut [f32],
        row_len: usize,
        work_per_row: usize,
        kernel: F,
    ) where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        debug_assert!(row_len > 0 && out.len().is_multiple_of(row_len));
        if out.is_empty() {
            return;
        }
        let rows = out.len() / row_len.max(1);
        // Inline execution decided without materializing the partition:
        // the serial fast path must stay allocation-free for the
        // workspace-backed inference path.
        if self.effective_threads(rows, work_per_row) <= 1 {
            kernel(0, out);
            return;
        }
        let ranges = self.partition(rows, work_per_row);
        std::thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * row_len);
                rest = tail;
                let kernel = &kernel;
                scope.spawn(move || kernel(range.start, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_policy_never_fans_out() {
        let p = Parallelism::serial();
        assert!(p.is_serial());
        assert_eq!(p.effective_threads(1_000_000, 1_000_000), 1);
        assert_eq!(p.partition(10, usize::MAX / 16).len(), 1);
    }

    #[test]
    fn small_work_falls_back_to_serial() {
        let p = Parallelism::new(8);
        assert_eq!(p.effective_threads(4, 4), 1);
        assert_eq!(p.partition(4, 4), vec![0..4]);
    }

    #[test]
    fn large_work_uses_all_threads() {
        let p = Parallelism::new(4);
        assert_eq!(p.effective_threads(1024, 1024), 4);
        let parts = p.partition(1024, 1024);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], 0..256);
        assert_eq!(parts[3], 768..1024);
    }

    #[test]
    fn partition_covers_rows_exactly_once() {
        let p = Parallelism::new(3).with_min_work(1);
        let parts = p.partition(10, 100);
        let total: usize = parts.iter().map(|r| r.end - r.start).sum();
        assert_eq!(total, 10);
        for pair in parts.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, 10);
    }

    #[test]
    fn threads_never_exceed_rows() {
        let p = Parallelism::new(16).with_min_work(1);
        assert!(p.effective_threads(3, 1_000_000) <= 3);
    }

    #[test]
    fn run_rows_matches_inline_execution() {
        let p = Parallelism::new(4).with_min_work(1);
        let rows = 37;
        let row_len = 5;
        let fill = |first_row: usize, chunk: &mut [f32]| {
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = ((first_row + i) * row_len + j) as f32;
                }
            }
        };
        let mut parallel = vec![0.0; rows * row_len];
        p.run_rows(&mut parallel, row_len, 1000, fill);
        let mut serial = vec![0.0; rows * row_len];
        fill(0, &mut serial);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn zero_rows_is_a_no_op() {
        let p = Parallelism::new(4).with_min_work(1);
        assert!(p.partition(0, 10).is_empty());
        let mut empty: Vec<f32> = Vec::new();
        p.run_rows(&mut empty, 1, 10, |_, _| panic!("kernel must not run"));
    }
}
