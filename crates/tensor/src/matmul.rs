//! Matrix multiplication kernels.
//!
//! Each product is implemented as a per-output-row kernel shared by the
//! serial entry points and the [`Parallelism`]-aware `_with` variants, so
//! parallel execution is bitwise identical to serial: a thread count only
//! changes *which thread* computes a row, never the arithmetic inside it.

use crate::error::TensorError;
use crate::parallel::Parallelism;
use crate::tensor::Tensor;
use crate::Result;

/// Computes output rows `row0..` of `a [m,k] × b [k,n]` into `chunk`.
/// i-k-j loop order: the innermost loop walks both operands contiguously.
fn matmul_rows(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, chunk: &mut [f32]) {
    for (i, c_row) in chunk.chunks_mut(n).enumerate() {
        let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c += a_ip * b_pj;
            }
        }
    }
}

/// Computes output rows `row0..` of `a [m,k] × bᵀ` (`b` stored `[n,k]`) into
/// `chunk` as row-by-row dot products.
fn matmul_transpose_b_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    chunk: &mut [f32],
) {
    for (i, c_row) in chunk.chunks_mut(n).enumerate() {
        let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
        for (j, c) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *c = acc;
        }
    }
}

/// Computes output rows `row0..` of `aᵀ × b` (`a` stored `[k,m]`, `b`
/// `[k,n]`) into `chunk`. Accumulates over `p` in ascending order per output
/// row, skipping zero `a` entries — the same element-wise accumulation order
/// for every dispatch strategy.
fn matmul_transpose_a_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    row0: usize,
    chunk: &mut [f32],
) {
    for (i, c_row) in chunk.chunks_mut(n).enumerate() {
        let col = row0 + i;
        for p in 0..k {
            let a_pi = a[p * m + col];
            if a_pi == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c += a_pi * b_pj;
            }
        }
    }
}

fn check_rank2(a: &Tensor, b: &Tensor) -> Result<()> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
        });
    }
    Ok(())
}

/// Validates operands of shapes `[m,k] × [k,n]` (or the stated transpose
/// layout) and an `out` buffer of `[m,n]`; returns `(m, k, n)`. Shared by
/// the `_into` product variants so their hot bodies stay allocation-free.
fn check_product_into(
    a_dims: (usize, usize),
    b_inner: usize,
    n: usize,
    operands: (&Tensor, &Tensor),
    out: &Tensor,
) -> Result<(usize, usize, usize)> {
    let (m, k) = a_dims;
    if k != b_inner {
        return Err(TensorError::MatmulDimMismatch {
            // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
            left: operands.0.dims().to_vec(),
            // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
            right: operands.1.dims().to_vec(),
        });
    }
    if out.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
            left: out.dims().to_vec(),
            // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
            right: vec![m, n],
        });
    }
    Ok((m, k, n))
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `self [m,k] × other [k,n] →
    /// [m,n]`.
    ///
    /// Uses an i-k-j loop order so the innermost loop walks both operands
    /// contiguously — substantially faster than the naive i-j-k order on
    /// row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2
    /// or [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
    ///
    /// ```
    /// use darnet_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.data(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok::<(), darnet_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_with(other, &Parallelism::serial())
    }

    /// [`Tensor::matmul`] with a parallel execution policy. Output rows are
    /// chunked across scoped threads; results are bitwise identical to the
    /// serial product.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_with(&self, other: &Tensor, par: &Parallelism) -> Result<Tensor> {
        check_rank2(self, other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            par.run_rows(&mut out, n, k * n, |row0, chunk| {
                matmul_rows(a, b, k, n, row0, chunk)
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self [m,k] × otherᵀ` where `other` is `[n,k]` — multiplies by the
    /// transpose without materializing it. This is the hot path in dense
    /// layer backward passes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_transpose_b_with(other, &Parallelism::serial())
    }

    /// [`Tensor::matmul_transpose_b`] with a parallel execution policy;
    /// bitwise identical to the serial product.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    // darlint: cold — owned-output twin of matmul_transpose_b_into; steady-state inference writes into workspace buffers
    pub fn matmul_transpose_b_with(&self, other: &Tensor, par: &Parallelism) -> Result<Tensor> {
        check_rank2(self, other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            par.run_rows(&mut out, n, k * n, |row0, chunk| {
                matmul_transpose_b_rows(a, b, k, n, row0, chunk)
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ × other` where `self` is `[k,m]` and `other` is `[k,n]` —
    /// multiplies by the transpose of `self` without materializing it. This
    /// computes weight gradients (`xᵀ · dy`) in dense layers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_a(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_transpose_a_with(other, &Parallelism::serial())
    }

    /// [`Tensor::matmul_transpose_a`] with a parallel execution policy;
    /// bitwise identical to the serial product.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_a_with(&self, other: &Tensor, par: &Parallelism) -> Result<Tensor> {
        check_rank2(self, other)?;
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            par.run_rows(&mut out, n, k * n, |row0, chunk| {
                matmul_transpose_a_rows(a, b, k, m, n, row0, chunk)
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// [`Tensor::matmul_with`] writing into a caller-provided `[m,n]`
    /// buffer (typically a [`crate::Workspace`] checkout) instead of
    /// allocating; bitwise identical to the allocating variant. `out` is
    /// zeroed first, so its prior contents are irrelevant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], plus
    /// [`TensorError::ShapeMismatch`] if `out` is not `[m,n]`.
    // darlint: hot
    pub fn matmul_into(&self, other: &Tensor, par: &Parallelism, out: &mut Tensor) -> Result<()> {
        check_rank2(self, other)?;
        let (_m, k, n) = check_product_into(
            (self.dims()[0], self.dims()[1]),
            other.dims()[0],
            other.dims()[1],
            (self, other),
            out,
        )?;
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        // The row kernel accumulates, so the recycled buffer must start
        // from zero — a memset, still cheaper than allocate-and-zero.
        c.fill(0.0);
        if n > 0 {
            par.run_rows(c, n, k * n, |row0, chunk| {
                matmul_rows(a, b, k, n, row0, chunk)
            });
        }
        Ok(())
    }

    /// [`Tensor::matmul_transpose_b_with`] writing into a caller-provided
    /// `[m,n]` buffer; bitwise identical to the allocating variant. Every
    /// output element is overwritten, so `out`'s prior contents are
    /// irrelevant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], plus
    /// [`TensorError::ShapeMismatch`] if `out` is not `[m,n]`.
    // darlint: hot
    pub fn matmul_transpose_b_into(
        &self,
        other: &Tensor,
        par: &Parallelism,
        out: &mut Tensor,
    ) -> Result<()> {
        check_rank2(self, other)?;
        let (_m, k, n) = check_product_into(
            (self.dims()[0], self.dims()[1]),
            other.dims()[1],
            other.dims()[0],
            (self, other),
            out,
        )?;
        let a = self.data();
        let b = other.data();
        if n > 0 {
            par.run_rows(out.data_mut(), n, k * n, |row0, chunk| {
                matmul_transpose_b_rows(a, b, k, n, row0, chunk)
            });
        }
        Ok(())
    }

    /// [`Tensor::matmul_transpose_a_with`] writing into a caller-provided
    /// `[m,n]` buffer; bitwise identical to the allocating variant. `out`
    /// is zeroed first, so its prior contents are irrelevant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], plus
    /// [`TensorError::ShapeMismatch`] if `out` is not `[m,n]`.
    // darlint: hot
    pub fn matmul_transpose_a_into(
        &self,
        other: &Tensor,
        par: &Parallelism,
        out: &mut Tensor,
    ) -> Result<()> {
        check_rank2(self, other)?;
        let (m, k, n) = check_product_into(
            (self.dims()[1], self.dims()[0]),
            other.dims()[0],
            other.dims()[1],
            (self, other),
            out,
        )?;
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        // Accumulating kernel: start from zero (see matmul_into).
        c.fill(0.0);
        if n > 0 {
            par.run_rows(c, n, k * n, |row0, chunk| {
                matmul_transpose_a_rows(a, b, k, m, n, row0, chunk)
            });
        }
        Ok(())
    }

    /// Matrix–vector product: `self [m,k] × v [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if v.len() != k {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: v.dims().to_vec(),
            });
        }
        let a = self.data();
        let x = v.data();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&w, &xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            out[i] = acc;
        }
        Tensor::from_vec(out, &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[3, 3]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(3)).unwrap(), a);
        assert_eq!(Tensor::eye(3).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32 * 0.5).collect(), &[2, 3]).unwrap();
        let b =
            Tensor::from_vec((0..12).map(|v| v as f32 * 0.25 - 1.0).collect(), &[4, 3]).unwrap();
        // a [2,3] x b^T [3,4] = [2,4]
        let via_t = a.matmul(&b.transpose2d().unwrap()).unwrap();
        let direct = a.matmul_transpose_b(&b).unwrap();
        assert_eq!(via_t, direct);

        let c = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 4]).unwrap();
        // a^T [3,2] x c [2,4] = [3,4]
        let via_t2 = a.transpose2d().unwrap().matmul(&c).unwrap();
        let direct2 = a.matmul_transpose_a(&c).unwrap();
        assert_eq!(via_t2, direct2);
    }

    #[test]
    fn optimized_matmul_matches_naive_on_larger_input() {
        let a = Tensor::from_vec(
            (0..20 * 17).map(|v| ((v * 31) % 13) as f32 - 6.0).collect(),
            &[20, 17],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..17 * 9).map(|v| ((v * 7) % 11) as f32 - 5.0).collect(),
            &[17, 9],
        )
        .unwrap();
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let v = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let direct = a.matvec(&v).unwrap();
        assert_eq!(direct.data(), &[0.5 - 2.0, 3.0 + 2.0 - 5.0]);
    }

    #[test]
    fn into_variants_match_allocating_and_ignore_stale_contents() {
        use crate::workspace::Workspace;
        let a = Tensor::from_vec(
            (0..12 * 7)
                .map(|v| ((v * 13) % 9) as f32 * 0.4 - 1.0)
                .collect(),
            &[12, 7],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..7 * 5)
                .map(|v| ((v * 19) % 11) as f32 * 0.2 - 0.7)
                .collect(),
            &[7, 5],
        )
        .unwrap();
        let bt = Tensor::from_vec(
            (0..5 * 7)
                .map(|v| ((v * 23) % 13) as f32 * 0.3 - 1.2)
                .collect(),
            &[5, 7],
        )
        .unwrap();
        let at = Tensor::from_vec(
            (0..12 * 5)
                .map(|v| ((v * 29) % 17) as f32 * 0.1 - 0.4)
                .collect(),
            &[12, 5],
        )
        .unwrap();
        let mut ws = Workspace::new();
        for threads in [1, 3] {
            let par = Parallelism::new(threads).with_min_work(1);
            // Poison the output buffers to prove prior contents are
            // irrelevant (the accumulating kernels must self-zero).
            let mut out = ws.checkout(&[12, 5]);
            out.data_mut().fill(99.0);
            a.matmul_into(&b, &par, &mut out).unwrap();
            assert_eq!(out, a.matmul_with(&b, &par).unwrap());
            ws.restore(out);

            let mut out = ws.checkout(&[12, 5]);
            out.data_mut().fill(-3.5);
            a.matmul_transpose_b_into(&bt, &par, &mut out).unwrap();
            assert_eq!(out, a.matmul_transpose_b_with(&bt, &par).unwrap());
            ws.restore(out);

            let mut out = ws.checkout(&[7, 5]);
            out.data_mut().fill(42.0);
            a.matmul_transpose_a_into(&at, &par, &mut out).unwrap();
            assert_eq!(out, a.matmul_transpose_a_with(&at, &par).unwrap());
            ws.restore(out);
        }
    }

    #[test]
    fn into_variants_reject_bad_output_shapes() {
        let a = Tensor::zeros(&[3, 4]);
        let b = Tensor::zeros(&[4, 2]);
        let mut bad = Tensor::zeros(&[3, 3]);
        assert!(a.matmul_into(&b, &Parallelism::serial(), &mut bad).is_err());
        let bt = Tensor::zeros(&[2, 4]);
        assert!(a
            .matmul_transpose_b_into(&bt, &Parallelism::serial(), &mut bad)
            .is_err());
        let at = Tensor::zeros(&[3, 2]);
        assert!(a
            .matmul_transpose_a_into(&at, &Parallelism::serial(), &mut bad)
            .is_err());
    }

    #[test]
    fn parallel_products_are_bitwise_serial() {
        let a = Tensor::from_vec(
            (0..48 * 33)
                .map(|v| ((v * 37) % 19) as f32 * 0.31 - 2.0)
                .collect(),
            &[48, 33],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..33 * 21)
                .map(|v| ((v * 11) % 23) as f32 * 0.17 - 1.5)
                .collect(),
            &[33, 21],
        )
        .unwrap();
        let bt = Tensor::from_vec(
            (0..21 * 33)
                .map(|v| ((v * 29) % 13) as f32 * 0.09 - 0.5)
                .collect(),
            &[21, 33],
        )
        .unwrap();
        let at = Tensor::from_vec(
            (0..48 * 21)
                .map(|v| ((v * 41) % 17) as f32 * 0.23 - 1.0)
                .collect(),
            &[48, 21],
        )
        .unwrap();
        for threads in [2, 3, 5, 8] {
            let par = Parallelism::new(threads).with_min_work(1);
            assert_eq!(a.matmul(&b).unwrap(), a.matmul_with(&b, &par).unwrap());
            assert_eq!(
                a.matmul_transpose_b(&bt).unwrap(),
                a.matmul_transpose_b_with(&bt, &par).unwrap()
            );
            assert_eq!(
                a.matmul_transpose_a(&at).unwrap(),
                a.matmul_transpose_a_with(&at, &par).unwrap()
            );
        }
    }
}
