//! Matrix multiplication kernels.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `self [m,k] × other [k,n] →
    /// [m,n]`.
    ///
    /// Uses an i-k-j loop order so the innermost loop walks both operands
    /// contiguously — substantially faster than the naive i-j-k order on
    /// row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2
    /// or [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
    ///
    /// ```
    /// use darnet_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.data(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok::<(), darnet_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (c, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c += a_ip * b_pj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self [m,k] × otherᵀ` where `other` is `[n,k]` — multiplies by the
    /// transpose without materializing it. This is the hot path in dense
    /// layer backward passes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ × other` where `self` is `[k,m]` and `other` is `[k,n]` —
    /// multiplies by the transpose of `self` without materializing it. This
    /// computes weight gradients (`xᵀ · dy`) in dense layers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_a(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
            });
        }
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let c_row = &mut out[i * n..(i + 1) * n];
                for (c, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c += a_pi * b_pj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `self [m,k] × v [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if v.len() != k {
            return Err(TensorError::MatmulDimMismatch {
                left: self.dims().to_vec(),
                right: v.dims().to_vec(),
            });
        }
        let a = self.data();
        let x = v.data();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&w, &xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            out[i] = acc;
        }
        Tensor::from_vec(out, &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[3, 3]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(3)).unwrap(), a);
        assert_eq!(Tensor::eye(3).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32 * 0.5).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|v| v as f32 * 0.25 - 1.0).collect(), &[4, 3])
            .unwrap();
        // a [2,3] x b^T [3,4] = [2,4]
        let via_t = a.matmul(&b.transpose2d().unwrap()).unwrap();
        let direct = a.matmul_transpose_b(&b).unwrap();
        assert_eq!(via_t, direct);

        let c = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 4]).unwrap();
        // a^T [3,2] x c [2,4] = [3,4]
        let via_t2 = a.transpose2d().unwrap().matmul(&c).unwrap();
        let direct2 = a.matmul_transpose_a(&c).unwrap();
        assert_eq!(via_t2, direct2);
    }

    #[test]
    fn optimized_matmul_matches_naive_on_larger_input() {
        let a = Tensor::from_vec(
            (0..20 * 17).map(|v| ((v * 31) % 13) as f32 - 6.0).collect(),
            &[20, 17],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..17 * 9).map(|v| ((v * 7) % 11) as f32 - 5.0).collect(),
            &[17, 9],
        )
        .unwrap();
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let v = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let direct = a.matvec(&v).unwrap();
        assert_eq!(direct.data(), &[0.5 - 2.0, 3.0 + 2.0 - 5.0]);
    }
}
