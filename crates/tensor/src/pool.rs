//! Max and average pooling kernels over `[batch, c, h, w]` tensors.

use serde::{Deserialize, Serialize};

use crate::conv::check_out_dims;
use crate::error::TensorError;
use crate::parallel::Parallelism;
use crate::tensor::Tensor;
use crate::Result;

/// Geometry of a 2-D pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Pooling window height and width (square window).
    pub window: usize,
    /// Stride in both directions.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pool spec; `window` and `stride` must be non-zero.
    pub fn new(window: usize, stride: usize) -> Self {
        PoolSpec { window, stride }
    }

    /// Output spatial size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the window does not fit
    /// or window/stride is zero.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.window == 0 || self.stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "pool window and stride must be non-zero".into(),
            ));
        }
        if self.window > h || self.window > w {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {} larger than input {}x{}",
                self.window, h, w
            )));
        }
        Ok((
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        ))
    }
}

fn check_rank4(input: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    let d = input.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Max pooling. Returns `(output, argmax_indices)` where `argmax_indices`
/// holds, for each output element, the flat index into the input that won —
/// consumed by [`max_pool2d_backward`].
///
/// # Errors
///
/// Returns an error on rank or geometry problems.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<(Tensor, Vec<usize>)> {
    max_pool2d_with(input, spec, &Parallelism::serial())
}

/// Max-pools the `[h,w]` planes `plane0..` into `out_chunk`/`arg_chunk`
/// (one `oh*ow` stretch per plane).
fn max_pool_planes(
    data: &[f32],
    spec: &PoolSpec,
    geom: (usize, usize, usize, usize), // (h, w, oh, ow)
    plane0: usize,
    out_chunk: &mut [f32],
    arg_chunk: &mut [usize],
) {
    let (h, w, oh, ow) = geom;
    let plane_out = oh * ow;
    for (i, (out_plane, arg_plane)) in out_chunk
        .chunks_mut(plane_out)
        .zip(arg_chunk.chunks_mut(plane_out))
        .enumerate()
    {
        let base = (plane0 + i) * h * w;
        let mut o = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        let idx = base + iy * w + ix;
                        if data[idx] > best {
                            best = data[idx];
                            best_idx = idx;
                        }
                    }
                }
                out_plane[o] = best;
                arg_plane[o] = best_idx;
                o += 1;
            }
        }
    }
}

/// [`max_pool2d`] with a parallel execution policy: the `batch * channels`
/// planes are chunked across scoped threads, with the output and argmax
/// buffers split in lockstep. Bitwise identical to serial.
///
/// # Errors
///
/// Returns an error on rank or geometry problems.
pub fn max_pool2d_with(
    input: &Tensor,
    spec: &PoolSpec,
    par: &Parallelism,
) -> Result<(Tensor, Vec<usize>)> {
    let (b, c, h, w) = check_rank4(input)?;
    let (oh, ow) = spec.output_size(h, w)?;
    let plane_out = oh * ow;
    let mut out = vec![0.0f32; b * c * plane_out];
    let mut arg = vec![0usize; b * c * plane_out];
    max_pool_dispatch(
        input.data(),
        spec,
        (b * c, h, w, oh, ow),
        par,
        &mut out,
        &mut arg,
    );
    Ok((Tensor::from_vec(out, &[b, c, oh, ow])?, arg))
}

/// Shared serial/threaded dispatch for max pooling: chunks the `planes`
/// `[h,w]` planes across scoped threads (output and argmax buffers split
/// in lockstep) or runs inline under a serial policy. Both entry points go
/// through here, so the `_into` variant is bitwise identical by
/// construction.
// darlint: hot
fn max_pool_dispatch(
    data: &[f32],
    spec: &PoolSpec,
    geom: (usize, usize, usize, usize, usize), // (planes, h, w, oh, ow)
    par: &Parallelism,
    out: &mut [f32],
    arg: &mut [usize],
) {
    let (planes, h, w, oh, ow) = geom;
    let plane_out = oh * ow;
    let work_per_plane = plane_out * spec.window * spec.window;
    // Inline execution decided without materializing the partition, so
    // the serial fast path stays allocation-free (see Parallelism).
    if par.effective_threads(planes, work_per_plane) <= 1 {
        max_pool_planes(data, spec, (h, w, oh, ow), 0, out, arg);
    } else {
        let ranges = par.partition(planes, work_per_plane);
        std::thread::scope(|scope| {
            let mut out_rest = out;
            let mut arg_rest = arg;
            for range in ranges {
                let take = (range.end - range.start) * plane_out;
                let (out_chunk, out_tail) = out_rest.split_at_mut(take);
                let (arg_chunk, arg_tail) = arg_rest.split_at_mut(take);
                out_rest = out_tail;
                arg_rest = arg_tail;
                scope.spawn(move || {
                    max_pool_planes(
                        data,
                        spec,
                        (h, w, oh, ow),
                        range.start,
                        out_chunk,
                        arg_chunk,
                    )
                });
            }
        });
    }
}

/// [`max_pool2d_with`] writing into a caller-provided `[b, c, oh, ow]`
/// buffer (typically a [`crate::Workspace`] checkout) and a reusable
/// argmax scratch vector; bitwise identical to the allocating variant.
/// `argmax` is resized to the output length (no allocation once its
/// capacity suffices) and every element of both buffers is overwritten.
///
/// # Errors
///
/// Returns an error on rank or geometry problems, or if `out` does not
/// have the pooled output shape.
// darlint: hot
pub fn max_pool2d_into(
    input: &Tensor,
    spec: &PoolSpec,
    par: &Parallelism,
    out: &mut Tensor,
    argmax: &mut Vec<usize>,
) -> Result<()> {
    let (b, c, h, w) = check_rank4(input)?;
    let (oh, ow) = spec.output_size(h, w)?;
    check_out_dims(out, &[b, c, oh, ow])?;
    argmax.resize(b * c * oh * ow, 0);
    max_pool_dispatch(
        input.data(),
        spec,
        (b * c, h, w, oh, ow),
        par,
        out.data_mut(),
        argmax,
    );
    Ok(())
}

/// Backward pass of max pooling: routes each output gradient to the input
/// element that won the corresponding window.
///
/// # Errors
///
/// Returns an error if `grad_out` does not match the recorded argmax length.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::InvalidArgument(format!(
            "grad_out has {} elements, argmax has {}",
            grad_out.len(),
            argmax.len()
        )));
    }
    let mut grad_in = Tensor::zeros(input_dims);
    let gi = grad_in.data_mut();
    for (&idx, &g) in argmax.iter().zip(grad_out.data()) {
        if idx >= gi.len() {
            return Err(TensorError::InvalidArgument(format!(
                "argmax index {idx} out of range for input of {} elements",
                gi.len()
            )));
        }
        gi[idx] += g;
    }
    Ok(grad_in)
}

/// Average pooling over square windows.
///
/// # Errors
///
/// Returns an error on rank or geometry problems.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<Tensor> {
    avg_pool2d_with(input, spec, &Parallelism::serial())
}

/// Average-pools the `[h,w]` planes `plane0..` into `chunk`.
fn avg_pool_planes(
    data: &[f32],
    spec: &PoolSpec,
    geom: (usize, usize, usize, usize), // (h, w, oh, ow)
    plane0: usize,
    chunk: &mut [f32],
) {
    let (h, w, oh, ow) = geom;
    let denom = (spec.window * spec.window) as f32;
    for (i, out_plane) in chunk.chunks_mut(oh * ow).enumerate() {
        let base = (plane0 + i) * h * w;
        let mut o = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        acc += data[base + (oy * spec.stride + ky) * w + ox * spec.stride + kx];
                    }
                }
                out_plane[o] = acc / denom;
                o += 1;
            }
        }
    }
}

/// [`avg_pool2d`] with a parallel execution policy: `batch * channels`
/// planes chunked across scoped threads, bitwise identical to serial.
///
/// # Errors
///
/// Returns an error on rank or geometry problems.
pub fn avg_pool2d_with(input: &Tensor, spec: &PoolSpec, par: &Parallelism) -> Result<Tensor> {
    let (b, c, h, w) = check_rank4(input)?;
    let (oh, ow) = spec.output_size(h, w)?;
    let data = input.data();
    let plane_out = oh * ow;
    let mut out = vec![0.0f32; b * c * plane_out];
    par.run_rows(
        &mut out,
        plane_out,
        plane_out * spec.window * spec.window,
        |plane0, chunk| avg_pool_planes(data, spec, (h, w, oh, ow), plane0, chunk),
    );
    Tensor::from_vec(out, &[b, c, oh, ow])
}

/// [`avg_pool2d_with`] writing into a caller-provided `[b, c, oh, ow]`
/// buffer (typically a [`crate::Workspace`] checkout); bitwise identical
/// to the allocating variant. Every output element is overwritten.
///
/// # Errors
///
/// Returns an error on rank or geometry problems, or if `out` does not
/// have the pooled output shape.
// darlint: hot
pub fn avg_pool2d_into(
    input: &Tensor,
    spec: &PoolSpec,
    par: &Parallelism,
    out: &mut Tensor,
) -> Result<()> {
    let (b, c, h, w) = check_rank4(input)?;
    let (oh, ow) = spec.output_size(h, w)?;
    check_out_dims(out, &[b, c, oh, ow])?;
    let data = input.data();
    let plane_out = oh * ow;
    par.run_rows(
        out.data_mut(),
        plane_out,
        plane_out * spec.window * spec.window,
        |plane0, chunk| avg_pool_planes(data, spec, (h, w, oh, ow), plane0, chunk),
    );
    Ok(())
}

/// Backward pass of average pooling: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns an error on rank or geometry problems.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    spec: &PoolSpec,
    input_dims: &[usize],
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (b, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.output_size(h, w)?;
    if grad_out.dims() != [b, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_out.dims().to_vec(),
            right: vec![b, c, oh, ow],
        });
    }
    let denom = (spec.window * spec.window) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let gi = grad_in.data_mut();
    let go = grad_out.data();
    let mut o = 0usize;
    for n in 0..b {
        for ch in 0..c {
            let base = (n * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[o] / denom;
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            gi[base + (oy * spec.stride + ky) * w + ox * spec.stride + kx] += g;
                        }
                    }
                    o += 1;
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maxima() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, arg) = max_pool2d(&input, &PoolSpec::new(2, 2)).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn pool_into_variants_match_allocating() {
        use crate::workspace::Workspace;
        let input = Tensor::from_vec(
            (0..2 * 3 * 6 * 6)
                .map(|v| ((v * 37) % 29) as f32 * 0.5 - 7.0)
                .collect(),
            &[2, 3, 6, 6],
        )
        .unwrap();
        let spec = PoolSpec::new(2, 2);
        let mut ws = Workspace::new();
        let mut argmax = Vec::new();
        for threads in [1, 4] {
            let par = Parallelism::new(threads).with_min_work(1);
            let (expected, expected_arg) = max_pool2d_with(&input, &spec, &par).unwrap();
            let mut out = ws.checkout(expected.dims());
            out.data_mut().fill(-1.0);
            argmax.clear();
            max_pool2d_into(&input, &spec, &par, &mut out, &mut argmax).unwrap();
            assert_eq!(out, expected);
            assert_eq!(argmax, expected_arg);
            ws.restore(out);

            let expected_avg = avg_pool2d_with(&input, &spec, &par).unwrap();
            let mut out = ws.checkout(expected_avg.dims());
            out.data_mut().fill(123.0);
            avg_pool2d_into(&input, &spec, &par, &mut out).unwrap();
            assert_eq!(out, expected_avg);
            ws.restore(out);
        }
    }

    #[test]
    fn pool_into_rejects_bad_output_shape() {
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        let spec = PoolSpec::new(2, 2);
        let mut bad = Tensor::zeros(&[1, 1, 3, 3]);
        let mut arg = Vec::new();
        let par = Parallelism::serial();
        assert!(max_pool2d_into(&input, &spec, &par, &mut bad, &mut arg).is_err());
        assert!(avg_pool2d_into(&input, &spec, &par, &mut bad).is_err());
    }

    #[test]
    fn max_pool_backward_routes_gradient_to_winner() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (out, arg) = max_pool2d(&input, &PoolSpec::new(2, 2)).unwrap();
        assert_eq!(out.data(), &[4.0]);
        let grad = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap();
        let gin = max_pool2d_backward(&grad, &arg, input.dims()).unwrap();
        assert_eq!(gin.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avg_pool_averages_windows() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let out = avg_pool2d(&input, &PoolSpec::new(2, 2)).unwrap();
        assert_eq!(out.data(), &[4.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let spec = PoolSpec::new(2, 2);
        let grad = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let gin = avg_pool2d_backward(&grad, &spec, &[1, 1, 2, 2]).unwrap();
        assert_eq!(gin.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_rejects_window_larger_than_input() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(max_pool2d(&input, &PoolSpec::new(3, 1)).is_err());
    }

    #[test]
    fn parallel_pooling_is_bitwise_serial() {
        let (b, c, h, w) = (2, 3, 7, 6);
        let input = Tensor::from_vec(
            (0..b * c * h * w)
                .map(|v| ((v * 23) % 31) as f32 * 0.7 - 10.0)
                .collect(),
            &[b, c, h, w],
        )
        .unwrap();
        let spec = PoolSpec::new(2, 2);
        let (out_s, arg_s) = max_pool2d(&input, &spec).unwrap();
        let avg_s = avg_pool2d(&input, &spec).unwrap();
        for threads in [2, 3, 6] {
            let par = Parallelism::new(threads).with_min_work(1);
            let (out_p, arg_p) = max_pool2d_with(&input, &spec, &par).unwrap();
            assert_eq!(out_s, out_p);
            assert_eq!(arg_s, arg_p);
            assert_eq!(avg_s, avg_pool2d_with(&input, &spec, &par).unwrap());
        }
    }

    #[test]
    fn overlapping_windows_accumulate_in_backward() {
        // stride 1, window 2 on a 3x3 input: center pixel belongs to 4
        // windows.
        let spec = PoolSpec::new(2, 1);
        let grad = Tensor::ones(&[1, 1, 2, 2]);
        let gin = avg_pool2d_backward(&grad, &spec, &[1, 1, 3, 3]).unwrap();
        // Center element receives 4 * (1/4) = 1.0.
        assert!((gin.get(&[0, 0, 1, 1]).unwrap() - 1.0).abs() < 1e-6);
        // Corner element receives 1 * (1/4).
        assert!((gin.get(&[0, 0, 0, 0]).unwrap() - 0.25).abs() < 1e-6);
    }
}
