//! The core [`Tensor`] type: an owned, row-major, `f32` n-d array.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// An owned, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout the DarNet
/// reproduction: images are `[batch, channels, height, width]`, IMU windows
/// are `[batch, time, features]`, and weight matrices are `[rows, cols]`.
///
/// All operations are implemented in safe Rust over a flat `Vec<f32>` and
/// validate their arguments ([`TensorError`] on misuse).
///
/// ```
/// use darnet_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2])?;
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
/// # Ok::<(), darnet_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Crate-internal constructor pairing a pre-validated shape with a
    /// pooled buffer (the [`crate::Workspace`] checkout path). Callers
    /// must guarantee `shape.len() == data.len()`.
    pub(crate) fn from_pooled(shape: Shape, data: Vec<f32>) -> Self {
        debug_assert_eq!(shape.len(), data.len());
        Tensor { shape, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Consumes the tensor into its shape and data (so the workspace pool
    /// can recycle both allocations).
    pub(crate) fn into_parts(self) -> (Shape, Vec<f32>) {
        (self.shape, self.data)
    }

    /// Element at a multi-dimensional index, or `None` if out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.flat_index(index).map(|i| self.data[i])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the index is out of
    /// bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.flat_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::InvalidArgument(format!(
                "index {index:?} out of bounds for shape {:?}",
                self.dims()
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.len() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: new_shape.len(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2 or `i` is out of range.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if i >= r {
            return Err(TensorError::InvalidArgument(format!(
                "row {i} out of range for {r} rows"
            )));
        }
        Ok(Tensor {
            shape: Shape::new(&[c]),
            data: self.data[i * c..(i + 1) * c].to_vec(),
        })
    }

    /// Concatenates tensors along `axis`. All other dimensions must agree.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor list is empty, ranks differ, the axis
    /// is out of range, or non-axis dimensions disagree.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
        // outer = product of dims before axis; inner = product after.
        let (out_dims, outer, inner) = Tensor::concat_dims(tensors, axis)?;
        let mut data = Vec::with_capacity(out_dims.iter().product());
        for o in 0..outer {
            for t in tensors {
                let a = t.dims()[axis];
                let start = o * a * inner;
                data.extend_from_slice(&t.data[start..start + a * inner]);
            }
        }
        Tensor::from_vec(data, &out_dims)
    }

    /// Splits a tensor into pieces along `axis` with the given sizes
    /// (inverse of [`Tensor::concat`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the sizes do not sum to the axis length.
    pub fn split(&self, axis: usize, sizes: &[usize]) -> Result<Vec<Tensor>> {
        let rank = self.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let total: usize = sizes.iter().sum();
        if total != self.dims()[axis] {
            return Err(TensorError::InvalidArgument(format!(
                "split sizes sum to {total}, axis has {}",
                self.dims()[axis]
            )));
        }
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let axis_len = self.dims()[axis];
        let mut out = Vec::with_capacity(sizes.len());
        let mut offset = 0usize;
        for &sz in sizes {
            let mut dims = self.dims().to_vec();
            dims[axis] = sz;
            let mut data = Vec::with_capacity(outer * sz * inner);
            for o in 0..outer {
                let start = (o * axis_len + offset) * inner;
                data.extend_from_slice(&self.data[start..start + sz * inner]);
            }
            out.push(Tensor::from_vec(data, &dims)?);
            offset += sz;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Elementwise maps
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
                left: self.dims().to_vec(),
                // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
                right: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element, returning a new tensor.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Adds a rank-1 bias to each row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatch.
    // darlint: cold — owned-output twin of add_row_broadcast_assign; steady-state inference mutates workspace buffers in place
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if bias.rank() != 1 || bias.len() != c {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: bias.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        for i in 0..r {
            for j in 0..c {
                out.data[i * c + j] += bias.data[j];
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Buffer-reusing (`_into`) variants — the zero-alloc inference path
    // ------------------------------------------------------------------

    /// Validates that `out` has exactly this tensor's shape.
    fn check_same_shape(&self, out: &Tensor) -> Result<()> {
        if self.shape != out.shape {
            return Err(TensorError::ShapeMismatch {
                // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
                left: self.dims().to_vec(),
                // darlint: allow(hot-alloc) — error construction on the cold mismatch branch
                right: out.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Copies this tensor's elements into a same-shaped `out` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    // darlint: hot
    pub fn copy_into(&self, out: &mut Tensor) -> Result<()> {
        self.check_same_shape(out)?;
        out.data.copy_from_slice(&self.data);
        Ok(())
    }

    /// [`Tensor::map`] writing into a caller-provided same-shaped buffer;
    /// bitwise identical to the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    // darlint: hot
    pub fn map_into<F: Fn(f32) -> f32>(&self, f: F, out: &mut Tensor) -> Result<()> {
        self.check_same_shape(out)?;
        for (o, &v) in out.data.iter_mut().zip(&self.data) {
            *o = f(v);
        }
        Ok(())
    }

    /// [`Tensor::add`] writing into a caller-provided same-shaped buffer;
    /// bitwise identical to the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if any shape differs.
    // darlint: hot
    pub fn add_into(&self, other: &Tensor, out: &mut Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        self.check_same_shape(out)?;
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a + b;
        }
        Ok(())
    }

    /// [`Tensor::mul`] writing into a caller-provided same-shaped buffer;
    /// bitwise identical to the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if any shape differs.
    // darlint: hot
    pub fn mul_into(&self, other: &Tensor, out: &mut Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        self.check_same_shape(out)?;
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a * b;
        }
        Ok(())
    }

    /// In-place [`Tensor::add_row_broadcast`]: adds a rank-1 bias to each
    /// row of this rank-2 tensor without allocating; bitwise identical to
    /// the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatch.
    // darlint: hot
    pub fn add_row_broadcast_assign(&mut self, bias: &Tensor) -> Result<()> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if bias.rank() != 1 || bias.len() != c {
            return Err(TensorError::ShapeMismatch {
                // darlint: allow(hot-alloc) — error path, never taken warm
                left: self.dims().to_vec(),
                // darlint: allow(hot-alloc) — error path, never taken warm
                right: bias.dims().to_vec(),
            });
        }
        for i in 0..r {
            for j in 0..c {
                self.data[i * c + j] += bias.data[j];
            }
        }
        Ok(())
    }

    /// [`Tensor::concat`] writing into a caller-provided buffer of the
    /// concatenated shape; bitwise identical to the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::concat`], plus
    /// [`TensorError::ShapeMismatch`] if `out` does not have the
    /// concatenated shape.
    // darlint: hot
    pub fn concat_into(tensors: &[&Tensor], axis: usize, out: &mut Tensor) -> Result<()> {
        let (axis_total, outer, inner) = Tensor::concat_strides(tensors, axis)?;
        let first = tensors[0];
        let shape_ok = out.rank() == first.rank()
            && out
                .dims()
                .iter()
                .zip(first.dims())
                .enumerate()
                .all(|(d, (&o, &f))| if d == axis { o == axis_total } else { o == f });
        if !shape_ok {
            // darlint: allow(hot-alloc) — error path, never taken warm
            let mut want = first.dims().to_vec();
            want[axis] = axis_total;
            return Err(TensorError::ShapeMismatch {
                // darlint: allow(hot-alloc) — error path, never taken warm
                left: out.dims().to_vec(),
                right: want,
            });
        }
        let mut offset = 0usize;
        for o in 0..outer {
            for t in tensors {
                let a = t.dims()[axis];
                let start = o * a * inner;
                let len = a * inner;
                out.data[offset..offset + len].copy_from_slice(&t.data[start..start + len]);
                offset += len;
            }
        }
        Ok(())
    }

    /// Validates a concat argument list and returns the output dims plus
    /// the outer/inner strides (allocating variant, for [`Tensor::concat`]).
    fn concat_dims(tensors: &[&Tensor], axis: usize) -> Result<(Vec<usize>, usize, usize)> {
        let (axis_total, outer, inner) = Tensor::concat_strides(tensors, axis)?;
        let mut out_dims = tensors[0].dims().to_vec();
        out_dims[axis] = axis_total;
        Ok((out_dims, outer, inner))
    }

    /// Validates a concat argument list without allocating: returns the
    /// total length along `axis` plus the outer/inner strides. The
    /// zero-alloc [`Tensor::concat_into`] builds on this.
    // darlint: hot
    fn concat_strides(tensors: &[&Tensor], axis: usize) -> Result<(usize, usize, usize)> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut axis_total = 0usize;
        for t in tensors {
            if t.rank() != rank {
                return Err(TensorError::RankMismatch {
                    expected: rank,
                    actual: t.rank(),
                });
            }
            for (d, (&a, &b)) in first.dims().iter().zip(t.dims()).enumerate() {
                if d != axis && a != b {
                    return Err(TensorError::ShapeMismatch {
                        // darlint: allow(hot-alloc) — error path, never taken warm
                        left: first.dims().to_vec(),
                        // darlint: allow(hot-alloc) — error path, never taken warm
                        right: t.dims().to_vec(),
                    });
                }
            }
            axis_total += t.dims()[axis];
        }
        let outer: usize = first.dims()[..axis].iter().product();
        let inner: usize = first.dims()[axis + 1..].iter().product();
        Ok((axis_total, outer, inner))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flat data (first on ties).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Sum of squares of all elements.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// L2 (Euclidean) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Sums a rank-2 tensor over axis 0, producing a rank-1 tensor of column
    /// sums.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn sum_axis0(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c]);
        for i in 0..r {
            for j in 0..c {
                out.data[j] += self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Whether all elements are finite (no NaN/inf). Useful as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.dims())?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_into_variants_match_allocating() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.25], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 4.0, -1.0, 2.0], &[2, 2]).unwrap();
        let mut out = Tensor::full(&[2, 2], 9.0); // stale contents

        a.copy_into(&mut out).unwrap();
        assert_eq!(out, a);

        a.map_into(|v| v * v + 1.0, &mut out).unwrap();
        assert_eq!(out, a.map(|v| v * v + 1.0));

        a.add_into(&b, &mut out).unwrap();
        assert_eq!(out, a.add(&b).unwrap());

        a.mul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.mul(&b).unwrap());

        let mut shape_err = Tensor::zeros(&[4]);
        assert!(a.copy_into(&mut shape_err).is_err());
        assert!(a.add_into(&b, &mut shape_err).is_err());
    }

    #[test]
    fn add_row_broadcast_assign_matches_allocating() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32 * 0.5).collect(), &[3, 4]).unwrap();
        let bias = Tensor::from_vec(vec![1.0, -1.0, 0.25, 2.0], &[4]).unwrap();
        let expected = x.add_row_broadcast(&bias).unwrap();
        let mut y = x.clone();
        y.add_row_broadcast_assign(&bias).unwrap();
        assert_eq!(y, expected);
        let wrong = Tensor::zeros(&[3]);
        assert!(y.add_row_broadcast_assign(&wrong).is_err());
    }

    #[test]
    fn concat_into_matches_allocating() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..18).map(|v| -(v as f32)).collect(), &[2, 3, 3]).unwrap();
        let expected = Tensor::concat(&[&a, &b], 1).unwrap();
        let mut out = Tensor::full(expected.dims(), 55.0);
        Tensor::concat_into(&[&a, &b], 1, &mut out).unwrap();
        assert_eq!(out, expected);

        let mut bad = Tensor::zeros(&[2, 4, 3]);
        assert!(Tensor::concat_into(&[&a, &b], 1, &mut bad).is_err());
    }

    #[test]
    fn constructors_produce_expected_values() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::scalar(7.0).rank(), 0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]), Some(9.0));
        assert_eq!(t.get(&[2, 0]), None);
        assert!(t.set(&[0, 3], 1.0).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2d().unwrap().transpose2d().unwrap();
        assert_eq!(t, tt);
        let tr = t.transpose2d().unwrap();
        assert_eq!(tr.get(&[2, 1]), Some(6.0));
    }

    #[test]
    fn add_sub_mul_follow_elementwise_semantics() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10.0, 40.0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a.clone().add_assign(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn reductions_match_hand_computation() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), Some(2));
        assert!((t.norm() - (1.0f32 + 4.0 + 9.0 + 0.25).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sum_axis0_sums_columns() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis0().unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax_rows_returns_per_row_winner() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = x.add_row_broadcast(&b).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_axis1_interleaves_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]).unwrap();
        let c = Tensor::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn split_inverts_concat() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]).unwrap();
        let parts = a.split(1, &[1, 2]).unwrap();
        let back = Tensor::concat(&[&parts[0], &parts[1]], 1).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn concat_rejects_mismatched_non_axis_dims() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[3, 1]);
        assert!(Tensor::concat(&[&a, &b], 1).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
