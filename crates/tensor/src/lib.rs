//! # darnet-tensor
//!
//! A small, dependency-light, row-major `f32` tensor library that serves as
//! the numerical substrate for the DarNet reproduction. It provides exactly
//! what the `darnet-nn` neural-network layers need:
//!
//! * an n-dimensional [`Tensor`] with shape/stride bookkeeping,
//! * elementwise arithmetic with scalar and tensor operands,
//! * reductions (sum, mean, max, argmax) over all elements or one axis,
//! * a cache-friendly [`matmul`](Tensor::matmul) kernel,
//! * [`im2col`]/[`col2im`] lowering used by convolution forward/backward,
//! * max/average pooling kernels,
//! * deterministic weight initialisation helpers,
//! * a [`Parallelism`] policy that chunk-parallelizes the matmul, `im2col`,
//!   and pooling kernels over scoped threads with bitwise-identical results,
//! * a [`Workspace`] buffer pool and `_into` kernel variants that write into
//!   checked-out buffers, making steady-state inference allocation-free
//!   after warm-up (see [`workspace`](crate::Workspace)).
//!
//! The library intentionally trades generality for auditability: everything
//! is plain safe Rust over a `Vec<f32>`, so every numerical routine can be
//! unit-tested against hand-computed values and finite differences.
//!
//! ## Example
//!
//! ```
//! use darnet_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), darnet_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

mod conv;
mod error;
mod init;
mod matmul;
mod parallel;
mod pool;
mod shape;
mod tensor;
mod workspace;

pub use conv::{col2im, im2col, im2col_into, im2col_with, Conv2dSpec};
pub use error::TensorError;
pub use init::{he_normal, uniform_init, xavier_uniform, SplitMix64};
pub use parallel::Parallelism;
pub use pool::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_into, avg_pool2d_with, max_pool2d,
    max_pool2d_backward, max_pool2d_into, max_pool2d_with, PoolSpec,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{TensorView, Workspace};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
