//! Deterministic weight initialisation.
//!
//! Training runs in this reproduction must be exactly repeatable, so all
//! randomness flows through the tiny [`SplitMix64`] generator seeded
//! explicitly by the caller. The initialisation schemes follow the usual
//! conventions: Xavier/Glorot for tanh/sigmoid layers, He for ReLU layers.

use crate::tensor::Tensor;

/// A tiny, fast, deterministic PRNG (SplitMix64), adequate for weight
/// initialisation and data synthesis where statistical quality requirements
/// are modest and reproducibility is paramount.
///
/// ```
/// use darnet_tensor::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Avoid log(0) by clamping away from zero.
        let u1 = self.next_f32().max(1e-7);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_usize requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator from this one (useful for giving
    /// each component its own stream).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Xavier/Glorot uniform initialisation for a tensor with the given fan-in
/// and fan-out: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut SplitMix64,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(-bound, bound);
    }
    t
}

/// He (Kaiming) normal initialisation: `N(0, sqrt(2/fan_in))`. Appropriate
/// before ReLU nonlinearities.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut SplitMix64) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.normal() * std;
    }
    t
}

/// Plain uniform initialisation in `[lo, hi)`.
pub fn uniform_init(dims: &[usize], lo: f32, hi: f32, rng: &mut SplitMix64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(lo, hi);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xavier_bound_is_respected() {
        let mut rng = SplitMix64::new(9);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Not all zeros.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = SplitMix64::new(10);
        let wide = he_normal(&[1000], 1000, &mut rng);
        let narrow = he_normal(&[1000], 10, &mut rng);
        // Std of narrow init should be ~10x larger.
        let std_w = (wide.sum_squares() / 1000.0).sqrt();
        let std_n = (narrow.sum_squares() / 1000.0).sqrt();
        assert!(std_n > std_w * 5.0, "{std_n} vs {std_w}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SplitMix64::new(1);
        let mut c = a.fork();
        // Forked stream differs from the parent's continuation.
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
