//! Reusable buffer arena backing the zero-alloc inference path.
//!
//! Steady-state inference repeats the same sequence of kernel calls with
//! the same shapes on every batch, so the buffers those kernels need can
//! be planned once and reused forever. A [`Workspace`] is a size-keyed
//! pool of `f32` buffers with **checkout/restore** semantics:
//!
//! * [`Workspace::checkout`] hands out a zero-filled [`TensorView`] of the
//!   requested shape, reusing a pooled buffer when one fits (no heap
//!   allocation) and allocating only on a cold miss;
//! * [`Workspace::restore`] hands the view's buffer back to the pool so
//!   the next checkout of a compatible size reuses it.
//!
//! After one warm-up call at a given batch shape the pool holds every
//! buffer the call sequence needs, and subsequent calls allocate nothing.
//! Dropping a view instead of restoring it is safe — it merely forfeits
//! the reuse (the buffer is freed like any other `Vec`).
//!
//! Checked-out buffers are always zero-filled, so a reused buffer is
//! indistinguishable from a freshly allocated `Tensor::zeros` and stale
//! data can never leak between checkouts. Zeroing a warm buffer is a
//! plain `memset`, strictly cheaper than the allocate-and-zero it
//! replaces.

use std::collections::BTreeMap;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// A tensor whose backing storage is on loan from a [`Workspace`].
///
/// Structurally this is a plain [`Tensor`] — every tensor operation works
/// on it unchanged. The alias marks, in signatures, values that should be
/// handed back via [`Workspace::restore`] once the caller is done, so the
/// buffer returns to the pool instead of being freed.
pub type TensorView = Tensor;

/// A size-keyed pool of reusable `f32` buffers (see the [module
/// docs](self)).
#[derive(Debug, Default)]
pub struct Workspace {
    /// Free buffers bucketed by capacity; `BTreeMap` so a checkout can
    /// take the smallest buffer that fits.
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    /// Recycled dimension vectors so [`Workspace::checkout`] never
    /// allocates shape bookkeeping in steady state either.
    dims: Vec<Vec<usize>>,
    hits: u64,
    misses: u64,
}

/// Dimension vectors are pre-sized so checkouts of any realistic rank
/// (this codebase tops out at rank 4) reuse them without regrowth.
const MIN_DIMS_CAPACITY: usize = 8;

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Checks out a zero-filled tensor of shape `dims`.
    ///
    /// Reuses a pooled buffer when one with sufficient capacity exists;
    /// allocates otherwise (a *cold miss*, counted by
    /// [`Workspace::cold_misses`]).
    pub fn checkout(&mut self, dims: &[usize]) -> TensorView {
        let mut d = self
            .dims
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(dims.len().max(MIN_DIMS_CAPACITY)));
        d.clear();
        d.extend_from_slice(dims);
        let shape = Shape::from(d);
        let data = self.take(shape.len());
        Tensor::from_pooled(shape, data)
    }

    /// Returns a view's buffer (and shape bookkeeping) to the pool for
    /// reuse.
    pub fn restore(&mut self, view: TensorView) {
        let (shape, data) = view.into_parts();
        let d = shape.into_dims();
        if d.capacity() > 0 {
            self.dims.push(d);
        }
        self.recycle(data);
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing the
    /// smallest pooled buffer whose capacity fits.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let key = self
            .free
            .range(len..)
            .find(|(_, bucket)| !bucket.is_empty())
            .map(|(&cap, _)| cap);
        if let Some(cap) = key {
            if let Some(mut buf) = self.free.get_mut(&cap).and_then(Vec::pop) {
                self.hits += 1;
                buf.clear();
                buf.resize(len, 0.0);
                return buf;
            }
        }
        self.misses += 1;
        vec![0.0f32; len]
    }

    /// Hands a raw buffer back to the pool. Zero-capacity buffers are
    /// dropped (there is nothing to reuse).
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.free.entry(buf.capacity()).or_default().push(buf);
    }

    /// Number of checkouts served from the pool without allocating.
    pub fn pool_hits(&self) -> u64 {
        self.hits
    }

    /// Number of checkouts that had to allocate (cold path). Constant
    /// across calls once the workspace is warm.
    pub fn cold_misses(&self) -> u64 {
        self.misses
    }

    /// Number of buffers currently resting in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Total capacity (in `f32` elements) currently resting in the pool.
    pub fn pooled_elems(&self) -> usize {
        self.free
            .iter()
            .map(|(cap, bucket)| cap * bucket.len())
            .sum()
    }

    /// Frees every pooled buffer and resets the hit/miss counters.
    pub fn reset(&mut self) {
        self.free.clear();
        self.dims.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zero_filled_and_shaped() {
        let mut ws = Workspace::new();
        let t = ws.checkout(&[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.data(), &[0.0; 6]);
        assert_eq!(ws.cold_misses(), 1);
    }

    #[test]
    fn restore_then_checkout_reuses_the_buffer() {
        let mut ws = Workspace::new();
        let mut t = ws.checkout(&[4, 4]);
        t.data_mut().fill(7.0);
        ws.restore(t);
        assert_eq!(ws.pooled_buffers(), 1);
        let t2 = ws.checkout(&[4, 4]);
        // Reused (no new miss) and re-zeroed: stale 7.0s never leak.
        assert_eq!(ws.cold_misses(), 1);
        assert_eq!(ws.pool_hits(), 1);
        assert_eq!(t2.data(), &[0.0; 16]);
        assert_eq!(ws.pooled_buffers(), 0);
    }

    #[test]
    fn smaller_checkout_reuses_larger_buffer() {
        let mut ws = Workspace::new();
        let t = ws.checkout(&[10]);
        ws.restore(t);
        let small = ws.checkout(&[3]);
        assert_eq!(ws.cold_misses(), 1, "10-elem buffer serves the 3-elem ask");
        assert_eq!(small.len(), 3);
        assert_eq!(small.data(), &[0.0; 3]);
    }

    #[test]
    fn larger_checkout_allocates_fresh() {
        let mut ws = Workspace::new();
        let t = ws.checkout(&[3]);
        ws.restore(t);
        let big = ws.checkout(&[10]);
        assert_eq!(ws.cold_misses(), 2);
        assert_eq!(big.len(), 10);
        // The too-small buffer stays pooled for a future fit.
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn steady_state_stops_allocating() {
        let mut ws = Workspace::new();
        // Warm-up: the call pattern needs two concurrent buffers.
        let a = ws.checkout(&[8]);
        let b = ws.checkout(&[8]);
        ws.restore(a);
        ws.restore(b);
        let cold = ws.cold_misses();
        for _ in 0..10 {
            let a = ws.checkout(&[8]);
            let b = ws.checkout(&[8]);
            ws.restore(a);
            ws.restore(b);
        }
        assert_eq!(ws.cold_misses(), cold, "warm workspace must not allocate");
    }

    #[test]
    fn reset_drops_the_pool() {
        let mut ws = Workspace::new();
        let t = ws.checkout(&[5]);
        ws.restore(t);
        assert!(ws.pooled_elems() >= 5);
        ws.reset();
        assert_eq!(ws.pooled_buffers(), 0);
        assert_eq!(ws.cold_misses(), 0);
    }

    #[test]
    fn empty_shapes_are_fine() {
        let mut ws = Workspace::new();
        let t = ws.checkout(&[0, 4]);
        assert_eq!(t.len(), 0);
        ws.restore(t);
    }
}
