//! Property-based tests for tensor algebra invariants.

use darnet_tensor::{col2im, im2col, Conv2dSpec, SplitMix64, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #[test]
    fn addition_commutes(data in tensor_strategy(64)) {
        let n = data.len();
        let a = Tensor::from_vec(data.clone(), &[n]).unwrap();
        let b = a.map(|v| v * 0.5 - 1.0);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn scale_distributes_over_addition(data in tensor_strategy(64), s in -10.0f32..10.0) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        let b = a.map(|v| v.sin());
        let lhs = a.add(&b).unwrap().scale(s);
        let rhs = a.scale(s).add(&b.scale(s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-3 + 1e-4 * x.abs());
        }
    }

    #[test]
    fn identity_matmul_is_neutral(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Tensor::zeros(&[rows, cols]);
        for v in a.data_mut() { *v = rng.uniform(-5.0, 5.0); }
        let out = a.matmul(&Tensor::eye(cols)).unwrap();
        prop_assert_eq!(out, a);
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Tensor::zeros(&[rows, cols]);
        for v in a.data_mut() { *v = rng.uniform(-5.0, 5.0); }
        prop_assert_eq!(a.transpose2d().unwrap().transpose2d().unwrap(), a);
    }

    #[test]
    fn concat_split_roundtrip(outer in 1usize..4, a in 1usize..4, b in 1usize..4, inner in 1usize..4) {
        let ta = Tensor::full(&[outer, a, inner], 1.0);
        let tb = Tensor::full(&[outer, b, inner], 2.0);
        let cat = Tensor::concat(&[&ta, &tb], 1).unwrap();
        let parts = cat.split(1, &[a, b]).unwrap();
        prop_assert_eq!(&parts[0], &ta);
        prop_assert_eq!(&parts[1], &tb);
    }

    #[test]
    fn sum_is_linear(data in tensor_strategy(64), s in -4.0f32..4.0) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        let scaled_sum = a.scale(s).sum();
        prop_assert!((scaled_sum - s * a.sum()).abs() < 1e-2 * (1.0 + scaled_sum.abs()));
    }

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..200, h in 3usize..7, w in 3usize..7) {
        let spec = Conv2dSpec::square(2, 1, 3, 1, 1);
        let mut rng = SplitMix64::new(seed);
        let mut x = Tensor::zeros(&[1, 2, h, w]);
        for v in x.data_mut() { *v = rng.uniform(-1.0, 1.0); }
        let cols = im2col(&x, &spec).unwrap();
        let mut y = Tensor::zeros(cols.dims());
        for v in y.data_mut() { *v = rng.uniform(-1.0, 1.0); }
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let back = col2im(&y, &spec, 1, h, w).unwrap();
        let rhs: f32 = x.mul(&back).unwrap().sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn argmax_points_at_max(data in tensor_strategy(64)) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        let idx = a.argmax().unwrap();
        prop_assert_eq!(a.data()[idx], a.max());
    }

    #[test]
    fn serde_roundtrip(data in tensor_strategy(32)) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        // serde_json is unavailable offline; roundtrip through the data
        // accessor instead, which is the serialization contract.
        let b = Tensor::from_vec(a.data().to_vec(), a.dims()).unwrap();
        prop_assert_eq!(a, b);
    }
}
