//! Property-based tests for tensor algebra invariants.

use darnet_tensor::{
    avg_pool2d, avg_pool2d_with, col2im, im2col, im2col_with, max_pool2d, max_pool2d_with,
    Conv2dSpec, Parallelism, PoolSpec, SplitMix64, Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

fn random_tensor(dims: &[usize], rng: &mut SplitMix64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(-2.0, 2.0);
    }
    t
}

/// A handle that always fans out: `min_work(1)` defeats the serial
/// fallback so even tiny proptest shapes exercise the threaded path.
fn forced(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_min_work(1)
}

proptest! {
    #[test]
    fn addition_commutes(data in tensor_strategy(64)) {
        let n = data.len();
        let a = Tensor::from_vec(data.clone(), &[n]).unwrap();
        let b = a.map(|v| v * 0.5 - 1.0);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn scale_distributes_over_addition(data in tensor_strategy(64), s in -10.0f32..10.0) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        let b = a.map(|v| v.sin());
        let lhs = a.add(&b).unwrap().scale(s);
        let rhs = a.scale(s).add(&b.scale(s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-3 + 1e-4 * x.abs());
        }
    }

    #[test]
    fn identity_matmul_is_neutral(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Tensor::zeros(&[rows, cols]);
        for v in a.data_mut() { *v = rng.uniform(-5.0, 5.0); }
        let out = a.matmul(&Tensor::eye(cols)).unwrap();
        prop_assert_eq!(out, a);
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Tensor::zeros(&[rows, cols]);
        for v in a.data_mut() { *v = rng.uniform(-5.0, 5.0); }
        prop_assert_eq!(a.transpose2d().unwrap().transpose2d().unwrap(), a);
    }

    #[test]
    fn concat_split_roundtrip(outer in 1usize..4, a in 1usize..4, b in 1usize..4, inner in 1usize..4) {
        let ta = Tensor::full(&[outer, a, inner], 1.0);
        let tb = Tensor::full(&[outer, b, inner], 2.0);
        let cat = Tensor::concat(&[&ta, &tb], 1).unwrap();
        let parts = cat.split(1, &[a, b]).unwrap();
        prop_assert_eq!(&parts[0], &ta);
        prop_assert_eq!(&parts[1], &tb);
    }

    #[test]
    fn sum_is_linear(data in tensor_strategy(64), s in -4.0f32..4.0) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        let scaled_sum = a.scale(s).sum();
        prop_assert!((scaled_sum - s * a.sum()).abs() < 1e-2 * (1.0 + scaled_sum.abs()));
    }

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..200, h in 3usize..7, w in 3usize..7) {
        let spec = Conv2dSpec::square(2, 1, 3, 1, 1);
        let mut rng = SplitMix64::new(seed);
        let mut x = Tensor::zeros(&[1, 2, h, w]);
        for v in x.data_mut() { *v = rng.uniform(-1.0, 1.0); }
        let cols = im2col(&x, &spec).unwrap();
        let mut y = Tensor::zeros(cols.dims());
        for v in y.data_mut() { *v = rng.uniform(-1.0, 1.0); }
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let back = col2im(&y, &spec, 1, h, w).unwrap();
        let rhs: f32 = x.mul(&back).unwrap().sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn argmax_points_at_max(data in tensor_strategy(64)) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        let idx = a.argmax().unwrap();
        prop_assert_eq!(a.data()[idx], a.max());
    }

    #[test]
    fn parallel_matmul_is_bitwise_serial(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        threads in 2usize..9, seed in 0u64..500,
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = random_tensor(&[m, k], &mut rng);
        let b = random_tensor(&[k, n], &mut rng);
        let par = forced(threads);
        prop_assert_eq!(
            a.matmul_with(&b, &par).unwrap(),
            a.matmul(&b).unwrap()
        );
        let bt = random_tensor(&[n, k], &mut rng);
        prop_assert_eq!(
            a.matmul_transpose_b_with(&bt, &par).unwrap(),
            a.matmul_transpose_b(&bt).unwrap()
        );
        let at = random_tensor(&[k, m], &mut rng);
        prop_assert_eq!(
            at.matmul_transpose_a_with(&b, &par).unwrap(),
            at.matmul_transpose_a(&b).unwrap()
        );
    }

    #[test]
    fn parallel_im2col_is_bitwise_serial(
        b in 1usize..3, c in 1usize..3, h in 3usize..8, w in 3usize..8,
        kernel in 1usize..4, threads in 2usize..9, seed in 0u64..500,
    ) {
        let spec = Conv2dSpec::square(c, 1, kernel, 1, kernel / 2);
        let mut rng = SplitMix64::new(seed);
        let x = random_tensor(&[b, c, h, w], &mut rng);
        prop_assert_eq!(
            im2col_with(&x, &spec, &forced(threads)).unwrap(),
            im2col(&x, &spec).unwrap()
        );
    }

    #[test]
    fn parallel_pooling_is_bitwise_serial(
        b in 1usize..3, c in 1usize..4, h in 2usize..9, w in 2usize..9,
        window in 2usize..4, stride in 1usize..3,
        threads in 2usize..9, seed in 0u64..500,
    ) {
        let window = window.min(h).min(w);
        let spec = PoolSpec::new(window, stride);
        let mut rng = SplitMix64::new(seed);
        let x = random_tensor(&[b, c, h, w], &mut rng);
        let par = forced(threads);
        let (out_p, arg_p) = max_pool2d_with(&x, &spec, &par).unwrap();
        let (out_s, arg_s) = max_pool2d(&x, &spec).unwrap();
        prop_assert_eq!(out_p, out_s);
        prop_assert_eq!(arg_p, arg_s);
        prop_assert_eq!(
            avg_pool2d_with(&x, &spec, &par).unwrap(),
            avg_pool2d(&x, &spec).unwrap()
        );
    }

    #[test]
    fn serde_roundtrip(data in tensor_strategy(32)) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        // serde_json is unavailable offline; roundtrip through the data
        // accessor instead, which is the serialization contract.
        let b = Tensor::from_vec(a.data().to_vec(), a.dims()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn into_products_are_bitwise_allocating(
        m in 1usize..7, k in 1usize..7, n in 1usize..7,
        threads in 1usize..6, seed in 0u64..500,
    ) {
        use darnet_tensor::Workspace;
        let mut rng = SplitMix64::new(seed);
        let a = random_tensor(&[m, k], &mut rng);
        let b = random_tensor(&[k, n], &mut rng);
        let bt = random_tensor(&[n, k], &mut rng);
        let par = forced(threads);
        let mut ws = Workspace::new();

        let mut out = ws.checkout(&[m, n]);
        out.data_mut().fill(f32::NAN); // stale garbage must not survive
        a.matmul_into(&b, &par, &mut out).unwrap();
        prop_assert_eq!(&out, &a.matmul_with(&b, &par).unwrap());
        ws.restore(out);

        let mut out = ws.checkout(&[m, n]);
        a.matmul_transpose_b_into(&bt, &par, &mut out).unwrap();
        prop_assert_eq!(&out, &a.matmul_transpose_b_with(&bt, &par).unwrap());
        ws.restore(out);

        // a viewed as [k, m] stored: use a fresh [k, m] operand.
        let akm = random_tensor(&[k, m], &mut rng);
        let akn = random_tensor(&[k, n], &mut rng);
        let mut out = ws.checkout(&[m, n]);
        out.data_mut().fill(1e30);
        akm.matmul_transpose_a_into(&akn, &par, &mut out).unwrap();
        prop_assert_eq!(&out, &akm.matmul_transpose_a_with(&akn, &par).unwrap());
        ws.restore(out);
    }

    #[test]
    fn workspace_reuse_never_leaks_stale_data(
        shapes in prop::collection::vec((1usize..6, 1usize..6), 3..8),
        rounds in 2usize..5,
    ) {
        use darnet_tensor::Workspace;
        let mut ws = Workspace::new();
        // Cycle through several different shapes, dirtying every buffer
        // before restoring it: each checkout must come back zero-filled.
        for _ in 0..rounds {
            for &(r, c) in &shapes {
                let mut t = ws.checkout(&[r, c]);
                prop_assert_eq!(t.dims(), &[r, c]);
                prop_assert!(t.data().iter().all(|&v| v == 0.0),
                    "stale data leaked into a checkout");
                t.data_mut().fill(f32::NAN);
                ws.restore(t);
            }
        }
        // Warm steady state: a second identical pass allocates nothing new.
        let misses = ws.cold_misses();
        for &(r, c) in &shapes {
            let t = ws.checkout(&[r, c]);
            ws.restore(t);
        }
        prop_assert_eq!(ws.cold_misses(), misses);
    }
}
