//! A sequential container of boxed layers.

use darnet_tensor::{Tensor, TensorView, Workspace};

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::Result;

/// A feed-forward stack of layers executed in order.
///
/// `Sequential` is itself a [`Layer`], so blocks can nest.
///
/// ```
/// use darnet_nn::{Dense, Layer, Mode, Relu, Sequential};
/// use darnet_tensor::{SplitMix64, Tensor};
///
/// let mut rng = SplitMix64::new(1);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 4, &mut rng));
/// net.push(Relu::new());
/// let y = net.forward(&Tensor::zeros(&[1, 4]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[1, 4]);
/// # Ok::<(), darnet_nn::NnError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the stack.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order, for diagnostics.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layer_names())
            .finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        // The first layer reads the caller's input directly; cloning it up
        // front would be a wasted allocation on every forward pass.
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return Ok(input.clone());
        };
        let mut x = first.forward(input, mode)?;
        for layer in layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            let mut out = ws.checkout(input.dims());
            input.copy_into(&mut out)?;
            return Ok(out);
        };
        let mut x = first.forward_into(input, mode, ws)?;
        for layer in layers {
            let y = layer.forward_into(&x, mode, ws)?;
            ws.restore(x);
            x = y;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn set_parallelism(&mut self, par: darnet_tensor::Parallelism) {
        for layer in &mut self.layers {
            layer.set_parallelism(par);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Relu;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::{Optimizer, Sgd};
    use darnet_tensor::SplitMix64;

    #[test]
    fn forward_composes_layers_in_order() {
        let mut rng = SplitMix64::new(1);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, &mut rng));
        assert_eq!(net.len(), 3);
        let y = net.forward(&Tensor::zeros(&[4, 3]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(net.layer_names(), vec!["Dense", "Relu", "Dense"]);
    }

    #[test]
    fn mlp_learns_xor() {
        // The classic non-linearly-separable sanity check: a 2-layer MLP
        // must drive XOR loss close to zero.
        let mut rng = SplitMix64::new(1234);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut rng));

        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap();
        let labels = [0usize, 1, 1, 0];
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            let logits = net.forward(&x, Mode::Train).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            net.backward(&grad).unwrap();
            opt.step(&mut net.params_mut()).unwrap();
            last_loss = loss;
        }
        assert!(last_loss < 0.05, "XOR loss did not converge: {last_loss}");
        let logits = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(logits.argmax_rows().unwrap(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn params_aggregates_all_layers() {
        let mut rng = SplitMix64::new(2);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut rng));
        net.push(Dense::new(2, 2, &mut rng));
        assert_eq!(net.params_mut().len(), 4);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(net.forward(&x, Mode::Eval).unwrap(), x);
        assert_eq!(net.backward(&x).unwrap(), x);
    }
}
