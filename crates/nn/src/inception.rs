//! Inception block: parallel 1×1 / 3×3 / 5×5 / pool-projection branches
//! concatenated along the channel axis.
//!
//! DarNet's frame classifier is Inception-V3; this reproduction uses the
//! same structural idea (Szegedy et al.'s "network in network" parallel
//! branches, motivated by the Hebbian principle the paper cites) at a CPU-
//! trainable scale.

use darnet_tensor::{Parallelism, SplitMix64, Tensor, TensorView, Workspace};

use crate::conv::Conv2d;
use crate::error::NnError;
use crate::layer::{join_worker, Layer, Mode, Relu};
use crate::param::Param;
use crate::pool::MaxPool2d;
use crate::Result;

/// Channel allocation for one inception block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InceptionChannels {
    /// Output channels of the 1×1 branch.
    pub c1: usize,
    /// Reduction channels feeding the 3×3 branch.
    pub c3_reduce: usize,
    /// Output channels of the 3×3 branch.
    pub c3: usize,
    /// Reduction channels feeding the 5×5 branch.
    pub c5_reduce: usize,
    /// Output channels of the 5×5 branch.
    pub c5: usize,
    /// Output channels of the pool-projection branch.
    pub pool_proj: usize,
}

impl InceptionChannels {
    /// Total output channels of the block.
    pub fn total(&self) -> usize {
        self.c1 + self.c3 + self.c5 + self.pool_proj
    }
}

/// Pads the spatial dims of a `[b, c, h, w]` tensor with one ring of
/// `value`.
fn pad_spatial(input: &Tensor, pad: usize, value: f32) -> Result<Tensor> {
    let d = input.dims();
    let (b, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (nh, nw) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::full(&[b, c, nh, nw], value);
    let od = out.data_mut();
    let id = input.data();
    for n in 0..b {
        for ch in 0..c {
            for y in 0..h {
                let src = ((n * c + ch) * h + y) * w;
                let dst = ((n * c + ch) * nh + y + pad) * nw + pad;
                od[dst..dst + w].copy_from_slice(&id[src..src + w]);
            }
        }
    }
    Ok(out)
}

/// [`pad_spatial`] writing into a caller-provided `[b, c, h+2p, w+2p]`
/// buffer.
// darlint: hot
fn pad_spatial_into(input: &Tensor, pad: usize, value: f32, out: &mut Tensor) -> Result<()> {
    let d = input.dims();
    let (b, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (nh, nw) = (h + 2 * pad, w + 2 * pad);
    if out.dims() != [b, c, nh, nw] {
        return Err(NnError::InvalidConfig(format!(
            "pad_spatial_into: {:?} padded by {pad} into {:?} output",
            input.dims(),
            out.dims()
        )));
    }
    let od = out.data_mut();
    od.fill(value);
    let id = input.data();
    for n in 0..b {
        for ch in 0..c {
            for y in 0..h {
                let src = ((n * c + ch) * h + y) * w;
                let dst = ((n * c + ch) * nh + y + pad) * nw + pad;
                od[dst..dst + w].copy_from_slice(&id[src..src + w]);
            }
        }
    }
    Ok(())
}

/// Crops one ring of `pad` from the spatial dims (inverse of
/// [`pad_spatial`]).
fn crop_spatial(input: &Tensor, pad: usize) -> Result<Tensor> {
    let d = input.dims();
    let (b, c, nh, nw) = (d[0], d[1], d[2], d[3]);
    let (h, w) = (nh - 2 * pad, nw - 2 * pad);
    let mut out = Tensor::zeros(&[b, c, h, w]);
    let od = out.data_mut();
    let id = input.data();
    for n in 0..b {
        for ch in 0..c {
            for y in 0..h {
                let src = ((n * c + ch) * nh + y + pad) * nw + pad;
                let dst = ((n * c + ch) * h + y) * w;
                od[dst..dst + w].copy_from_slice(&id[src..src + w]);
            }
        }
    }
    Ok(out)
}

/// An inception block with four parallel branches whose outputs are
/// concatenated along the channel axis. Spatial size is preserved.
#[derive(Debug)]
pub struct InceptionBlock {
    channels: InceptionChannels,
    b1: Conv2d,
    b1_act: Relu,
    b2_reduce: Conv2d,
    b2_reduce_act: Relu,
    b2: Conv2d,
    b2_act: Relu,
    b3_reduce: Conv2d,
    b3_reduce_act: Relu,
    b3: Conv2d,
    b3_act: Relu,
    b4_pool: MaxPool2d,
    b4_proj: Conv2d,
    b4_act: Relu,
    pad_dims: Option<Vec<usize>>,
    /// Per-branch workspaces for the zero-alloc inference path: the four
    /// branches may run on scoped threads, so each needs its own pool.
    ws1: Workspace,
    ws2: Workspace,
    ws3: Workspace,
    ws4: Workspace,
    par: Parallelism,
}

impl InceptionBlock {
    /// Creates an inception block over `in_channels` input channels.
    pub fn new(in_channels: usize, channels: InceptionChannels, rng: &mut SplitMix64) -> Self {
        InceptionBlock {
            channels,
            b1: Conv2d::square(in_channels, channels.c1, 1, 1, 0, rng),
            b1_act: Relu::new(),
            b2_reduce: Conv2d::square(in_channels, channels.c3_reduce, 1, 1, 0, rng),
            b2_reduce_act: Relu::new(),
            b2: Conv2d::square(channels.c3_reduce, channels.c3, 3, 1, 1, rng),
            b2_act: Relu::new(),
            b3_reduce: Conv2d::square(in_channels, channels.c5_reduce, 1, 1, 0, rng),
            b3_reduce_act: Relu::new(),
            b3: Conv2d::square(channels.c5_reduce, channels.c5, 5, 1, 2, rng),
            b3_act: Relu::new(),
            b4_pool: MaxPool2d::new(3, 1),
            b4_proj: Conv2d::square(in_channels, channels.pool_proj, 1, 1, 0, rng),
            b4_act: Relu::new(),
            pad_dims: None,
            ws1: Workspace::new(),
            ws2: Workspace::new(),
            ws3: Workspace::new(),
            ws4: Workspace::new(),
            par: Parallelism::serial(),
        }
    }

    /// The block's channel allocation.
    pub fn channels(&self) -> &InceptionChannels {
        &self.channels
    }
}

impl Layer for InceptionBlock {
    // darlint: cold — owned-output twin of forward_into; Train mode caches branch activations and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "inception block expects rank-4 input, got {:?}",
                input.dims()
            )));
        }
        // The four branches touch disjoint fields, so with a parallel policy
        // they run on scoped threads; each branch is internally unchanged,
        // and concatenation order is fixed, so output bytes never depend on
        // the dispatch strategy.
        let InceptionBlock {
            b1,
            b1_act,
            b2_reduce,
            b2_reduce_act,
            b2,
            b2_act,
            b3_reduce,
            b3_reduce_act,
            b3,
            b3_act,
            b4_pool,
            b4_proj,
            b4_act,
            pad_dims,
            par,
            ..
        } = self;
        let mut branch1 =
            move || -> Result<Tensor> { b1_act.forward(&b1.forward(input, mode)?, mode) };
        let mut branch2 = move || -> Result<Tensor> {
            let r = b2_reduce_act.forward(&b2_reduce.forward(input, mode)?, mode)?;
            b2_act.forward(&b2.forward(&r, mode)?, mode)
        };
        let mut branch3 = move || -> Result<Tensor> {
            let r = b3_reduce_act.forward(&b3_reduce.forward(input, mode)?, mode)?;
            b3_act.forward(&b3.forward(&r, mode)?, mode)
        };
        let mut branch4 = move || -> Result<Tensor> {
            // Same-size 3×3 max pool: pad with -inf so padding never wins.
            let padded = pad_spatial(input, 1, f32::NEG_INFINITY)?;
            if mode == Mode::Train {
                *pad_dims = Some(padded.dims().to_vec());
            }
            let pooled = b4_pool.forward(&padded, mode)?;
            b4_act.forward(&b4_proj.forward(&pooled, mode)?, mode)
        };
        let (y1, y2, y3, y4) = if par.is_serial() {
            (branch1(), branch2(), branch3(), branch4())
        } else {
            std::thread::scope(|scope| {
                let h1 = scope.spawn(branch1);
                let h2 = scope.spawn(branch2);
                let h3 = scope.spawn(branch3);
                let y4 = branch4();
                (
                    join_worker(h1, "Inception branch 1"),
                    join_worker(h2, "Inception branch 2"),
                    join_worker(h3, "Inception branch 3"),
                    y4,
                )
            })
        };
        Ok(Tensor::concat(&[&y1?, &y2?, &y3?, &y4?], 1)?)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "inception block expects rank-4 input, got {:?}",
                input.dims()
            )));
        }
        // Same branch structure as `forward`, but every intermediate lives
        // in the branch's own workspace; only the concatenated result comes
        // from the caller's pool.
        let (y1, y2, y3, y4) = {
            let InceptionBlock {
                b1,
                b1_act,
                b2_reduce,
                b2_reduce_act,
                b2,
                b2_act,
                b3_reduce,
                b3_reduce_act,
                b3,
                b3_act,
                b4_pool,
                b4_proj,
                b4_act,
                ws1,
                ws2,
                ws3,
                ws4,
                par,
                ..
            } = self;
            let mut branch1 = move || -> Result<TensorView> {
                let a = b1.forward_into(input, mode, ws1)?;
                let y = b1_act.forward_into(&a, mode, ws1)?;
                ws1.restore(a);
                Ok(y)
            };
            let mut branch2 = move || -> Result<TensorView> {
                let a = b2_reduce.forward_into(input, mode, ws2)?;
                let r = b2_reduce_act.forward_into(&a, mode, ws2)?;
                ws2.restore(a);
                let c = b2.forward_into(&r, mode, ws2)?;
                ws2.restore(r);
                let y = b2_act.forward_into(&c, mode, ws2)?;
                ws2.restore(c);
                Ok(y)
            };
            let mut branch3 = move || -> Result<TensorView> {
                let a = b3_reduce.forward_into(input, mode, ws3)?;
                let r = b3_reduce_act.forward_into(&a, mode, ws3)?;
                ws3.restore(a);
                let c = b3.forward_into(&r, mode, ws3)?;
                ws3.restore(r);
                let y = b3_act.forward_into(&c, mode, ws3)?;
                ws3.restore(c);
                Ok(y)
            };
            let mut branch4 = move || -> Result<TensorView> {
                let d = input.dims();
                let mut padded = ws4.checkout(&[d[0], d[1], d[2] + 2, d[3] + 2]);
                pad_spatial_into(input, 1, f32::NEG_INFINITY, &mut padded)?;
                let pooled = b4_pool.forward_into(&padded, mode, ws4)?;
                ws4.restore(padded);
                let p = b4_proj.forward_into(&pooled, mode, ws4)?;
                ws4.restore(pooled);
                let y = b4_act.forward_into(&p, mode, ws4)?;
                ws4.restore(p);
                Ok(y)
            };
            if par.is_serial() {
                (branch1(), branch2(), branch3(), branch4())
            } else {
                std::thread::scope(|scope| {
                    let h1 = scope.spawn(branch1);
                    let h2 = scope.spawn(branch2);
                    let h3 = scope.spawn(branch3);
                    let y4 = branch4();
                    (
                        join_worker(h1, "Inception branch 1"),
                        join_worker(h2, "Inception branch 2"),
                        join_worker(h3, "Inception branch 3"),
                        y4,
                    )
                })
            }
        };
        let (y1, y2, y3, y4) = (y1?, y2?, y3?, y4?);
        let d = y1.dims();
        let mut out = ws.checkout(&[d[0], self.channels.total(), d[2], d[3]]);
        Tensor::concat_into(&[&y1, &y2, &y3, &y4], 1, &mut out)?;
        self.ws1.restore(y1);
        self.ws2.restore(y2);
        self.ws3.restore(y3);
        self.ws4.restore(y4);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let c = &self.channels;
        let parts = grad_out.split(1, &[c.c1, c.c3, c.c5, c.pool_proj])?;
        let g1 = self.b1.backward(&self.b1_act.backward(&parts[0])?)?;
        let g2 = {
            let g = self.b2.backward(&self.b2_act.backward(&parts[1])?)?;
            self.b2_reduce.backward(&self.b2_reduce_act.backward(&g)?)?
        };
        let g3 = {
            let g = self.b3.backward(&self.b3_act.backward(&parts[2])?)?;
            self.b3_reduce.backward(&self.b3_reduce_act.backward(&g)?)?
        };
        let g4 = {
            let g = self.b4_proj.backward(&self.b4_act.backward(&parts[3])?)?;
            let g_padded = self.b4_pool.backward(&g)?;
            crop_spatial(&g_padded, 1)?
        };
        let mut total = g1;
        total.add_assign(&g2)?;
        total.add_assign(&g3)?;
        total.add_assign(&g4)?;
        Ok(total)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.b1.params_mut());
        params.extend(self.b2_reduce.params_mut());
        params.extend(self.b2.params_mut());
        params.extend(self.b3_reduce.params_mut());
        params.extend(self.b3.params_mut());
        params.extend(self.b4_proj.params_mut());
        params
    }

    fn name(&self) -> &'static str {
        "InceptionBlock"
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
        self.b1.set_parallelism(par);
        self.b2_reduce.set_parallelism(par);
        self.b2.set_parallelism(par);
        self.b3_reduce.set_parallelism(par);
        self.b3.set_parallelism(par);
        self.b4_pool.set_parallelism(par);
        self.b4_proj.set_parallelism(par);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_channels() -> InceptionChannels {
        InceptionChannels {
            c1: 2,
            c3_reduce: 2,
            c3: 3,
            c5_reduce: 1,
            c5: 2,
            pool_proj: 1,
        }
    }

    #[test]
    fn output_has_concatenated_channels_and_same_spatial_size() {
        let mut rng = SplitMix64::new(1);
        let ch = tiny_channels();
        let mut block = InceptionBlock::new(3, ch, &mut rng);
        let x = Tensor::zeros(&[2, 3, 6, 6]);
        let y = block.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, ch.total(), 6, 6]);
    }

    #[test]
    fn pad_crop_roundtrip() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let padded = pad_spatial(&x, 2, 0.0).unwrap();
        assert_eq!(padded.dims(), &[1, 1, 8, 8]);
        let back = crop_spatial(&padded, 2).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn negative_inf_padding_never_wins_pool() {
        let x = Tensor::full(&[1, 1, 2, 2], -5.0);
        let padded = pad_spatial(&x, 1, f32::NEG_INFINITY).unwrap();
        let (pooled, _) =
            darnet_tensor::max_pool2d(&padded, &darnet_tensor::PoolSpec::new(3, 1)).unwrap();
        assert!(pooled.data().iter().all(|&v| v == -5.0));
    }

    #[test]
    fn inception_gradcheck_on_input() {
        let mut rng = SplitMix64::new(5);
        let mut block = InceptionBlock::new(2, tiny_channels(), &mut rng);
        let mut r2 = SplitMix64::new(17);
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        for v in x.data_mut() {
            *v = r2.uniform(-1.0, 1.0);
        }
        let y = block.forward(&x, Mode::Train).unwrap();
        let dx = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims());
        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            // Forward in Train mode to refresh ReLU masks is fine for eval
            // of the loss; use Eval to avoid disturbing caches? We re-run
            // Train on original x afterwards, so Eval is safe here.
            let yp = block.forward(&xp, Mode::Eval).unwrap().sum();
            let ym = block.forward(&xm, Mode::Eval).unwrap().sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 5e-2,
                "grad {i}: fd {fd} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn concurrent_branches_match_serial_bitwise() {
        let mut serial = InceptionBlock::new(2, tiny_channels(), &mut SplitMix64::new(9));
        let mut parallel = InceptionBlock::new(2, tiny_channels(), &mut SplitMix64::new(9));
        parallel.set_parallelism(Parallelism::new(4).with_min_work(1));
        let mut x = Tensor::zeros(&[2, 2, 5, 5]);
        let mut r = SplitMix64::new(3);
        for v in x.data_mut() {
            *v = r.uniform(-1.0, 1.0);
        }
        let ys = serial.forward(&x, Mode::Eval).unwrap();
        let yp = parallel.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ys, yp);
    }

    #[test]
    fn params_cover_all_six_convs() {
        let mut rng = SplitMix64::new(2);
        let mut block = InceptionBlock::new(3, tiny_channels(), &mut rng);
        // 6 convs × (weight + bias) = 12 params.
        assert_eq!(block.params_mut().len(), 12);
        assert!(block.param_count() > 0);
    }
}
