//! Inverted dropout.

use darnet_tensor::{SplitMix64, Tensor, TensorView, Workspace};

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::Result;

/// Inverted dropout: during training, zeroes each activation with
/// probability `p` and scales survivors by `1/(1-p)`; at evaluation time it
/// is the identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: SplitMix64,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)` and a
    /// deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: SplitMix64::new(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    // darlint: cold — owned-output twin of forward_into; Train mode samples a fresh mask and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => Ok(input.clone()),
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                // Reuse the previous step's mask buffer when the batch shape
                // is unchanged; every element is overwritten below.
                let mut mask = match self.mask.take() {
                    Some(m) if m.dims() == input.dims() => m,
                    _ => Tensor::zeros(input.dims()),
                };
                for v in mask.data_mut() {
                    *v = if self.rng.next_f32() < keep {
                        scale
                    } else {
                        0.0
                    };
                }
                let out = input.mul(&mask)?;
                self.mask = Some(mask);
                Ok(out)
            }
        }
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let mut out = ws.checkout(input.dims());
        input.copy_into(&mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Dropout" })?;
        Ok(grad_out.mul(mask)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[100])).unwrap();
        // Gradient is nonzero exactly where the output was nonzero.
        for (gy, yy) in g.data().iter().zip(y.data()) {
            assert_eq!(*gy == 0.0, *yy == 0.0);
        }
    }

    #[test]
    fn zero_probability_keeps_everything() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_slice(&[5.0, -5.0]);
        let y = d.forward(&x, Mode::Train).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    #[should_panic(expected = "dropout p must be in [0, 1)")]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0, 5);
    }
}
