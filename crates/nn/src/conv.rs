//! 2-D convolution layer implemented via im2col lowering.

use darnet_tensor::{
    col2im, he_normal, im2col_into, im2col_with, Conv2dSpec, Parallelism, SplitMix64, Tensor,
    TensorView, Workspace,
};

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::Result;

/// A 2-D convolution over `[batch, in_c, h, w]` inputs producing
/// `[batch, out_c, oh, ow]`.
///
/// The forward pass lowers the input to a patch matrix with
/// [`darnet_tensor::im2col`] and performs one matrix product against the `[out_c,
/// in_c·kh·kw]` weight; the backward pass uses the transpose products plus
/// [`col2im`]. Weights use He initialisation (the layer is normally followed
/// by ReLU).
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Param,
    cols: Option<Tensor>,
    input_dims: Option<Vec<usize>>,
    par: Parallelism,
}

impl Conv2d {
    /// Creates a convolution from a geometry spec.
    pub fn new(spec: Conv2dSpec, rng: &mut SplitMix64) -> Self {
        let patch = spec.patch_len();
        let weight = he_normal(&[spec.out_channels, patch], patch, rng);
        Conv2d {
            spec,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[spec.out_channels])),
            cols: None,
            input_dims: None,
            par: Parallelism::serial(),
        }
    }

    /// Convenience constructor for a square kernel.
    pub fn square(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SplitMix64,
    ) -> Self {
        Conv2d::new(
            Conv2dSpec::square(in_channels, out_channels, kernel, stride, padding),
            rng,
        )
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.spec.out_channels
    }
}

/// Reorders a `[b*oh*ow, c]` row-per-pixel matrix into `[b, c, oh, ow]`
/// channel-major layout.
fn pixels_to_nchw(pixels: &Tensor, b: usize, c: usize, oh: usize, ow: usize) -> Result<Tensor> {
    let hw = oh * ow;
    let mut out = vec![0.0f32; b * c * hw];
    let data = pixels.data();
    for n in 0..b {
        for p in 0..hw {
            let row = (n * hw + p) * c;
            for ch in 0..c {
                out[(n * c + ch) * hw + p] = data[row + ch];
            }
        }
    }
    Ok(Tensor::from_vec(out, &[b, c, oh, ow])?)
}

/// [`pixels_to_nchw`] writing into a caller-provided buffer of shape
/// `[b, c, oh, ow]` (same element order, so results are bitwise identical).
// darlint: hot
fn pixels_to_nchw_into(
    pixels: &Tensor,
    b: usize,
    c: usize,
    oh: usize,
    ow: usize,
    out: &mut Tensor,
) -> Result<()> {
    let hw = oh * ow;
    if out.dims() != [b, c, oh, ow] || pixels.len() != b * c * hw {
        return Err(NnError::InvalidConfig(format!(
            "pixels_to_nchw_into: {:?} pixels into {:?} output",
            pixels.dims(),
            out.dims()
        )));
    }
    let od = out.data_mut();
    let data = pixels.data();
    for n in 0..b {
        for p in 0..hw {
            let row = (n * hw + p) * c;
            for ch in 0..c {
                od[(n * c + ch) * hw + p] = data[row + ch];
            }
        }
    }
    Ok(())
}

/// Inverse of [`pixels_to_nchw`].
fn nchw_to_pixels(t: &Tensor) -> Result<Tensor> {
    let d = t.dims();
    let (b, c, oh, ow) = (d[0], d[1], d[2], d[3]);
    let hw = oh * ow;
    let mut out = vec![0.0f32; b * hw * c];
    let data = t.data();
    for n in 0..b {
        for ch in 0..c {
            for p in 0..hw {
                out[(n * hw + p) * c + ch] = data[(n * c + ch) * hw + p];
            }
        }
    }
    Ok(Tensor::from_vec(out, &[b * hw, c])?)
}

impl Layer for Conv2d {
    // darlint: cold — owned-output twin of forward_into; Train mode caches im2col patches and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "conv expects [batch, c, h, w], got {:?}",
                input.dims()
            )));
        }
        let d = input.dims();
        let (b, h, w) = (d[0], d[2], d[3]);
        let (oh, ow) = self.spec.output_size(h, w)?;
        let cols = im2col_with(input, &self.spec, &self.par)?;
        // [b*oh*ow, patch] × [patch, out_c]ᵀ → [b*oh*ow, out_c]
        let mut pixels = cols.matmul_transpose_b_with(&self.weight.value, &self.par)?;
        // Bias per output channel.
        pixels = pixels.add_row_broadcast(&self.bias.value)?;
        if mode == Mode::Train {
            self.cols = Some(cols);
            self.input_dims = Some(d.to_vec());
        }
        pixels_to_nchw(&pixels, b, self.spec.out_channels, oh, ow)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "conv expects [batch, c, h, w], got {:?}",
                input.dims()
            )));
        }
        let d = input.dims();
        let (b, h, w) = (d[0], d[2], d[3]);
        let (oh, ow) = self.spec.output_size(h, w)?;
        let rows = b * oh * ow;
        let mut cols = ws.checkout(&[rows, self.spec.patch_len()]);
        im2col_into(input, &self.spec, &self.par, &mut cols)?;
        let mut pixels = ws.checkout(&[rows, self.spec.out_channels]);
        cols.matmul_transpose_b_into(&self.weight.value, &self.par, &mut pixels)?;
        ws.restore(cols);
        pixels.add_row_broadcast_assign(&self.bias.value)?;
        let mut out = ws.checkout(&[b, self.spec.out_channels, oh, ow]);
        pixels_to_nchw_into(&pixels, b, self.spec.out_channels, oh, ow, &mut out)?;
        ws.restore(pixels);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cols = self
            .cols
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Conv2d" })?;
        let input_dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Conv2d" })?;
        let (b, h, w) = (input_dims[0], input_dims[2], input_dims[3]);
        // [b, out_c, oh, ow] → [b*oh*ow, out_c]
        let dpixels = nchw_to_pixels(grad_out)?;
        // dW [out_c, patch] = dpixelsᵀ × cols
        let dw = dpixels.matmul_transpose_a_with(cols, &self.par)?;
        self.weight.grad.add_assign(&dw)?;
        let db = dpixels.sum_axis0()?;
        self.bias.grad.add_assign(&db)?;
        // dcols [rows, patch] = dpixels × W
        let dcols = dpixels.matmul_with(&self.weight.value, &self.par)?;
        Ok(col2im(&dcols, &self.spec, b, h, w)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_1x1_kernel_passes_input_through() {
        let mut rng = SplitMix64::new(1);
        let mut conv = Conv2d::square(1, 1, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 1]);
        let x = Tensor::from_vec((0..4).map(|v| v as f32).collect(), &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // Sum kernel over a 3x3 image with no padding: output = sum of all
        // pixels.
        let mut rng = SplitMix64::new(1);
        let mut conv = Conv2d::square(1, 1, 3, 1, 0, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 9]);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[45.0]);
    }

    #[test]
    fn output_shape_follows_spec() {
        let mut rng = SplitMix64::new(2);
        let mut conv = Conv2d::square(3, 8, 3, 1, 1, &mut rng);
        let y = conv
            .forward(&Tensor::zeros(&[2, 3, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn multichannel_output_is_channel_major() {
        let mut rng = SplitMix64::new(3);
        let mut conv = Conv2d::square(1, 2, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, 10.0], &[2, 1]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = SplitMix64::new(7);
        let mut conv = Conv2d::square(2, 3, 3, 1, 1, &mut rng);
        let x = {
            let mut t = Tensor::zeros(&[1, 2, 4, 4]);
            let mut r = SplitMix64::new(99);
            for v in t.data_mut() {
                *v = r.uniform(-1.0, 1.0);
            }
            t
        };
        let y = conv.forward(&x, Mode::Train).unwrap();
        let dx = conv.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2f32;
        // Input gradient (spot-check a subset for speed).
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = conv.forward(&xp, Mode::Eval).unwrap().sum();
            let ym = conv.forward(&xm, Mode::Eval).unwrap().sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 2e-2,
                "input grad {i}: fd {fd} vs {}",
                dx.data()[i]
            );
        }
        // Weight gradient (spot-check).
        let wgrad = conv.weight.grad.clone();
        for i in (0..conv.weight.value.len()).step_by(7) {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let yp = conv.forward(&x, Mode::Eval).unwrap().sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let ym = conv.forward(&x, Mode::Eval).unwrap().sum();
            conv.weight.value.data_mut()[i] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - wgrad.data()[i]).abs() < 2e-2,
                "weight grad {i}: fd {fd} vs {}",
                wgrad.data()[i]
            );
        }
        // Bias gradient: dL/db_c = number of output pixels per channel.
        let out_pixels = (y.len() / conv.spec.out_channels) as f32;
        for &g in conv.bias.grad.data() {
            assert!((g - out_pixels).abs() < 1e-3);
        }
    }

    #[test]
    fn pixels_nchw_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let pixels = nchw_to_pixels(&t).unwrap();
        assert_eq!(pixels.dims(), &[8, 3]);
        let back = pixels_to_nchw(&pixels, 2, 3, 2, 2).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = SplitMix64::new(1);
        let mut conv = Conv2d::square(1, 1, 1, 1, 0, &mut rng);
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::NoForwardCache { .. })
        ));
    }
}
