//! Linear one-vs-rest SVM — the IMU baseline model in the paper's Table 2.

use darnet_tensor::{SplitMix64, Tensor};

use crate::error::NnError;
use crate::loss::softmax;
use crate::Result;

/// Hyperparameters for [`LinearSvm`] training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Learning rate for hinge-loss SGD.
    pub lr: f32,
    /// L2 regularization strength.
    pub lambda: f32,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Hinge margin (standard SVM uses 1.0).
    pub margin: f32,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lr: 0.05,
            lambda: 1e-4,
            epochs: 30,
            margin: 1.0,
        }
    }
}

/// A multi-class linear SVM trained one-vs-rest with hinge loss and L2
/// regularization via SGD.
///
/// For the ensemble combiner the raw margins are converted to a pseudo
/// probability distribution with a softmax over scores (a cheap stand-in
/// for Platt scaling that preserves score ordering).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Tensor, // [classes, features]
    bias: Tensor,    // [classes]
    features: usize,
    classes: usize,
}

impl LinearSvm {
    /// Creates an untrained SVM with zero weights.
    pub fn new(features: usize, classes: usize) -> Self {
        LinearSvm {
            weights: Tensor::zeros(&[classes, features]),
            bias: Tensor::zeros(&[classes]),
            features,
            classes,
        }
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Trains on `[n, features]` data with integer labels using one-vs-rest
    /// hinge loss.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/label problems.
    pub fn fit(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        config: &SvmConfig,
        rng: &mut SplitMix64,
    ) -> Result<()> {
        if x.rank() != 2 || x.dims()[1] != self.features {
            return Err(NnError::InvalidConfig(format!(
                "svm expects [n, {}], got {:?}",
                self.features,
                x.dims()
            )));
        }
        let n = x.dims()[0];
        if labels.len() != n {
            return Err(NnError::LabelBatchMismatch {
                batch: n,
                labels: labels.len(),
            });
        }
        for &l in labels {
            if l >= self.classes {
                return Err(NnError::LabelOutOfRange {
                    label: l,
                    classes: self.classes,
                });
            }
        }
        let f = self.features;
        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            // Learning-rate decay keeps late epochs from oscillating.
            let lr = config.lr / (1.0 + 0.1 * epoch as f32);
            for &idx in &order {
                let xi = &x.data()[idx * f..(idx + 1) * f];
                let yi = labels[idx];
                for c in 0..self.classes {
                    let target: f32 = if c == yi { 1.0 } else { -1.0 };
                    let w = &self.weights.data()[c * f..(c + 1) * f];
                    let score: f32 = w.iter().zip(xi).map(|(&wv, &xv)| wv * xv).sum::<f32>()
                        + self.bias.data()[c];
                    // L2 shrinkage on every step.
                    let shrink = 1.0 - lr * config.lambda;
                    for wv in &mut self.weights.data_mut()[c * f..(c + 1) * f] {
                        *wv *= shrink;
                    }
                    if target * score < config.margin {
                        // Hinge sub-gradient step.
                        for (wv, &xv) in self.weights.data_mut()[c * f..(c + 1) * f]
                            .iter_mut()
                            .zip(xi)
                        {
                            *wv += lr * target * xv;
                        }
                        self.bias.data_mut()[c] += lr * target;
                    }
                }
            }
        }
        Ok(())
    }

    /// Raw margin scores `[n, classes]`.
    ///
    /// # Errors
    ///
    /// Returns an error on feature-width mismatch.
    pub fn decision_function(&self, x: &Tensor) -> Result<Tensor> {
        if x.rank() != 2 || x.dims()[1] != self.features {
            return Err(NnError::InvalidConfig(format!(
                "svm expects [n, {}], got {:?}",
                self.features,
                x.dims()
            )));
        }
        let scores = x.matmul_transpose_b(&self.weights)?;
        Ok(scores.add_row_broadcast(&self.bias)?)
    }

    /// Predicted class per row.
    ///
    /// # Errors
    ///
    /// Returns an error on feature-width mismatch.
    pub fn predict(&self, x: &Tensor) -> Result<Vec<usize>> {
        Ok(self.decision_function(x)?.argmax_rows()?)
    }

    /// Pseudo-probabilities from a softmax over margins, `[n, classes]` —
    /// the form the Bayesian-network combiner consumes.
    ///
    /// # Errors
    ///
    /// Returns an error on feature-width mismatch.
    pub fn predict_proba(&self, x: &Tensor) -> Result<Tensor> {
        softmax(&self.decision_function(x)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per_class: usize, seed: u64) -> (Tensor, Vec<usize>) {
        // Three well-separated Gaussian blobs in 2-D.
        let centers = [(0.0f32, 0.0f32), (4.0, 4.0), (-4.0, 4.0)];
        let mut rng = SplitMix64::new(seed);
        let n = n_per_class * centers.len();
        let mut x = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::with_capacity(n);
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..n_per_class {
                let idx = c * n_per_class + i;
                x.data_mut()[idx * 2] = cx + rng.normal() * 0.5;
                x.data_mut()[idx * 2 + 1] = cy + rng.normal() * 0.5;
                labels.push(c);
            }
        }
        (x, labels)
    }

    #[test]
    fn svm_separates_gaussian_blobs() {
        let (x, labels) = blobs(50, 1);
        let mut svm = LinearSvm::new(2, 3);
        let mut rng = SplitMix64::new(2);
        svm.fit(&x, &labels, &SvmConfig::default(), &mut rng)
            .unwrap();
        let preds = svm.predict(&x).unwrap();
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        let acc = correct as f32 / labels.len() as f32;
        assert!(acc > 0.95, "svm accuracy {acc}");
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let (x, labels) = blobs(20, 3);
        let mut svm = LinearSvm::new(2, 3);
        let mut rng = SplitMix64::new(4);
        svm.fit(&x, &labels, &SvmConfig::default(), &mut rng)
            .unwrap();
        let p = svm.predict_proba(&x).unwrap();
        for i in 0..x.dims()[0] {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn untrained_svm_scores_are_zero() {
        let svm = LinearSvm::new(3, 2);
        let scores = svm.decision_function(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(scores.sum(), 0.0);
    }

    #[test]
    fn fit_validates_inputs() {
        let mut svm = LinearSvm::new(2, 2);
        let mut rng = SplitMix64::new(5);
        let x = Tensor::zeros(&[3, 2]);
        assert!(matches!(
            svm.fit(&x, &[0, 1], &SvmConfig::default(), &mut rng),
            Err(NnError::LabelBatchMismatch { .. })
        ));
        assert!(matches!(
            svm.fit(&x, &[0, 1, 2], &SvmConfig::default(), &mut rng),
            Err(NnError::LabelOutOfRange { .. })
        ));
        assert!(svm.decision_function(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    fn regularization_keeps_weights_bounded() {
        let (x, labels) = blobs(30, 6);
        let mut svm = LinearSvm::new(2, 3);
        let mut rng = SplitMix64::new(7);
        let config = SvmConfig {
            lambda: 0.1,
            epochs: 50,
            ..SvmConfig::default()
        };
        svm.fit(&x, &labels, &config, &mut rng).unwrap();
        assert!(svm.weights.norm() < 50.0);
    }
}
