//! Optimizers: SGD with momentum/weight decay and Adam.

use crate::error::NnError;
use crate::param::Param;
use crate::Result;

/// A gradient-descent optimizer that updates [`Param`]s in place from their
/// accumulated gradients, then clears the gradients.
pub trait Optimizer {
    /// Applies one update step to every parameter and zeroes the gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Diverged`] if a parameter became non-finite.
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()>;
}

/// Stochastic gradient descent with optional momentum and L2 weight decay —
/// the optimizer the paper uses for both supervised training and dCNN
/// distillation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    /// Gradient-norm clip threshold (0 disables clipping). Applied per
    /// parameter, which is sufficient to keep LSTM training stable.
    pub clip_norm: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            clip_norm: 0.0,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            clip_norm: 0.0,
        }
    }

    /// Sets L2 weight decay, returning the modified optimizer.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets per-parameter gradient-norm clipping, returning the modified
    /// optimizer.
    pub fn clip_norm(mut self, clip: f32) -> Self {
        self.clip_norm = clip;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        for p in params.iter_mut() {
            let mut scale = 1.0f32;
            if self.clip_norm > 0.0 {
                let norm = p.grad.norm();
                if norm > self.clip_norm {
                    scale = self.clip_norm / norm;
                }
            }
            if self.momentum > 0.0 {
                p.ensure_state(1);
                let grad = &p.grad;
                let wd = self.weight_decay;
                let value_snapshot = p.value.clone();
                let vel = &mut p.state[0];
                for ((v, &g), &w) in vel
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(value_snapshot.data())
                {
                    *v = self.momentum * *v + scale * g + wd * w;
                }
                let vel_snapshot = p.state[0].clone();
                p.value.axpy(-self.lr, &vel_snapshot)?;
            } else {
                let wd = self.weight_decay;
                let lr = self.lr;
                let grad_snapshot = p.grad.clone();
                for (w, &g) in p.value.data_mut().iter_mut().zip(grad_snapshot.data()) {
                    *w -= lr * (scale * g + wd * *w);
                }
            }
            if !p.value.all_finite() {
                return Err(NnError::Diverged("parameter became non-finite".into()));
            }
            p.zero_grad();
        }
        Ok(())
    }
}

/// Adam optimizer (Kingma & Ba). Used in this reproduction for the LSTM,
/// which SGD trains noticeably slower.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
        }
    }

    /// Sets L2 weight decay, returning the modified optimizer.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            p.ensure_state(2);
            let grad = p.grad.clone();
            let wd = self.weight_decay;
            let value_snapshot = p.value.clone();
            {
                let m = &mut p.state[0];
                for ((m_i, &g), &w) in m
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(value_snapshot.data())
                {
                    *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * (g + wd * w);
                }
            }
            {
                let v = &mut p.state[1];
                for ((v_i, &g), &w) in v
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(value_snapshot.data())
                {
                    let ge = g + wd * w;
                    *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * ge * ge;
                }
            }
            let m = p.state[0].clone();
            let v = p.state[1].clone();
            for ((w, &m_i), &v_i) in p.value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = m_i / bc1;
                let v_hat = v_i / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            if !p.value.all_finite() {
                return Err(NnError::Diverged("parameter became non-finite".into()));
            }
            p.zero_grad();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darnet_tensor::Tensor;

    fn quadratic_grad(p: &Param) -> Tensor {
        // d/dw of 0.5 * ||w - 3||^2 = w - 3
        p.value.add_scalar(-3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(Tensor::zeros(&[4]));
        let mut opt = Sgd::new(0.2);
        for _ in 0..100 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]).unwrap();
        }
        for &w in p.value.data() {
            assert!((w - 3.0).abs() < 1e-3, "w = {w}");
        }
    }

    #[test]
    fn sgd_with_momentum_converges_faster_than_plain() {
        let run = |mom: f32| -> f32 {
            let mut p = Param::new(Tensor::zeros(&[1]));
            let mut opt = Sgd::with_momentum(0.05, mom);
            for _ in 0..30 {
                p.grad = quadratic_grad(&p);
                opt.step(&mut [&mut p]).unwrap();
            }
            (p.value.data()[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new(Tensor::zeros(&[3]));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]).unwrap();
        }
        for &w in p.value.data() {
            assert!((w - 3.0).abs() < 1e-2, "w = {w}");
        }
    }

    #[test]
    fn weight_decay_shrinks_weights_with_zero_gradient() {
        let mut p = Param::new(Tensor::full(&[2], 10.0));
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.step(&mut [&mut p]).unwrap();
        // w -= lr * wd * w  →  10 - 0.1*0.5*10 = 9.5
        assert!((p.value.data()[0] - 9.5).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_bounds_update_magnitude() {
        let mut p = Param::new(Tensor::zeros(&[1]));
        p.grad = Tensor::full(&[1], 1000.0);
        let mut opt = Sgd::new(1.0).clip_norm(1.0);
        opt.step(&mut [&mut p]).unwrap();
        assert!((p.value.data()[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.grad = Tensor::ones(&[2]);
        Sgd::new(0.1).step(&mut [&mut p]).unwrap();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn divergence_is_detected() {
        let mut p = Param::new(Tensor::ones(&[1]));
        p.grad = Tensor::full(&[1], f32::INFINITY);
        assert!(matches!(
            Sgd::new(1.0).step(&mut [&mut p]),
            Err(NnError::Diverged(_))
        ));
    }
}
