//! Error type for neural-network operations.

use std::fmt;

use darnet_tensor::TensorError;

/// Error returned by fallible network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called without a preceding `forward` (no cached
    /// activations).
    NoForwardCache {
        /// The layer that was asked to run backward.
        layer: &'static str,
    },
    /// Labels supplied to a loss did not match the batch dimension.
    LabelBatchMismatch {
        /// Batch size from the logits.
        batch: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label index exceeded the number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes in the logits.
        classes: usize,
    },
    /// Generic configuration error (bad hyperparameters, empty model, ...).
    InvalidConfig(String),
    /// Training diverged (NaN/inf appeared in loss or parameters).
    Diverged(String),
    /// A scoped worker thread panicked while executing part of a layer's
    /// forward/backward pass (the panic payload is not preserved — the
    /// worker's own diagnostics go to stderr).
    WorkerPanicked {
        /// The layer whose worker died.
        layer: &'static str,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::LabelBatchMismatch { batch, labels } => {
                write!(f, "batch of {batch} rows given {labels} labels")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::Diverged(msg) => write!(f, "training diverged: {msg}"),
            NnError::WorkerPanicked { layer } => {
                write!(f, "a parallel worker thread panicked in layer {layer}")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::InvalidArgument("x".into());
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
    }

    #[test]
    fn source_chains_to_tensor_error() {
        use std::error::Error;
        let ne = NnError::Tensor(TensorError::InvalidArgument("y".into()));
        assert!(ne.source().is_some());
        assert!(NnError::InvalidConfig("z".into()).source().is_none());
    }
}
