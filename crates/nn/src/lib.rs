//! # darnet-nn
//!
//! A from-scratch, CPU-only neural-network library built on
//! [`darnet_tensor`], providing every model family the DarNet paper uses:
//!
//! * **Convolutional networks** — [`Conv2d`], [`MaxPool2d`], [`AvgPool2d`],
//!   [`GlobalAvgPool`], [`Relu`], [`Dropout`], [`Flatten`], [`Dense`], and an
//!   [`InceptionBlock`] composite (parallel 1×1 / 3×3 / 5×5 / pool branches
//!   concatenated over channels, after Szegedy et al.'s Inception design that
//!   DarNet's frame classifier builds on).
//! * **Recurrent networks** — an [`LstmCell`] with full backpropagation
//!   through time, a [`BiLstm`] bidirectional wrapper, and the
//!   [`DeepBiLstmClassifier`] matching the paper's IMU architecture
//!   (2 stacked bidirectional LSTM layers, 64 hidden units, softmax head).
//! * **A linear SVM** baseline ([`LinearSvm`]) trained with hinge loss, the
//!   comparison model in the paper's Table 2.
//! * **Losses** — softmax cross-entropy and the L2 distillation loss used by
//!   the privacy-preserving dCNN training.
//! * **Optimizers** — SGD with momentum and weight decay, and Adam.
//!
//! Everything is deterministic given a seed, and every layer's backward pass
//! is verified against finite differences in the test suite.
//!
//! ## Example
//!
//! ```
//! use darnet_nn::{Dense, Layer, Mode, Relu, Sequential, softmax_cross_entropy, Sgd, Optimizer};
//! use darnet_tensor::{SplitMix64, Tensor};
//!
//! let mut rng = SplitMix64::new(7);
//! let mut net = Sequential::new();
//! net.push(Dense::new(4, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 3, &mut rng));
//!
//! let x = Tensor::zeros(&[2, 4]);
//! let logits = net.forward(&x, Mode::Train)?;
//! let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2])?;
//! net.backward(&grad)?;
//! Sgd::new(0.1).step(&mut net.params_mut())?;
//! assert!(loss > 0.0);
//! # Ok::<(), darnet_nn::NnError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

mod conv;
mod dense;
mod dropout;
mod error;
mod inception;
mod layer;
mod loss;
mod lstm;
mod optim;
mod param;
mod pool;
mod sequential;
mod svm;

pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use inception::{InceptionBlock, InceptionChannels};
pub use layer::{Flatten, Layer, Mode, Relu, Sigmoid, Tanh};
pub use loss::{l2_distill_loss, log_softmax, softmax, softmax_cross_entropy, softmax_inplace};
pub use lstm::{BiLstm, DeepBiLstmClassifier, LstmCell};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use sequential::Sequential;
pub use svm::{LinearSvm, SvmConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
