//! Trainable parameters: a value tensor paired with its gradient and
//! optimizer state slots.

use serde::{Deserialize, Serialize};

use darnet_tensor::Tensor;

/// A trainable parameter.
///
/// Layers own their `Param`s; the backward pass *accumulates* into
/// [`Param::grad`], and an [`Optimizer`](crate::Optimizer) consumes the
/// gradient and updates the value. Optimizer state (momentum / Adam moments)
/// is stored on the parameter itself so that optimizers stay stateless with
/// respect to parameter identity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Optimizer state slots (e.g. momentum buffer, Adam first/second
    /// moments), lazily initialized by the optimizer.
    pub state: Vec<Tensor>,
}

impl Param {
    /// Wraps a value tensor as a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            value,
            grad,
            state: Vec::new(),
        }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Number of scalar weights in this parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Ensures `n` optimizer state slots of the parameter's shape exist.
    pub fn ensure_state(&mut self, n: usize) {
        while self.state.len() < n {
            self.state.push(Tensor::zeros(self.value.dims()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_same_shape() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad = Tensor::full(&[4], 3.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn ensure_state_is_idempotent() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.ensure_state(2);
        assert_eq!(p.state.len(), 2);
        p.ensure_state(1);
        assert_eq!(p.state.len(), 2);
        assert_eq!(p.state[0].dims(), &[2]);
    }
}
