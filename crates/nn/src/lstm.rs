//! LSTM recurrent layers: a single [`LstmCell`] with full backpropagation
//! through time, a bidirectional wrapper ([`BiLstm`]), and the stacked
//! classifier used for DarNet's IMU stream
//! ([`DeepBiLstmClassifier`] — 2 bidirectional layers × 64 hidden units in
//! the paper's configuration, §4.2).

use darnet_tensor::{uniform_init, Parallelism, SplitMix64, Tensor, TensorView, Workspace};

use crate::error::NnError;
use crate::layer::{join_worker, sigmoid_scalar, Mode};
use crate::param::Param;
use crate::Result;

/// Extracts timestep `t` of a `[batch, time, feat]` tensor as `[batch,
/// feat]`.
// darlint: cold — owned-output twin of step_slice_into; used by the allocating forward_seq and the training backward pass
fn step_slice(x: &Tensor, t: usize) -> Result<Tensor> {
    let d = x.dims();
    let (b, time, f) = (d[0], d[1], d[2]);
    debug_assert!(t < time);
    let mut out = vec![0.0f32; b * f];
    for n in 0..b {
        let src = (n * time + t) * f;
        out[n * f..(n + 1) * f].copy_from_slice(&x.data()[src..src + f]);
    }
    Ok(Tensor::from_vec(out, &[b, f])?)
}

/// [`step_slice`] writing into a caller-provided `[batch, feat]` buffer.
// darlint: hot
fn step_slice_into(x: &Tensor, t: usize, out: &mut Tensor) {
    let d = x.dims();
    let (b, time, f) = (d[0], d[1], d[2]);
    debug_assert!(t < time && out.len() == b * f);
    for n in 0..b {
        let src = (n * time + t) * f;
        out.data_mut()[n * f..(n + 1) * f].copy_from_slice(&x.data()[src..src + f]);
    }
}

/// Writes a `[batch, feat]` matrix into timestep `t` of a `[batch, time,
/// feat]` tensor.
// darlint: hot
fn step_write(dst: &mut Tensor, t: usize, src: &Tensor) {
    let (b, time, f) = {
        let d = dst.dims();
        (d[0], d[1], d[2])
    };
    debug_assert!(t < time);
    for n in 0..b {
        let off = (n * time + t) * f;
        dst.data_mut()[off..off + f].copy_from_slice(&src.data()[n * f..(n + 1) * f]);
    }
}

/// Per-timestep cache for backpropagation through time.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,      // [B, F] input
    h_prev: Tensor, // [B, H]
    c_prev: Tensor, // [B, H]
    i: Tensor,      // input gate
    f: Tensor,      // forget gate
    g: Tensor,      // candidate
    o: Tensor,      // output gate
    tanh_c: Tensor, // tanh(c_t)
}

/// A single-direction LSTM over `[batch, time, features]` sequences.
///
/// Gate order in the packed `4H` dimension is `i, f, g, o`. The forget-gate
/// bias is initialized to 1.0 (standard practice for gradient flow over
/// long windows).
#[derive(Debug)]
pub struct LstmCell {
    input_size: usize,
    hidden_size: usize,
    w_x: Param, // [4H, F]
    w_h: Param, // [4H, H]
    b: Param,   // [4H]
    cache: Vec<StepCache>,
    par: Parallelism,
}

impl LstmCell {
    /// Creates an LSTM cell mapping `input_size` features to `hidden_size`
    /// hidden units.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut SplitMix64) -> Self {
        let bound = (1.0 / hidden_size.max(1) as f32).sqrt();
        let w_x = uniform_init(&[4 * hidden_size, input_size], -bound, bound, rng);
        let w_h = uniform_init(&[4 * hidden_size, hidden_size], -bound, bound, rng);
        let mut b = Tensor::zeros(&[4 * hidden_size]);
        // Forget-gate bias = 1.0.
        for v in &mut b.data_mut()[hidden_size..2 * hidden_size] {
            *v = 1.0;
        }
        LstmCell {
            input_size,
            hidden_size,
            w_x: Param::new(w_x),
            w_h: Param::new(w_h),
            b: Param::new(b),
            cache: Vec::new(),
            par: Parallelism::serial(),
        }
    }

    /// Installs a parallel execution policy for the cell's matrix products.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Input feature width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Runs the cell over a full `[batch, time, features]` sequence,
    /// returning all hidden states `[batch, time, hidden]`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input rank or feature width is wrong.
    // darlint: cold — owned-output twin of forward_seq_into; Train mode caches per-step gates and allocates by design
    pub fn forward_seq(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if x.rank() != 3 || x.dims()[2] != self.input_size {
            return Err(NnError::InvalidConfig(format!(
                "lstm expects [batch, time, {}], got {:?}",
                self.input_size,
                x.dims()
            )));
        }
        let (b, time) = (x.dims()[0], x.dims()[1]);
        let h = self.hidden_size;
        self.cache.clear();
        let mut h_t = Tensor::zeros(&[b, h]);
        let mut c_t = Tensor::zeros(&[b, h]);
        let mut out = Tensor::zeros(&[b, time, h]);

        for t in 0..time {
            let x_t = step_slice(x, t)?;
            // z = x_t·W_xᵀ + h·W_hᵀ + b  → [B, 4H]
            let mut z = x_t.matmul_transpose_b_with(&self.w_x.value, &self.par)?;
            let zh = h_t.matmul_transpose_b_with(&self.w_h.value, &self.par)?;
            z.add_assign(&zh)?;
            let z = z.add_row_broadcast(&self.b.value)?;

            let mut i_g = Tensor::zeros(&[b, h]);
            let mut f_g = Tensor::zeros(&[b, h]);
            let mut g_g = Tensor::zeros(&[b, h]);
            let mut o_g = Tensor::zeros(&[b, h]);
            {
                let zd = z.data();
                for n in 0..b {
                    let row = &zd[n * 4 * h..(n + 1) * 4 * h];
                    for k in 0..h {
                        i_g.data_mut()[n * h + k] = sigmoid_scalar(row[k]);
                        f_g.data_mut()[n * h + k] = sigmoid_scalar(row[h + k]);
                        g_g.data_mut()[n * h + k] = row[2 * h + k].tanh();
                        o_g.data_mut()[n * h + k] = sigmoid_scalar(row[3 * h + k]);
                    }
                }
            }
            let c_new = f_g.mul(&c_t)?.add(&i_g.mul(&g_g)?)?;
            let tanh_c = c_new.map(f32::tanh);
            let h_new = o_g.mul(&tanh_c)?;

            if mode == Mode::Train {
                self.cache.push(StepCache {
                    x: x_t,
                    h_prev: h_t.clone(),
                    c_prev: c_t.clone(),
                    i: i_g,
                    f: f_g,
                    g: g_g,
                    o: o_g,
                    tanh_c: tanh_c.clone(),
                });
            }
            step_write(&mut out, t, &h_new);
            h_t = h_new;
            c_t = c_new;
        }
        Ok(out)
    }

    /// [`LstmCell::forward_seq`] running entirely in workspace buffers:
    /// after one warm-up call per input shape the steady state performs no
    /// heap allocation. Results are bitwise identical to `forward_seq` —
    /// the fused gate update evaluates the exact same scalar expressions
    /// in the same order as the tensor-op path.
    ///
    /// # Errors
    ///
    /// Returns an error if the input rank or feature width is wrong.
    // darlint: hot
    pub fn forward_seq_into(
        &mut self,
        x: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward_seq(x, mode);
        }
        if x.rank() != 3 || x.dims()[2] != self.input_size {
            return Err(NnError::InvalidConfig(format!(
                "lstm expects [batch, time, {}], got {:?}",
                self.input_size,
                x.dims()
            )));
        }
        let (b, time) = (x.dims()[0], x.dims()[1]);
        let h = self.hidden_size;
        self.cache.clear();
        // Checked out once; reused across all timesteps.
        let mut x_t = ws.checkout(&[b, self.input_size]);
        let mut z = ws.checkout(&[b, 4 * h]);
        let mut zh = ws.checkout(&[b, 4 * h]);
        let mut h_t = ws.checkout(&[b, h]);
        let mut c_t = ws.checkout(&[b, h]);
        let mut out = ws.checkout(&[b, time, h]);

        for t in 0..time {
            step_slice_into(x, t, &mut x_t);
            // z = x_t·W_xᵀ + h·W_hᵀ + b  → [B, 4H]
            x_t.matmul_transpose_b_into(&self.w_x.value, &self.par, &mut z)?;
            h_t.matmul_transpose_b_into(&self.w_h.value, &self.par, &mut zh)?;
            z.add_assign(&zh)?;
            z.add_row_broadcast_assign(&self.b.value)?;

            // Fused gate update: same per-element expressions, in the same
            // order, as the allocating path's gate tensors.
            let zd = z.data();
            let hd = h_t.data_mut();
            let cd = c_t.data_mut();
            for n in 0..b {
                let row = &zd[n * 4 * h..(n + 1) * 4 * h];
                for k in 0..h {
                    let i_g = sigmoid_scalar(row[k]);
                    let f_g = sigmoid_scalar(row[h + k]);
                    let g_g = row[2 * h + k].tanh();
                    let o_g = sigmoid_scalar(row[3 * h + k]);
                    let c_new = f_g * cd[n * h + k] + i_g * g_g;
                    let tanh_c = c_new.tanh();
                    hd[n * h + k] = o_g * tanh_c;
                    cd[n * h + k] = c_new;
                }
            }
            step_write(&mut out, t, &h_t);
        }
        ws.restore(x_t);
        ws.restore(z);
        ws.restore(zh);
        ws.restore(h_t);
        ws.restore(c_t);
        Ok(out)
    }

    /// Backpropagates through time. `grad_h` is `dL/d(hidden)` for every
    /// timestep, shape `[batch, time, hidden]`. Returns `dL/d(input)` of
    /// shape `[batch, time, features]`, accumulating weight gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training forward pass
    /// preceded this call.
    pub fn backward_seq(&mut self, grad_h: &Tensor) -> Result<Tensor> {
        if self.cache.is_empty() {
            return Err(NnError::NoForwardCache { layer: "LstmCell" });
        }
        let time = self.cache.len();
        let (b, h) = (self.cache[0].h_prev.dims()[0], self.hidden_size);
        if grad_h.dims() != [b, time, h] {
            return Err(NnError::Tensor(darnet_tensor::TensorError::ShapeMismatch {
                left: grad_h.dims().to_vec(),
                right: vec![b, time, h],
            }));
        }
        let mut dx_all = Tensor::zeros(&[b, time, self.input_size]);
        let mut dh_next = Tensor::zeros(&[b, h]);
        let mut dc_next = Tensor::zeros(&[b, h]);

        for t in (0..time).rev() {
            let cache = &self.cache[t];
            let mut dh = step_slice(grad_h, t)?;
            dh.add_assign(&dh_next)?;

            // dL/do = dh * tanh(c); dL/dc += dh * o * (1 - tanh²(c))
            let d_o = dh.mul(&cache.tanh_c)?;
            let mut dc = dh.mul(&cache.o)?.mul(&cache.tanh_c.map(|v| 1.0 - v * v))?;
            dc.add_assign(&dc_next)?;

            let d_i = dc.mul(&cache.g)?;
            let d_f = dc.mul(&cache.c_prev)?;
            let d_g = dc.mul(&cache.i)?;

            // Pre-activation gradients.
            let dz_i = d_i.mul(&cache.i.map(|v| v * (1.0 - v)))?;
            let dz_f = d_f.mul(&cache.f.map(|v| v * (1.0 - v)))?;
            let dz_g = d_g.mul(&cache.g.map(|v| 1.0 - v * v))?;
            let dz_o = d_o.mul(&cache.o.map(|v| v * (1.0 - v)))?;

            // Pack [B, 4H] in gate order i, f, g, o.
            let mut dz = Tensor::zeros(&[b, 4 * h]);
            for n in 0..b {
                let row = &mut dz.data_mut()[n * 4 * h..(n + 1) * 4 * h];
                row[..h].copy_from_slice(&dz_i.data()[n * h..(n + 1) * h]);
                row[h..2 * h].copy_from_slice(&dz_f.data()[n * h..(n + 1) * h]);
                row[2 * h..3 * h].copy_from_slice(&dz_g.data()[n * h..(n + 1) * h]);
                row[3 * h..4 * h].copy_from_slice(&dz_o.data()[n * h..(n + 1) * h]);
            }

            // Weight gradients.
            let dwx = dz.matmul_transpose_a_with(&cache.x, &self.par)?;
            self.w_x.grad.add_assign(&dwx)?;
            let dwh = dz.matmul_transpose_a_with(&cache.h_prev, &self.par)?;
            self.w_h.grad.add_assign(&dwh)?;
            let db = dz.sum_axis0()?;
            self.b.grad.add_assign(&db)?;

            // Input and recurrent gradients.
            let dx_t = dz.matmul_with(&self.w_x.value, &self.par)?;
            step_write(&mut dx_all, t, &dx_t);
            dh_next = dz.matmul_with(&self.w_h.value, &self.par)?;
            dc_next = dc.mul(&cache.f)?;
        }
        Ok(dx_all)
    }

    /// Mutable access to the cell's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_x, &mut self.w_h, &mut self.b]
    }
}

/// Reverses a `[batch, time, feat]` tensor along the time axis.
// darlint: cold — owned-output twin of reverse_time_into; used by the allocating forward_seq and the training backward pass
fn reverse_time(x: &Tensor) -> Tensor {
    let d = x.dims();
    let (b, time, f) = (d[0], d[1], d[2]);
    let mut out = Tensor::zeros(d);
    for n in 0..b {
        for t in 0..time {
            let src = (n * time + t) * f;
            let dst = (n * time + (time - 1 - t)) * f;
            out.data_mut()[dst..dst + f].copy_from_slice(&x.data()[src..src + f]);
        }
    }
    out
}

/// [`reverse_time`] writing into a caller-provided same-shape buffer.
// darlint: hot
fn reverse_time_into(x: &Tensor, out: &mut Tensor) {
    let d = x.dims();
    let (b, time, f) = (d[0], d[1], d[2]);
    debug_assert_eq!(x.dims(), out.dims());
    let od = out.data_mut();
    let id = x.data();
    for n in 0..b {
        for t in 0..time {
            let src = (n * time + t) * f;
            let dst = (n * time + (time - 1 - t)) * f;
            od[dst..dst + f].copy_from_slice(&id[src..src + f]);
        }
    }
}

/// A bidirectional LSTM layer: a forward cell and a backward cell whose
/// per-timestep outputs are concatenated, producing `[batch, time,
/// 2·hidden]`. This mirrors the paper's description of each LSTM "cell
/// propagating its output forward and backward through time".
#[derive(Debug)]
pub struct BiLstm {
    fwd: LstmCell,
    bwd: LstmCell,
    hidden_size: usize,
    /// Per-direction workspaces: the two cells may run on scoped threads,
    /// so each direction needs its own buffer pool.
    ws_fwd: Workspace,
    ws_bwd: Workspace,
    par: Parallelism,
}

impl BiLstm {
    /// Creates a bidirectional LSTM layer.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut SplitMix64) -> Self {
        BiLstm {
            fwd: LstmCell::new(input_size, hidden_size, rng),
            bwd: LstmCell::new(input_size, hidden_size, rng),
            hidden_size,
            ws_fwd: Workspace::new(),
            ws_bwd: Workspace::new(),
            par: Parallelism::serial(),
        }
    }

    /// Output feature width (`2 × hidden`).
    pub fn output_size(&self) -> usize {
        2 * self.hidden_size
    }

    /// Installs a parallel execution policy: the two direction cells run on
    /// scoped threads (they touch disjoint state) and each cell's matrix
    /// products use the policy. Results are bitwise identical to serial.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
        self.fwd.set_parallelism(par);
        self.bwd.set_parallelism(par);
    }

    /// Forward pass over `[batch, time, features]`, returning `[batch,
    /// time, 2·hidden]`.
    ///
    /// # Errors
    ///
    /// Propagates cell errors (bad input shape).
    // darlint: cold — owned-output twin of forward_seq_into; Train mode caches directional activations and allocates by design
    pub fn forward_seq(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let BiLstm { fwd, bwd, par, .. } = self;
        let mut run_fwd = move || fwd.forward_seq(x, mode);
        let mut run_bwd = move || -> Result<Tensor> {
            let x_rev = reverse_time(x);
            Ok(reverse_time(&bwd.forward_seq(&x_rev, mode)?))
        };
        let (hf, hb) = if par.is_serial() {
            (run_fwd(), run_bwd())
        } else {
            std::thread::scope(|scope| {
                let handle = scope.spawn(run_fwd);
                let hb = run_bwd();
                (join_worker(handle, "BiLstm::forward_seq"), hb)
            })
        };
        // Concat along feature axis (axis 2).
        Ok(Tensor::concat(&[&hf?, &hb?], 2)?)
    }

    /// [`BiLstm::forward_seq`] on workspace buffers: each direction runs in
    /// its own pool (the cells may execute on scoped threads) and the final
    /// concatenation lands in a buffer checked out from the caller's `ws`.
    ///
    /// # Errors
    ///
    /// Propagates cell errors (bad input shape).
    // darlint: hot
    pub fn forward_seq_into(
        &mut self,
        x: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward_seq(x, mode);
        }
        let (hf, hb) = {
            let BiLstm {
                fwd,
                bwd,
                ws_fwd,
                ws_bwd,
                par,
                ..
            } = self;
            let mut run_fwd = move || fwd.forward_seq_into(x, mode, ws_fwd);
            let mut run_bwd = move || -> Result<TensorView> {
                let mut x_rev = ws_bwd.checkout(x.dims());
                reverse_time_into(x, &mut x_rev);
                let h_rev = bwd.forward_seq_into(&x_rev, mode, ws_bwd)?;
                ws_bwd.restore(x_rev);
                let mut h_out = ws_bwd.checkout(h_rev.dims());
                reverse_time_into(&h_rev, &mut h_out);
                ws_bwd.restore(h_rev);
                Ok(h_out)
            };
            if par.is_serial() {
                (run_fwd(), run_bwd())
            } else {
                std::thread::scope(|scope| {
                    let handle = scope.spawn(run_fwd);
                    let hb = run_bwd();
                    (join_worker(handle, "BiLstm::forward_seq_into"), hb)
                })
            }
        };
        let (hf, hb) = (hf?, hb?);
        let d = hf.dims();
        let mut out = ws.checkout(&[d[0], d[1], 2 * self.hidden_size]);
        Tensor::concat_into(&[&hf, &hb], 2, &mut out)?;
        self.ws_fwd.restore(hf);
        self.ws_bwd.restore(hb);
        Ok(out)
    }

    /// Backward pass; `grad` has shape `[batch, time, 2·hidden]`.
    ///
    /// # Errors
    ///
    /// Propagates cell errors.
    pub fn backward_seq(&mut self, grad: &Tensor) -> Result<Tensor> {
        let h = self.hidden_size;
        let mut parts = grad.split(2, &[h, h])?;
        let (grad_fwd, grad_bwd) = match (parts.pop(), parts.pop()) {
            (Some(bwd), Some(fwd)) => (fwd, bwd),
            _ => {
                return Err(NnError::InvalidConfig(
                    "BiLstm::backward_seq: split produced fewer than two parts".into(),
                ))
            }
        };
        let BiLstm { fwd, bwd, par, .. } = self;
        let mut run_fwd = move || fwd.backward_seq(&grad_fwd);
        let mut run_bwd = move || -> Result<Tensor> {
            let g_rev = reverse_time(&grad_bwd);
            Ok(reverse_time(&bwd.backward_seq(&g_rev)?))
        };
        let (dx_f, dx_b) = if par.is_serial() {
            (run_fwd(), run_bwd())
        } else {
            std::thread::scope(|scope| {
                let handle = scope.spawn(run_fwd);
                let dx_b = run_bwd();
                (join_worker(handle, "BiLstm::backward_seq"), dx_b)
            })
        };
        let mut dx = dx_f?;
        dx.add_assign(&dx_b?)?;
        Ok(dx)
    }

    /// Mutable access to both cells' parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.fwd.params_mut();
        p.extend(self.bwd.params_mut());
        p
    }
}

/// The paper's IMU-sequence architecture: stacked bidirectional LSTM layers
/// followed by mean-over-time pooling and a softmax classification head.
///
/// The DarNet configuration is 2 layers × 64 hidden units over 20-step
/// windows (4 Hz × 5 s).
#[derive(Debug)]
pub struct DeepBiLstmClassifier {
    layers: Vec<BiLstm>,
    head_w: Param,                        // [classes, 2H]
    head_b: Param,                        // [classes]
    pooled_cache: Option<(usize, usize)>, // (batch, time)
    last_hidden: Option<Tensor>,          // [B, T, 2H] from the top BiLSTM
    classes: usize,
    par: Parallelism,
}

impl DeepBiLstmClassifier {
    /// Creates a stacked bidirectional LSTM classifier.
    ///
    /// * `input_size` — features per timestep (e.g. IMU channels),
    /// * `hidden_size` — hidden units per direction,
    /// * `depth` — number of stacked BiLSTM layers (paper: 2),
    /// * `classes` — output classes.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(
        input_size: usize,
        hidden_size: usize,
        depth: usize,
        classes: usize,
        rng: &mut SplitMix64,
    ) -> Self {
        assert!(depth > 0, "classifier needs at least one BiLSTM layer");
        let mut layers = Vec::with_capacity(depth);
        let mut in_size = input_size;
        for _ in 0..depth {
            layers.push(BiLstm::new(in_size, hidden_size, rng));
            in_size = 2 * hidden_size;
        }
        let bound = (1.0 / (2 * hidden_size) as f32).sqrt();
        let head_w = uniform_init(&[classes, 2 * hidden_size], -bound, bound, rng);
        DeepBiLstmClassifier {
            layers,
            head_w: Param::new(head_w),
            head_b: Param::new(Tensor::zeros(&[classes])),
            pooled_cache: None,
            last_hidden: None,
            classes,
            par: Parallelism::serial(),
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Installs a parallel execution policy on every stacked BiLSTM layer
    /// and the classifier head.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
        for layer in &mut self.layers {
            layer.set_parallelism(par);
        }
    }

    /// Forward pass producing logits `[batch, classes]` from `[batch, time,
    /// features]` windows.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    // darlint: cold — owned-output twin of forward_into; Train mode caches activations and allocates by design
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward_seq(&h, mode)?;
        }
        let d = h.dims();
        let (b, time, feat) = (d[0], d[1], d[2]);
        // Mean over time → [B, 2H].
        let mut pooled = Tensor::zeros(&[b, feat]);
        for n in 0..b {
            for t in 0..time {
                let src = (n * time + t) * feat;
                for k in 0..feat {
                    pooled.data_mut()[n * feat + k] += h.data()[src + k];
                }
            }
        }
        pooled = pooled.scale(1.0 / time as f32);
        if mode == Mode::Train {
            self.pooled_cache = Some((b, time));
            self.last_hidden = Some(pooled.clone());
        }
        let logits = pooled.matmul_transpose_b_with(&self.head_w.value, &self.par)?;
        Ok(logits.add_row_broadcast(&self.head_b.value)?)
    }

    /// [`DeepBiLstmClassifier::forward`] on workspace buffers; bitwise
    /// identical logits with zero steady-state heap allocation.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    // darlint: hot
    pub fn forward_into(
        &mut self,
        x: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(x, mode);
        }
        let mut layers = self.layers.iter_mut();
        let mut h = match layers.next() {
            Some(first) => first.forward_seq_into(x, mode, ws)?,
            None => {
                // Unreachable by construction (`new` rejects depth 0), but
                // degrade gracefully rather than panic.
                let mut copy = ws.checkout(x.dims());
                x.copy_into(&mut copy)?;
                copy
            }
        };
        for layer in layers {
            let y = layer.forward_seq_into(&h, mode, ws)?;
            ws.restore(h);
            h = y;
        }
        let d = h.dims();
        let (b, time, feat) = (d[0], d[1], d[2]);
        // Mean over time → [B, 2H]; the checkout is zero-filled, so the
        // accumulation matches the allocating path exactly.
        let mut pooled = ws.checkout(&[b, feat]);
        {
            let pd = pooled.data_mut();
            let hd = h.data();
            for n in 0..b {
                for t in 0..time {
                    let src = (n * time + t) * feat;
                    for k in 0..feat {
                        pd[n * feat + k] += hd[src + k];
                    }
                }
            }
            let inv_t = 1.0 / time as f32;
            for v in pd.iter_mut() {
                *v *= inv_t;
            }
        }
        ws.restore(h);
        let mut logits = ws.checkout(&[b, self.classes]);
        pooled.matmul_transpose_b_into(&self.head_w.value, &self.par, &mut logits)?;
        ws.restore(pooled);
        logits.add_row_broadcast_assign(&self.head_b.value)?;
        Ok(logits)
    }

    /// Backward pass from `dL/d(logits)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a prior training forward.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<()> {
        let (b, time) = self.pooled_cache.ok_or(NnError::NoForwardCache {
            layer: "DeepBiLstmClassifier",
        })?;
        let pooled = self.last_hidden.as_ref().ok_or(NnError::NoForwardCache {
            layer: "DeepBiLstmClassifier",
        })?;
        // Head gradients.
        let dw = grad_logits.matmul_transpose_a(pooled)?;
        self.head_w.grad.add_assign(&dw)?;
        let db = grad_logits.sum_axis0()?;
        self.head_b.grad.add_assign(&db)?;
        let dpooled = grad_logits.matmul(&self.head_w.value)?; // [B, 2H]

        // Spread mean-pool gradient over time.
        let feat = dpooled.dims()[1];
        let mut dh = Tensor::zeros(&[b, time, feat]);
        let inv_t = 1.0 / time as f32;
        for n in 0..b {
            for t in 0..time {
                let dst = (n * time + t) * feat;
                for k in 0..feat {
                    dh.data_mut()[dst + k] = dpooled.data()[n * feat + k] * inv_t;
                }
            }
        }
        let mut g = dh;
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward_seq(&g)?;
        }
        Ok(())
    }

    /// Mutable access to all parameters (LSTM layers + head).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = Vec::new();
        for layer in &mut self.layers {
            p.extend(layer.params_mut());
        }
        p.push(&mut self.head_w);
        p.push(&mut self.head_b);
        p
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::{Adam, Optimizer};

    fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = SplitMix64::new(seed);
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        t
    }

    #[test]
    fn step_slice_and_write_roundtrip() {
        let x = random_tensor(&[2, 3, 4], 1);
        let mut y = Tensor::zeros(&[2, 3, 4]);
        for t in 0..3 {
            let s = step_slice(&x, t).unwrap();
            assert_eq!(s.dims(), &[2, 4]);
            step_write(&mut y, t, &s);
        }
        assert_eq!(x, y);
    }

    #[test]
    fn reverse_time_is_involution() {
        let x = random_tensor(&[2, 5, 3], 2);
        assert_eq!(reverse_time(&reverse_time(&x)), x);
        // And actually reverses.
        let r = reverse_time(&x);
        assert_eq!(step_slice(&r, 0).unwrap(), step_slice(&x, 4).unwrap());
    }

    #[test]
    fn lstm_forward_shape() {
        let mut rng = SplitMix64::new(3);
        let mut cell = LstmCell::new(4, 6, &mut rng);
        let x = random_tensor(&[2, 5, 4], 4);
        let h = cell.forward_seq(&x, Mode::Eval).unwrap();
        assert_eq!(h.dims(), &[2, 5, 6]);
        assert!(h.all_finite());
        // Hidden values bounded by tanh-ish dynamics.
        assert!(h.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_gradcheck_input() {
        let mut rng = SplitMix64::new(5);
        let mut cell = LstmCell::new(3, 4, &mut rng);
        let x = random_tensor(&[2, 4, 3], 6);
        let h = cell.forward_seq(&x, Mode::Train).unwrap();
        let dx = cell.backward_seq(&Tensor::ones(h.dims())).unwrap();
        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(4) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = cell.forward_seq(&xp, Mode::Eval).unwrap().sum();
            let ym = cell.forward_seq(&xm, Mode::Eval).unwrap().sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 2e-2,
                "input grad {i}: fd {fd} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn lstm_gradcheck_weights() {
        let mut rng = SplitMix64::new(7);
        let mut cell = LstmCell::new(2, 3, &mut rng);
        let x = random_tensor(&[1, 3, 2], 8);
        cell.forward_seq(&x, Mode::Train).unwrap();
        let h_dims = [1, 3, 3];
        cell.backward_seq(&Tensor::ones(&h_dims)).unwrap();
        let wx_grad = cell.w_x.grad.clone();
        let eps = 1e-2f32;
        for i in (0..cell.w_x.value.len()).step_by(3) {
            let orig = cell.w_x.value.data()[i];
            cell.w_x.value.data_mut()[i] = orig + eps;
            let yp = cell.forward_seq(&x, Mode::Eval).unwrap().sum();
            cell.w_x.value.data_mut()[i] = orig - eps;
            let ym = cell.forward_seq(&x, Mode::Eval).unwrap().sum();
            cell.w_x.value.data_mut()[i] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - wx_grad.data()[i]).abs() < 2e-2,
                "w_x grad {i}: fd {fd} vs {}",
                wx_grad.data()[i]
            );
        }
    }

    #[test]
    fn bilstm_output_concatenates_directions() {
        let mut rng = SplitMix64::new(9);
        let mut bi = BiLstm::new(3, 5, &mut rng);
        let x = random_tensor(&[2, 4, 3], 10);
        let h = bi.forward_seq(&x, Mode::Eval).unwrap();
        assert_eq!(h.dims(), &[2, 4, 10]);
        assert_eq!(bi.output_size(), 10);
    }

    #[test]
    fn bilstm_gradcheck_input() {
        let mut rng = SplitMix64::new(11);
        let mut bi = BiLstm::new(2, 3, &mut rng);
        let x = random_tensor(&[1, 3, 2], 12);
        let h = bi.forward_seq(&x, Mode::Train).unwrap();
        let dx = bi.backward_seq(&Tensor::ones(h.dims())).unwrap();
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = bi.forward_seq(&xp, Mode::Eval).unwrap().sum();
            let ym = bi.forward_seq(&xm, Mode::Eval).unwrap().sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 2e-2,
                "grad {i}: fd {fd} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn concurrent_directions_match_serial_bitwise() {
        let mut serial = BiLstm::new(3, 5, &mut SplitMix64::new(21));
        let mut parallel = BiLstm::new(3, 5, &mut SplitMix64::new(21));
        parallel.set_parallelism(Parallelism::new(4).with_min_work(1));
        let x = random_tensor(&[2, 6, 3], 22);
        let hs = serial.forward_seq(&x, Mode::Train).unwrap();
        let hp = parallel.forward_seq(&x, Mode::Train).unwrap();
        assert_eq!(hs, hp);
        let grad = random_tensor(hs.dims(), 23);
        let ds = serial.backward_seq(&grad).unwrap();
        let dp = parallel.backward_seq(&grad).unwrap();
        assert_eq!(ds, dp);
    }

    #[test]
    fn classifier_learns_direction_of_drift() {
        // Two classes: sequences drifting up vs. drifting down. A BiLSTM
        // must separate them quickly.
        let mut rng = SplitMix64::new(13);
        let mut model = DeepBiLstmClassifier::new(1, 8, 2, 2, &mut rng);
        let mut data_rng = SplitMix64::new(14);
        let make_batch = |rng: &mut SplitMix64| {
            let b = 8;
            let t = 6;
            let mut x = Tensor::zeros(&[b, t, 1]);
            let mut labels = Vec::with_capacity(b);
            for n in 0..b {
                let up = rng.next_f32() < 0.5;
                labels.push(if up { 1usize } else { 0 });
                let slope = if up { 0.3 } else { -0.3 };
                for step in 0..t {
                    let noise = rng.uniform(-0.05, 0.05);
                    x.data_mut()[n * t + step] = slope * step as f32 + noise;
                }
            }
            (x, labels)
        };
        let mut opt = Adam::new(0.02);
        let mut final_loss = f32::INFINITY;
        for _ in 0..60 {
            let (x, labels) = make_batch(&mut data_rng);
            let logits = model.forward(&x, Mode::Train).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            model.backward(&grad).unwrap();
            opt.step(&mut model.params_mut()).unwrap();
            final_loss = loss;
        }
        assert!(
            final_loss < 0.2,
            "LSTM classifier failed to learn: {final_loss}"
        );
    }

    #[test]
    fn classifier_param_count_scales_with_depth() {
        let mut rng = SplitMix64::new(15);
        let mut shallow = DeepBiLstmClassifier::new(4, 8, 1, 3, &mut rng);
        let mut deep = DeepBiLstmClassifier::new(4, 8, 2, 3, &mut rng);
        assert!(deep.param_count() > shallow.param_count());
        assert_eq!(deep.classes(), 3);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = SplitMix64::new(16);
        let mut cell = LstmCell::new(2, 2, &mut rng);
        assert!(matches!(
            cell.backward_seq(&Tensor::zeros(&[1, 1, 2])),
            Err(NnError::NoForwardCache { .. })
        ));
        let mut model = DeepBiLstmClassifier::new(2, 2, 1, 2, &mut rng);
        assert!(model.backward(&Tensor::zeros(&[1, 2])).is_err());
    }
}
