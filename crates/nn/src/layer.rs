//! The [`Layer`] trait and simple stateless layers (activations, flatten).

use darnet_tensor::{Parallelism, Tensor, TensorView, Workspace};

use crate::error::NnError;
use crate::param::Param;
use crate::Result;

/// Whether a forward pass is part of training (dropout active, caches
/// retained for backward) or inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: stochastic layers are active and activations are cached.
    Train,
    /// Inference: deterministic, no gradient bookkeeping required.
    Eval,
}

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`Layer::forward`] and replay it
/// in [`Layer::backward`], which receives `dL/d(output)` and must return
/// `dL/d(input)` while *accumulating* parameter gradients into its
/// [`Param`]s.
///
/// Layers are `Send` so whole sub-networks can be moved across (or borrowed
/// by) scoped worker threads when a model runs its branches concurrently.
pub trait Layer: Send {
    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Computes the layer output into a buffer checked out from `ws`,
    /// avoiding heap allocation once the workspace is warm.
    ///
    /// The returned [`TensorView`] is bitwise identical to what
    /// [`Layer::forward`] would produce; callers should hand it back via
    /// [`Workspace::restore`] when done so the buffer is reused. The
    /// caller's `input` is never consumed. Implementations only take the
    /// workspace path in [`Mode::Eval`]; in [`Mode::Train`] they defer to
    /// `forward` (training must cache activations, which requires owned
    /// allocations anyway). The default implementation just calls
    /// `forward`, so custom layers remain correct without opting in.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        let _ = ws;
        self.forward(input, mode)
    }

    /// Backpropagates `grad_out = dL/d(output)`, accumulating parameter
    /// gradients, and returns `dL/d(input)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if called before `forward`, or a
    /// tensor error on shape mismatch.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Mutable references to the layer's trainable parameters (empty for
    /// stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Total number of scalar trainable weights.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Installs a parallel execution policy for this layer's tensor kernels
    /// (and, for containers, every child layer). Stateless layers ignore it;
    /// results never depend on the installed policy.
    fn set_parallelism(&mut self, _par: Parallelism) {}
}

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

/// Rectified linear unit: `max(0, x)` elementwise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    // darlint: cold — owned-output twin of forward_into; Train mode caches the mask and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(input.map(|v| v.max(0.0)))
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let mut out = ws.checkout(input.dims());
        input.map_into(|v| v.max(0.0), &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Relu" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::Tensor(
                darnet_tensor::TensorError::InvalidArgument("relu backward shape mismatch".into()),
            ));
        }
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Relu"
    }
}

// ---------------------------------------------------------------------
// Sigmoid
// ---------------------------------------------------------------------

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { output: None }
    }
}

/// Joins a scoped worker and converts a worker panic into a typed
/// [`NnError::WorkerPanicked`] instead of re-panicking on the caller's
/// thread (the hot paths are panic-free by project invariant; see
/// DESIGN.md §11).
pub(crate) fn join_worker<T>(
    handle: std::thread::ScopedJoinHandle<'_, Result<T>>,
    layer: &'static str,
) -> Result<T> {
    handle
        .join()
        .map_err(|_| NnError::WorkerPanicked { layer })?
}

/// Numerically stable scalar sigmoid.
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(sigmoid_scalar);
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        Ok(out)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let mut out = ws.checkout(input.dims());
        input.map_into(sigmoid_scalar, &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let out = self
            .output
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Sigmoid" })?;
        Ok(grad_out.zip(out, |g, y| g * y * (1.0 - y))?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

// ---------------------------------------------------------------------
// Tanh
// ---------------------------------------------------------------------

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        Ok(out)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let mut out = ws.checkout(input.dims());
        input.map_into(f32::tanh, &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let out = self
            .output
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Tanh" })?;
        Ok(grad_out.zip(out, |g, y| g * (1.0 - y * y))?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

// ---------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------

/// Flattens `[batch, ...]` to `[batch, features]`, remembering the original
/// shape for backward.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    // darlint: cold — owned-output twin of forward_into; caches input dims for backward and allocates by design
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() < 1 {
            return Err(NnError::InvalidConfig("flatten needs rank >= 1".into()));
        }
        self.input_dims = Some(input.dims().to_vec());
        let batch = input.dims()[0];
        let feats = input.len() / batch.max(1);
        Ok(input.reshape(&[batch, feats])?)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        if input.rank() < 1 {
            return Err(NnError::InvalidConfig("flatten needs rank >= 1".into()));
        }
        let batch = input.dims()[0];
        let feats = input.len() / batch.max(1);
        let mut out = ws.checkout(&[batch, feats]);
        out.data_mut().copy_from_slice(input.data());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Flatten" })?;
        Ok(grad_out.reshape(dims)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darnet_tensor::Tensor;

    #[test]
    fn relu_zeroes_negatives_and_gates_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 2.0, 0.0, 3.0]);
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 3.0]);
        let g = relu.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_backward_without_forward_errors() {
        let mut relu = Relu::new();
        assert!(matches!(
            relu.backward(&Tensor::ones(&[1])),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn sigmoid_matches_definition_and_derivative() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_slice(&[0.0]);
        let y = s.forward(&x, Mode::Train).unwrap();
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let g = s.backward(&Tensor::ones(&[1])).unwrap();
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        let y = sigmoid_scalar(-100.0);
        assert!((0.0..1e-6).contains(&y));
        let y2 = sigmoid_scalar(100.0);
        assert!(y2 <= 1.0 && y2 > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_derivative_at_zero_is_one() {
        let mut t = Tanh::new();
        let x = Tensor::from_slice(&[0.0]);
        t.forward(&x, Mode::Train).unwrap();
        let g = t.backward(&Tensor::ones(&[1])).unwrap();
        assert!((g.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flatten_roundtrips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&Tensor::zeros(&[2, 60])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn stateless_layers_report_no_params() {
        assert_eq!(Relu::new().params_mut().len(), 0);
        assert_eq!(Flatten::new().params_mut().len(), 0);
        assert_eq!(Relu::new().param_count(), 0);
    }
}
