//! Loss functions: softmax cross-entropy for classification and the L2
//! distillation loss used to train the privacy-preserving dCNN students.

use darnet_tensor::Tensor;

use crate::error::NnError;
use crate::Result;

/// Row-wise numerically stable softmax of a `[batch, classes]` tensor.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    let mut out = logits.clone();
    softmax_inplace(&mut out)?;
    Ok(out)
}

/// Row-wise softmax of a `[batch, classes]` tensor, overwriting the
/// logits in place. Bitwise-identical to [`softmax`] (they share the row
/// kernel); the workspace-backed inference path uses this to normalize a
/// checked-out logits buffer without allocating.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2.
// darlint: hot
pub fn softmax_inplace(logits: &mut Tensor) -> Result<()> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(darnet_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        }));
    }
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    let data = logits.data_mut();
    for i in 0..b {
        let row = &mut data[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(())
}

/// Row-wise log-softmax of a `[batch, classes]` tensor.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2.
pub fn log_softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(darnet_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        }));
    }
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    let data = out.data_mut();
    for i in 0..b {
        let row = &mut data[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
    Ok(out)
}

/// Softmax cross-entropy over a batch. Returns `(mean_loss,
/// grad_wrt_logits)` where the gradient is already divided by the batch
/// size, ready to feed into `backward`.
///
/// # Errors
///
/// Returns [`NnError::LabelBatchMismatch`] or [`NnError::LabelOutOfRange`]
/// on label problems, or a tensor error if `logits` is not rank 2.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(darnet_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        }));
    }
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != b {
        return Err(NnError::LabelBatchMismatch {
            batch: b,
            labels: labels.len(),
        });
    }
    for &l in labels {
        if l >= c {
            return Err(NnError::LabelOutOfRange {
                label: l,
                classes: c,
            });
        }
    }
    let probs = softmax(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let gd = grad.data_mut();
    let inv_b = 1.0 / b as f32;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.data()[i * c + label].max(1e-12);
        loss -= p.ln();
        gd[i * c + label] -= 1.0;
    }
    for v in gd.iter_mut() {
        *v *= inv_b;
    }
    Ok((loss * inv_b, grad))
}

/// L2 distillation loss between a student's and a teacher's output vectors:
/// `mean over batch of ||student - teacher||²`, with gradient with respect
/// to the student output. This is the loss the paper uses to train the
/// down-sampled dCNN models without labels (§4.3).
///
/// # Errors
///
/// Returns a tensor error if the shapes differ.
pub fn l2_distill_loss(student: &Tensor, teacher: &Tensor) -> Result<(f32, Tensor)> {
    let diff = student.sub(teacher)?;
    let b = if student.rank() >= 1 {
        student.dims()[0].max(1)
    } else {
        1
    };
    let inv_b = 1.0 / b as f32;
    let loss = diff.sum_squares() * inv_b;
    let grad = diff.scale(2.0 * inv_b);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.data().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.add_scalar(1000.0);
        let pa = softmax(&a).unwrap();
        let pb = softmax(&b).unwrap();
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        assert!(pb.all_finite());
    }

    #[test]
    fn log_softmax_agrees_with_log_of_softmax() {
        let logits = Tensor::from_vec(vec![0.5, -0.5, 2.0, 1.0], &[2, 2]).unwrap();
        let ls = log_softmax(&logits).unwrap();
        let p = softmax(&logits).unwrap();
        for (a, b) in ls.data().iter().zip(p.data()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_on_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0], &[1, 3]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-5);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2, 0.9, -0.4], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels).unwrap();
            let (lm, _) = softmax_cross_entropy(&minus, &labels).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[i]).abs() < 1e-3,
                "index {i}: fd {fd} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0]),
            Err(NnError::LabelBatchMismatch { .. })
        ));
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn distill_loss_zero_when_matching() {
        let t = Tensor::from_vec(vec![0.25; 8], &[2, 4]).unwrap();
        let (loss, grad) = l2_distill_loss(&t, &t).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn distill_gradient_matches_finite_difference() {
        let student = Tensor::from_vec(vec![0.1, 0.4, -0.2, 0.8], &[2, 2]).unwrap();
        let teacher = Tensor::from_vec(vec![0.0, 0.5, 0.5, 0.0], &[2, 2]).unwrap();
        let (_, grad) = l2_distill_loss(&student, &teacher).unwrap();
        let eps = 1e-3;
        for i in 0..student.len() {
            let mut plus = student.clone();
            plus.data_mut()[i] += eps;
            let mut minus = student.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = l2_distill_loss(&plus, &teacher).unwrap();
            let (lm, _) = l2_distill_loss(&minus, &teacher).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - grad.data()[i]).abs() < 1e-2);
        }
    }
}
