//! Fully connected (dense) layer.

use darnet_tensor::{xavier_uniform, Parallelism, SplitMix64, Tensor, TensorView, Workspace};

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::Result;

/// A fully connected layer: `y = x · Wᵀ + b` over `[batch, in]` inputs.
///
/// Weights are `[out, in]` (row per output unit) initialized with Xavier
/// uniform; biases start at zero.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
    par: Parallelism,
}

impl Dense {
    /// Creates a dense layer mapping `in_features` to `out_features`.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SplitMix64) -> Self {
        let weight = xavier_uniform(&[out_features, in_features], in_features, out_features, rng);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            input: None,
            in_features,
            out_features,
            par: Parallelism::serial(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read access to the weight parameter (for inspection/serialization).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Replaces the weight value (e.g. when loading a trained model).
    ///
    /// # Errors
    ///
    /// Returns an error if the shape differs from `[out, in]`.
    pub fn set_weight(&mut self, w: Tensor) -> Result<()> {
        if w.dims() != [self.out_features, self.in_features] {
            return Err(NnError::InvalidConfig(format!(
                "weight shape {:?} does not match [{}, {}]",
                w.dims(),
                self.out_features,
                self.in_features
            )));
        }
        self.weight = Param::new(w);
        Ok(())
    }
}

impl Layer for Dense {
    // darlint: cold — owned-output twin of forward_into; Train mode caches the input and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::InvalidConfig(format!(
                "dense expects [batch, {}], got {:?}",
                self.in_features,
                input.dims()
            )));
        }
        if mode == Mode::Train {
            self.input = Some(input.clone());
        }
        let out = input.matmul_transpose_b_with(&self.weight.value, &self.par)?;
        Ok(out.add_row_broadcast(&self.bias.value)?)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::InvalidConfig(format!(
                "dense expects [batch, {}], got {:?}",
                self.in_features,
                input.dims()
            )));
        }
        let mut out = ws.checkout(&[input.dims()[0], self.out_features]);
        input.matmul_transpose_b_into(&self.weight.value, &self.par, &mut out)?;
        out.add_row_broadcast_assign(&self.bias.value)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .input
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "Dense" })?;
        // dW [out, in] = grad_outᵀ [out, batch] × input [batch, in]
        let dw = grad_out.matmul_transpose_a_with(input, &self.par)?;
        self.weight.grad.add_assign(&dw)?;
        // db = column sums of grad_out
        let db = grad_out.sum_axis0()?;
        self.bias.grad.add_assign(&db)?;
        // dx [batch, in] = grad_out [batch, out] × W [out, in]
        Ok(grad_out.matmul_with(&self.weight.value, &self.par)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check on a scalar loss L = sum(y).
    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut rng = SplitMix64::new(42);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7], &[2, 3]).unwrap();

        // Analytic gradients with dL/dy = 1.
        let _ = layer.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(&[2, 2]);
        let dx = layer.backward(&ones).unwrap();

        let eps = 1e-2f32;
        // Check input gradient.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = layer.forward(&xp, Mode::Eval).unwrap().sum();
            let ym = layer.forward(&xm, Mode::Eval).unwrap().sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 1e-2,
                "input grad {i}: fd {fd} vs {}",
                dx.data()[i]
            );
        }
        // Check weight gradient.
        let wgrad = layer.weight.grad.clone();
        for i in 0..layer.weight.value.len() {
            let orig = layer.weight.value.data()[i];
            layer.weight.value.data_mut()[i] = orig + eps;
            let yp = layer.forward(&x, Mode::Eval).unwrap().sum();
            layer.weight.value.data_mut()[i] = orig - eps;
            let ym = layer.forward(&x, Mode::Eval).unwrap().sum();
            layer.weight.value.data_mut()[i] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - wgrad.data()[i]).abs() < 1e-2,
                "weight grad {i}: fd {fd} vs {}",
                wgrad.data()[i]
            );
        }
    }

    #[test]
    fn forward_shape_is_batch_by_out() {
        let mut rng = SplitMix64::new(1);
        let mut layer = Dense::new(5, 7, &mut rng);
        let y = layer.forward(&Tensor::zeros(&[3, 5]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[3, 7]);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = SplitMix64::new(1);
        let mut layer = Dense::new(5, 7, &mut rng);
        assert!(layer.forward(&Tensor::zeros(&[3, 4]), Mode::Eval).is_err());
    }

    #[test]
    fn bias_is_applied() {
        let mut rng = SplitMix64::new(1);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.bias.value = Tensor::from_slice(&[1.0, -1.0]);
        let y = layer.forward(&Tensor::zeros(&[1, 2]), Mode::Eval).unwrap();
        assert_eq!(y.data(), &[1.0, -1.0]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = SplitMix64::new(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        let g1 = layer.weight.grad.clone();
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        let g2 = layer.weight.grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
    }

    #[test]
    fn set_weight_validates_shape() {
        let mut rng = SplitMix64::new(3);
        let mut layer = Dense::new(2, 3, &mut rng);
        assert!(layer.set_weight(Tensor::zeros(&[3, 2])).is_ok());
        assert!(layer.set_weight(Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn param_count_is_weights_plus_biases() {
        let mut rng = SplitMix64::new(4);
        let mut layer = Dense::new(10, 4, &mut rng);
        assert_eq!(layer.param_count(), 10 * 4 + 4);
    }
}
