//! Pooling layers: max, average, and global average pooling.

use darnet_tensor::{
    avg_pool2d_backward, avg_pool2d_into, avg_pool2d_with, max_pool2d_backward, max_pool2d_into,
    max_pool2d_with, Parallelism, PoolSpec, Tensor, TensorView, Workspace,
};

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::Result;

/// Max pooling over square windows.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: PoolSpec,
    argmax: Option<Vec<usize>>,
    input_dims: Option<Vec<usize>>,
    /// Reused argmax buffer for the workspace inference path (Eval mode
    /// never needs the indices, but the kernel still produces them).
    scratch_arg: Vec<usize>,
    par: Parallelism,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: PoolSpec::new(window, stride),
            argmax: None,
            input_dims: None,
            scratch_arg: Vec::new(),
            par: Parallelism::serial(),
        }
    }
}

impl Layer for MaxPool2d {
    // darlint: cold — owned-output twin of forward_into; Train mode caches argmax indices and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (out, arg) = max_pool2d_with(input, &self.spec, &self.par)?;
        if mode == Mode::Train {
            self.argmax = Some(arg);
            self.input_dims = Some(input.dims().to_vec());
        }
        Ok(out)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "max pool expects rank-4 input, got {:?}",
                input.dims()
            )));
        }
        let d = input.dims();
        let (oh, ow) = self.spec.output_size(d[2], d[3])?;
        let mut out = ws.checkout(&[d[0], d[1], oh, ow]);
        let mut arg = std::mem::take(&mut self.scratch_arg);
        let result = max_pool2d_into(input, &self.spec, &self.par, &mut out, &mut arg);
        self.scratch_arg = arg;
        result?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let arg = self
            .argmax
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "MaxPool2d" })?;
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "MaxPool2d" })?;
        Ok(max_pool2d_backward(grad_out, arg, dims)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }
}

/// Average pooling over square windows.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    spec: PoolSpec,
    input_dims: Option<Vec<usize>>,
    par: Parallelism,
}

impl AvgPool2d {
    /// Creates an average-pool layer with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: PoolSpec::new(window, stride),
            input_dims: None,
            par: Parallelism::serial(),
        }
    }
}

impl Layer for AvgPool2d {
    // darlint: cold — owned-output twin of forward_into; Train mode caches input dims and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = avg_pool2d_with(input, &self.spec, &self.par)?;
        if mode == Mode::Train {
            self.input_dims = Some(input.dims().to_vec());
        }
        Ok(out)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "avg pool expects rank-4 input, got {:?}",
                input.dims()
            )));
        }
        let d = input.dims();
        let (oh, ow) = self.spec.output_size(d[2], d[3])?;
        let mut out = ws.checkout(&[d[0], d[1], oh, ow]);
        avg_pool2d_into(input, &self.spec, &self.par, &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "AvgPool2d" })?;
        Ok(avg_pool2d_backward(grad_out, &self.spec, dims)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }
}

/// Global average pooling: `[batch, c, h, w] → [batch, c]`, averaging each
/// channel's spatial map. Inception-style networks use this in place of
/// large dense layers before the classifier head.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    // darlint: cold — owned-output twin of forward_into; Train mode caches input dims and allocates by design
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "global avg pool expects rank-4 input, got {:?}",
                input.dims()
            )));
        }
        let d = input.dims();
        let (b, c, h, w) = (d[0], d[1], d[2], d[3]);
        let hw = (h * w) as f32;
        let mut out = Tensor::zeros(&[b, c]);
        let od = out.data_mut();
        let id = input.data();
        for n in 0..b {
            for ch in 0..c {
                let base = (n * c + ch) * h * w;
                let sum: f32 = id[base..base + h * w].iter().sum();
                od[n * c + ch] = sum / hw;
            }
        }
        if mode == Mode::Train {
            self.input_dims = Some(d.to_vec());
        }
        Ok(out)
    }

    // darlint: hot
    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<TensorView> {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig(format!(
                "global avg pool expects rank-4 input, got {:?}",
                input.dims()
            )));
        }
        let d = input.dims();
        let (b, c, h, w) = (d[0], d[1], d[2], d[3]);
        let hw = (h * w) as f32;
        let mut out = ws.checkout(&[b, c]);
        let od = out.data_mut();
        let id = input.data();
        for n in 0..b {
            for ch in 0..c {
                let base = (n * c + ch) * h * w;
                let sum: f32 = id[base..base + h * w].iter().sum();
                od[n * c + ch] = sum / hw;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.input_dims.as_ref().ok_or(NnError::NoForwardCache {
            layer: "GlobalAvgPool",
        })?;
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if grad_out.dims() != [b, c] {
            return Err(NnError::Tensor(darnet_tensor::TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![b, c],
            }));
        }
        let hw = (h * w) as f32;
        let mut grad_in = Tensor::zeros(dims);
        let gi = grad_in.data_mut();
        let go = grad_out.data();
        for n in 0..b {
            for ch in 0..c {
                let g = go[n * c + ch] / hw;
                let base = (n * c + ch) * h * w;
                for v in &mut gi[base..base + h * w] {
                    *v = g;
                }
            }
        }
        Ok(grad_in)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_layer_forward_backward() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[4.0]);
        let g = pool.backward(&Tensor::ones(&[1, 1, 1, 1])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_averages_channels() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
        let g = pool
            .backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_pool_layer_gradcheck() {
        let mut pool = AvgPool2d::new(2, 1);
        let x = Tensor::from_vec((0..9).map(|v| v as f32 * 0.3).collect(), &[1, 1, 3, 3]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        let dx = pool.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = pool.forward(&xp, Mode::Eval).unwrap().sum();
            let fm = pool.forward(&xm, Mode::Eval).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn global_pool_rejects_non_rank4() {
        let mut pool = GlobalAvgPool::new();
        assert!(pool.forward(&Tensor::zeros(&[2, 3]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_without_forward_fails() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        let mut gap = GlobalAvgPool::new();
        assert!(gap.backward(&Tensor::zeros(&[1, 1])).is_err());
    }
}
