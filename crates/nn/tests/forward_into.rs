//! Bitwise-equality tests for the workspace-backed `forward_into` path.
//!
//! Every layer's `forward_into` must produce output bytes identical to its
//! allocating `forward`, for serial and threaded policies alike, and a
//! warm workspace must stop allocating (cold-miss counter goes flat).

use darnet_nn::{
    AvgPool2d, BiLstm, Conv2d, DeepBiLstmClassifier, Dense, Dropout, Flatten, GlobalAvgPool,
    InceptionBlock, InceptionChannels, Layer, LstmCell, MaxPool2d, Mode, Relu, Sequential, Sigmoid,
    Tanh,
};
use darnet_tensor::{Parallelism, SplitMix64, Tensor, Workspace};

fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(-1.5, 1.5);
    }
    t
}

/// Runs `forward` and `forward_into` three times each, asserting bitwise
/// identity on every round and that cold misses stop after the first
/// workspace round.
// Not a #[test] fn itself, so clippy's allow-unwrap-in-tests does not
// apply; here a failed unwrap IS the test failing.
#[allow(clippy::unwrap_used)]
fn assert_into_matches(layer: &mut dyn Layer, input: &Tensor) {
    let mut ws = Workspace::new();
    let expected = layer.forward(input, Mode::Eval).unwrap();
    for round in 0..3 {
        let got = layer.forward_into(input, Mode::Eval, &mut ws).unwrap();
        assert_eq!(got, expected, "round {round} diverged from forward()");
        ws.restore(got);
        if round == 0 {
            // Pin the warm-up cost; later rounds must not add to it.
            let misses = ws.cold_misses();
            let got = layer.forward_into(input, Mode::Eval, &mut ws).unwrap();
            ws.restore(got);
            assert_eq!(
                ws.cold_misses(),
                misses,
                "warm workspace allocated again for {}",
                layer.name()
            );
        }
    }
}

#[test]
fn activations_and_flatten_match() {
    let x = random_tensor(&[3, 4, 2, 2], 1);
    assert_into_matches(&mut Relu::new(), &x);
    assert_into_matches(&mut Sigmoid::new(), &x);
    assert_into_matches(&mut Tanh::new(), &x);
    assert_into_matches(&mut Flatten::new(), &x);
    assert_into_matches(&mut Dropout::new(0.4, 7), &x);
}

#[test]
fn dense_matches_serial_and_parallel() {
    let x = random_tensor(&[5, 6], 2);
    for threads in [1, 4] {
        let mut rng = SplitMix64::new(3);
        let mut layer = Dense::new(6, 4, &mut rng);
        layer.set_parallelism(Parallelism::new(threads).with_min_work(1));
        assert_into_matches(&mut layer, &x);
    }
}

#[test]
fn conv_and_pools_match_serial_and_parallel() {
    let x = random_tensor(&[2, 3, 6, 6], 4);
    for threads in [1, 4] {
        let par = Parallelism::new(threads).with_min_work(1);
        let mut rng = SplitMix64::new(5);
        let mut conv = Conv2d::square(3, 4, 3, 1, 1, &mut rng);
        conv.set_parallelism(par);
        assert_into_matches(&mut conv, &x);

        let mut mp = MaxPool2d::new(2, 2);
        mp.set_parallelism(par);
        assert_into_matches(&mut mp, &x);

        let mut ap = AvgPool2d::new(2, 2);
        ap.set_parallelism(par);
        assert_into_matches(&mut ap, &x);
    }
    assert_into_matches(&mut GlobalAvgPool::new(), &x);
}

#[test]
fn sequential_stack_matches() {
    let x = random_tensor(&[2, 1, 8, 8], 6);
    for threads in [1, 4] {
        let mut rng = SplitMix64::new(7);
        let mut net = Sequential::new();
        net.push(Conv2d::square(1, 4, 3, 1, 1, &mut rng));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Flatten::new());
        net.push(Dense::new(4 * 4 * 4, 5, &mut rng));
        net.set_parallelism(Parallelism::new(threads).with_min_work(1));
        assert_into_matches(&mut net, &x);
    }
}

#[test]
fn inception_block_matches_serial_and_parallel() {
    let ch = InceptionChannels {
        c1: 2,
        c3_reduce: 2,
        c3: 3,
        c5_reduce: 1,
        c5: 2,
        pool_proj: 1,
    };
    let x = random_tensor(&[2, 3, 5, 5], 8);
    for threads in [1, 4] {
        let mut block = InceptionBlock::new(3, ch, &mut SplitMix64::new(9));
        block.set_parallelism(Parallelism::new(threads).with_min_work(1));
        assert_into_matches(&mut block, &x);
    }
}

#[test]
fn lstm_cell_seq_into_matches() {
    let x = random_tensor(&[2, 5, 3], 10);
    for threads in [1, 4] {
        let mut cell = LstmCell::new(3, 6, &mut SplitMix64::new(11));
        cell.set_parallelism(Parallelism::new(threads).with_min_work(1));
        let expected = cell.forward_seq(&x, Mode::Eval).unwrap();
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let got = cell.forward_seq_into(&x, Mode::Eval, &mut ws).unwrap();
            assert_eq!(got, expected);
            ws.restore(got);
        }
        let misses = ws.cold_misses();
        let got = cell.forward_seq_into(&x, Mode::Eval, &mut ws).unwrap();
        ws.restore(got);
        assert_eq!(ws.cold_misses(), misses, "warm LSTM workspace allocated");
    }
}

#[test]
fn bilstm_and_classifier_match() {
    let x = random_tensor(&[2, 6, 3], 12);
    for threads in [1, 4] {
        let mut bi = BiLstm::new(3, 5, &mut SplitMix64::new(13));
        bi.set_parallelism(Parallelism::new(threads).with_min_work(1));
        let expected = bi.forward_seq(&x, Mode::Eval).unwrap();
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let got = bi.forward_seq_into(&x, Mode::Eval, &mut ws).unwrap();
            assert_eq!(got, expected);
            ws.restore(got);
        }

        let mut model = DeepBiLstmClassifier::new(3, 4, 2, 3, &mut SplitMix64::new(14));
        model.set_parallelism(Parallelism::new(threads).with_min_work(1));
        let expected = model.forward(&x, Mode::Eval).unwrap();
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let got = model.forward_into(&x, Mode::Eval, &mut ws).unwrap();
            assert_eq!(got, expected);
            ws.restore(got);
        }
    }
}

#[test]
fn train_mode_falls_back_to_forward() {
    // forward_into in Train mode must behave exactly like forward,
    // including cache population (backward must work afterwards).
    let x = random_tensor(&[2, 3], 15);
    let mut rng = SplitMix64::new(16);
    let mut layer = Dense::new(3, 2, &mut rng);
    let mut ws = Workspace::new();
    let y = layer.forward_into(&x, Mode::Train, &mut ws).unwrap();
    assert_eq!(y.dims(), &[2, 2]);
    assert!(layer.backward(&Tensor::ones(&[2, 2])).is_ok());
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn dense_into_is_bitwise_forward(
            in_f in 1usize..7,
            out_f in 1usize..7,
            batch in 1usize..5,
            threads in 1usize..5,
            seed in 0u64..500,
        ) {
            let mut rng = SplitMix64::new(seed);
            let mut layer = Dense::new(in_f, out_f, &mut rng);
            layer.set_parallelism(Parallelism::new(threads).with_min_work(1));
            let x = random_tensor(&[batch, in_f], seed ^ 0xABCD);
            let expected = layer.forward(&x, Mode::Eval).unwrap();
            let mut ws = Workspace::new();
            for _ in 0..2 {
                let got = layer.forward_into(&x, Mode::Eval, &mut ws).unwrap();
                prop_assert_eq!(&got, &expected);
                ws.restore(got);
            }
        }

        #[test]
        fn lstm_into_is_bitwise_forward(
            feat in 1usize..5,
            hidden in 1usize..5,
            time in 1usize..5,
            batch in 1usize..4,
            threads in 1usize..5,
            seed in 0u64..200,
        ) {
            let mut cell = LstmCell::new(feat, hidden, &mut SplitMix64::new(seed));
            cell.set_parallelism(Parallelism::new(threads).with_min_work(1));
            let x = random_tensor(&[batch, time, feat], seed ^ 0x1234);
            let expected = cell.forward_seq(&x, Mode::Eval).unwrap();
            let mut ws = Workspace::new();
            for _ in 0..2 {
                let got = cell.forward_seq_into(&x, Mode::Eval, &mut ws).unwrap();
                prop_assert_eq!(&got, &expected);
                ws.restore(got);
            }
        }
    }
}
