//! Property-based tests for network invariants.

use darnet_nn::{l2_distill_loss, log_softmax, softmax, softmax_cross_entropy, Layer, Mode, Relu};
use darnet_tensor::Tensor;
use proptest::prelude::*;

fn logits_strategy() -> impl Strategy<Value = (Vec<f32>, usize)> {
    (1usize..6, 2usize..8).prop_flat_map(|(b, c)| {
        prop::collection::vec(-30.0f32..30.0, b * c).prop_map(move |v| (v, c))
    })
}

proptest! {
    #[test]
    fn softmax_rows_are_distributions((data, c) in logits_strategy()) {
        let b = data.len() / c;
        let logits = Tensor::from_vec(data, &[b, c]).unwrap();
        let p = softmax(&logits).unwrap();
        for r in 0..b {
            let row = &p.data()[r * c..(r + 1) * c];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant((data, c) in logits_strategy(), shift in -50.0f32..50.0) {
        let b = data.len() / c;
        let logits = Tensor::from_vec(data, &[b, c]).unwrap();
        let shifted = logits.add_scalar(shift);
        let p1 = softmax(&logits).unwrap();
        let p2 = softmax(&shifted).unwrap();
        for (a, z) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - z).abs() < 1e-4);
        }
    }

    #[test]
    fn log_softmax_is_never_positive((data, c) in logits_strategy()) {
        let b = data.len() / c;
        let logits = Tensor::from_vec(data, &[b, c]).unwrap();
        let ls = log_softmax(&logits).unwrap();
        prop_assert!(ls.data().iter().all(|&v| v <= 1e-5));
    }

    #[test]
    fn cross_entropy_is_nonnegative((data, c) in logits_strategy(), label_seed in 0usize..100) {
        let b = data.len() / c;
        let logits = Tensor::from_vec(data, &[b, c]).unwrap();
        let labels: Vec<usize> = (0..b).map(|i| (i + label_seed) % c).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        // Gradient rows sum to ~0 (probabilities minus one-hot).
        for r in 0..b {
            let s: f32 = grad.data()[r * c..(r + 1) * c].iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn distill_loss_zero_iff_equal(data in prop::collection::vec(-5.0f32..5.0, 4..32)) {
        let n = data.len();
        let a = Tensor::from_vec(data, &[1, n]).unwrap();
        let (loss, _) = l2_distill_loss(&a, &a).unwrap();
        prop_assert_eq!(loss, 0.0);
        let b = a.add_scalar(1.0);
        let (loss2, _) = l2_distill_loss(&a, &b).unwrap();
        prop_assert!(loss2 > 0.0);
    }

    #[test]
    fn relu_is_idempotent(data in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let n = data.len();
        let x = Tensor::from_vec(data, &[n]).unwrap();
        let mut relu = Relu::new();
        let once = relu.forward(&x, Mode::Eval).unwrap();
        let twice = relu.forward(&once, Mode::Eval).unwrap();
        prop_assert_eq!(once, twice);
    }
}

mod gradcheck {
    //! Property-based finite-difference gradient checks: random layer
    //! geometries and inputs, not just the fixed cases in unit tests.

    use darnet_nn::{Dense, Layer, Mode};
    use darnet_tensor::{SplitMix64, Tensor};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn dense_input_gradient_matches_fd(
            in_f in 1usize..6,
            out_f in 1usize..6,
            batch in 1usize..4,
            seed in 0u64..500,
        ) {
            let mut rng = SplitMix64::new(seed);
            let mut layer = Dense::new(in_f, out_f, &mut rng);
            let mut x = Tensor::zeros(&[batch, in_f]);
            for v in x.data_mut() { *v = rng.uniform(-1.0, 1.0); }
            layer.forward(&x, Mode::Train).unwrap();
            let dx = layer.backward(&Tensor::ones(&[batch, out_f])).unwrap();
            let eps = 1e-2f32;
            for i in 0..x.len() {
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let yp = layer.forward(&xp, Mode::Eval).unwrap().sum();
                let ym = layer.forward(&xm, Mode::Eval).unwrap().sum();
                let fd = (yp - ym) / (2.0 * eps);
                prop_assert!(
                    (fd - dx.data()[i]).abs() < 2e-2,
                    "grad {} fd {} analytic {}", i, fd, dx.data()[i]
                );
            }
        }

        #[test]
        fn lstm_input_gradient_matches_fd(
            feat in 1usize..4,
            hidden in 1usize..4,
            time in 1usize..4,
            seed in 0u64..200,
        ) {
            use darnet_nn::LstmCell;
            let mut rng = SplitMix64::new(seed);
            let mut cell = LstmCell::new(feat, hidden, &mut rng);
            let mut x = Tensor::zeros(&[1, time, feat]);
            for v in x.data_mut() { *v = rng.uniform(-1.0, 1.0); }
            let h = cell.forward_seq(&x, Mode::Train).unwrap();
            let dx = cell.backward_seq(&Tensor::ones(h.dims())).unwrap();
            let eps = 1e-2f32;
            for i in 0..x.len() {
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let yp = cell.forward_seq(&xp, Mode::Eval).unwrap().sum();
                let ym = cell.forward_seq(&xm, Mode::Eval).unwrap().sum();
                let fd = (yp - ym) / (2.0 * eps);
                prop_assert!(
                    (fd - dx.data()[i]).abs() < 2e-2,
                    "grad {} fd {} analytic {}", i, fd, dx.data()[i]
                );
            }
        }
    }
}
