//! Segment-based write-ahead log + snapshot for the controller's durable
//! ingest state (DESIGN.md §13).
//!
//! Every accepted batch is appended — *before* it is acked — as one
//! CRC-framed record to the current segment object; segments roll at a
//! configured record count, and a periodic **snapshot** compacts all
//! records so far (deduplicated by `(agent, seq)`, preserving acceptance
//! order byte-for-byte) plus the per-stream counters that replay cannot
//! rederive (duplicates, shed). Replay-on-open re-ingests the newest
//! valid snapshot followed by the surviving segments through the
//! controller's normal dedup path, which makes recovery **idempotent**
//! (a record applied twice is a duplicate, not a double-insert) and
//! **bitwise-deterministic** (records replay in acceptance order with the
//! exact bytes that were acked — see [`Controller::state_digest`]).
//!
//! A crash can tear the tail of the newest segment: an incomplete or
//! corrupt record *at the tail* is truncated away (it was never acked —
//! the append happens before the ack). The same corruption anywhere else
//! is real damage and surfaces as [`CollectError::Recovery`].
//!
//! Storage is abstracted behind [`WalStorage`]: [`MemStorage`] backs the
//! deterministic simulation and chaos harness, [`DirStorage`] puts
//! segments in a real directory for live mode. This module is the only
//! place in the hot-path crates allowed to touch `std::fs` (darlint's
//! `durable-io` rule).

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::controller::{Controller, ControllerConfig};
use crate::error::CollectError;
use crate::wire::{decode_batch, encode_batch_into, Batch};
use crate::Result;

/// Record tag: one accepted batch (`[tag][arrival f64][batch wire bytes]`).
const REC_BATCH: u8 = 1;
/// Record tag: snapshot stream-counter metadata
/// (`[tag][u32 n]{[u32 agent][u64 duplicates][u64 shed]}*n`).
const REC_META: u8 = 2;
/// Bytes of record framing: `[u32 payload_len][u32 crc32(payload)]`.
const FRAME_BYTES: usize = 8;
/// Sanity bound on a single record payload (a 48×48 frame batch is ~2.4
/// KiB per frame; a full flush is far below this). Oversized lengths are
/// treated as corruption, keeping torn-tail garbage from provoking huge
/// speculative reads.
const MAX_PAYLOAD: u32 = 64 << 20;

/// CRC-32 (IEEE, reflected) lookup table, built at compile time so the
/// framing needs no external dependency.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Storage backend for WAL objects (segments and snapshots). Objects are
/// flat named byte blobs supporting append, truncate-to-length, and
/// delete — the minimal contract both an in-memory store and a directory
/// of files satisfy.
pub trait WalStorage: fmt::Debug + Send + Sync {
    /// Names of all existing objects, in unspecified order.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when the backing store cannot be
    /// enumerated.
    fn list(&self) -> Result<Vec<String>>;

    /// Full contents of `object`.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when the object cannot be read.
    fn read(&self, object: &str) -> Result<Vec<u8>>;

    /// Appends `data` to `object`, creating it if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when the write fails.
    fn append(&self, object: &str, data: &[u8]) -> Result<()>;

    /// Truncates `object` to `len` bytes (torn-tail repair).
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when the truncate fails.
    fn truncate(&self, object: &str, len: u64) -> Result<()>;

    /// Deletes `object`; deleting a missing object is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when an existing object cannot be
    /// removed.
    fn delete(&self, object: &str) -> Result<()>;
}

/// In-memory [`WalStorage`], the backend for the deterministic simulation
/// and the chaos harness. Share one store across controller "processes"
/// via `Arc` — it survives the simulated crash exactly as a disk would.
#[derive(Debug, Default)]
pub struct MemStorage {
    objects: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStorage {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Total bytes across all objects (diagnostic).
    pub fn total_bytes(&self) -> usize {
        self.objects.lock().values().map(Vec::len).sum()
    }
}

impl WalStorage for MemStorage {
    fn list(&self) -> Result<Vec<String>> {
        Ok(self.objects.lock().keys().cloned().collect())
    }

    fn read(&self, object: &str) -> Result<Vec<u8>> {
        self.objects
            .lock()
            .get(object)
            .cloned()
            .ok_or_else(|| CollectError::Wal {
                object: object.to_string(),
                op: "read",
                kind: std::io::ErrorKind::NotFound,
            })
    }

    fn append(&self, object: &str, data: &[u8]) -> Result<()> {
        self.objects
            .lock()
            .entry(object.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn truncate(&self, object: &str, len: u64) -> Result<()> {
        match self.objects.lock().get_mut(object) {
            Some(data) => {
                data.truncate(len as usize);
                Ok(())
            }
            None => Err(CollectError::Wal {
                object: object.to_string(),
                op: "truncate",
                kind: std::io::ErrorKind::NotFound,
            }),
        }
    }

    fn delete(&self, object: &str) -> Result<()> {
        self.objects.lock().remove(object);
        Ok(())
    }
}

/// Directory-backed [`WalStorage`] for live mode: each object is one file
/// under the root directory.
#[derive(Debug)]
pub struct DirStorage {
    dir: PathBuf,
}

/// Maps one I/O failure into the typed [`CollectError::Wal`] variant.
fn wal_io(object: &str, op: &'static str, e: &std::io::Error) -> CollectError {
    CollectError::Wal {
        object: object.to_string(),
        op,
        kind: e.kind(),
    }
}

impl DirStorage {
    /// Opens (creating if needed) a directory-backed store.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when the directory cannot be
    /// created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| wal_io(&dir.to_string_lossy(), "create", &e))?;
        Ok(DirStorage { dir })
    }
}

impl WalStorage for DirStorage {
    fn list(&self) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| wal_io(&self.dir.to_string_lossy(), "list", &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| wal_io(&self.dir.to_string_lossy(), "list", &e))?;
            if entry.path().is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(names)
    }

    fn read(&self, object: &str) -> Result<Vec<u8>> {
        std::fs::read(self.dir.join(object)).map_err(|e| wal_io(object, "read", &e))
    }

    fn append(&self, object: &str, data: &[u8]) -> Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(object))
            .map_err(|e| wal_io(object, "append", &e))?;
        file.write_all(data)
            .map_err(|e| wal_io(object, "append", &e))
    }

    fn truncate(&self, object: &str, len: u64) -> Result<()> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(self.dir.join(object))
            .map_err(|e| wal_io(object, "truncate", &e))?;
        file.set_len(len)
            .map_err(|e| wal_io(object, "truncate", &e))
    }

    fn delete(&self, object: &str) -> Result<()> {
        match std::fs::remove_file(self.dir.join(object)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(wal_io(object, "delete", &e)),
        }
    }
}

/// WAL tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalConfig {
    /// Records per segment before rolling to a new segment object.
    pub segment_max_records: u64,
    /// Records appended since the last snapshot before
    /// [`Wal::needs_snapshot`] turns true; `0` disables snapshotting.
    pub snapshot_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_records: 256,
            snapshot_every: 1024,
        }
    }
}

/// Cumulative WAL counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Batch records appended.
    pub appends: u64,
    /// Bytes appended (framing included).
    pub bytes_appended: u64,
    /// Segment rolls.
    pub segments_rolled: u64,
    /// Snapshots taken.
    pub snapshots_taken: u64,
}

/// What replay-on-open found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot seeded the replay.
    pub snapshot_used: bool,
    /// Batch records applied (controller accepted them).
    pub records_replayed: u64,
    /// Batch records the controller's dedup skipped — nonzero only when
    /// replaying over a non-empty controller (idempotent re-replay).
    pub duplicates_skipped: u64,
    /// Garbage bytes truncated off the newest segment's tail.
    pub torn_tail_bytes: u64,
    /// Segment objects scanned.
    pub segments_scanned: u64,
}

impl RecoveryReport {
    /// Folds another report into this one — a sharded controller opens
    /// one WAL per shard and reports fleet recovery as the sum of the
    /// per-shard replays (`snapshot_used` is true if any shard used one).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.snapshot_used |= other.snapshot_used;
        self.records_replayed += other.records_replayed;
        self.duplicates_skipped += other.duplicates_skipped;
        self.torn_tail_bytes += other.torn_tail_bytes;
        self.segments_scanned += other.segments_scanned;
    }
}

fn seg_name(index: u64) -> String {
    format!("seg-{index:08}")
}

fn snap_name(index: u64) -> String {
    format!("snap-{index:08}")
}

/// Parses `seg-N`/`snap-N` object names; `(is_snapshot, index)`.
fn parse_object(name: &str) -> Option<(bool, u64)> {
    if let Some(idx) = name.strip_prefix("seg-") {
        return idx.parse().ok().map(|i| (false, i));
    }
    if let Some(idx) = name.strip_prefix("snap-") {
        return idx.parse().ok().map(|i| (true, i));
    }
    None
}

/// One parsed WAL record.
enum Record {
    /// `(arrival, batch)` — an accepted batch to re-ingest.
    Batch(f64, Batch),
    /// Snapshot stream counters: `(agent, duplicates, shed)`.
    Meta(Vec<(u32, u64, u64)>),
}

/// Why parsing stopped mid-object.
struct TornTail {
    /// Byte offset of the first invalid record.
    offset: u64,
    /// What was wrong.
    reason: String,
}

/// Parses every complete, CRC-valid record in `data`. Returns the
/// records, the byte length of the valid prefix, and — when the object
/// ends in an incomplete or corrupt record — a description of the tear.
fn parse_records(data: &[u8]) -> (Vec<Record>, u64, Option<TornTail>) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let torn = |reason: String| TornTail {
            offset: offset as u64,
            reason,
        };
        let rest = &data[offset..];
        if rest.len() < FRAME_BYTES {
            return (
                records,
                offset as u64,
                Some(torn(format!(
                    "truncated frame header ({} bytes)",
                    rest.len()
                ))),
            );
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_PAYLOAD {
            return (
                records,
                offset as u64,
                Some(torn(format!("implausible payload length {len}"))),
            );
        }
        let len = len as usize;
        if rest.len() < FRAME_BYTES + len {
            return (
                records,
                offset as u64,
                Some(torn(format!(
                    "truncated payload ({} of {len} bytes)",
                    rest.len() - FRAME_BYTES
                ))),
            );
        }
        let payload = &rest[FRAME_BYTES..FRAME_BYTES + len];
        if crc32(payload) != crc {
            return (records, offset as u64, Some(torn("crc mismatch".into())));
        }
        match parse_payload(payload) {
            Ok(record) => records.push(record),
            Err(reason) => return (records, offset as u64, Some(torn(reason))),
        }
        offset += FRAME_BYTES + len;
    }
    (records, offset as u64, None)
}

/// Parses one CRC-validated record payload.
fn parse_payload(payload: &[u8]) -> std::result::Result<Record, String> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| "empty payload".to_string())?;
    match tag {
        REC_BATCH => {
            if body.len() < 8 {
                return Err("batch record shorter than its arrival stamp".into());
            }
            let arrival = f64::from_be_bytes([
                body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
            ]);
            let batch = decode_batch(Bytes::copy_from_slice(&body[8..]))
                .map_err(|e| format!("batch decode: {e}"))?;
            Ok(Record::Batch(arrival, batch))
        }
        REC_META => {
            if body.len() < 4 {
                return Err("meta record shorter than its count".into());
            }
            let n = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
            let mut meta = Vec::with_capacity(n.min(1 << 16));
            let mut at = 4usize;
            for _ in 0..n {
                if body.len() < at + 20 {
                    return Err("truncated meta entry".into());
                }
                let agent =
                    u32::from_be_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]);
                let mut dup = [0u8; 8];
                dup.copy_from_slice(&body[at + 4..at + 12]);
                let mut shed = [0u8; 8];
                shed.copy_from_slice(&body[at + 12..at + 20]);
                meta.push((agent, u64::from_be_bytes(dup), u64::from_be_bytes(shed)));
                at += 20;
            }
            Ok(Record::Meta(meta))
        }
        other => Err(format!("unknown record tag {other}")),
    }
}

/// Frames `payload` (length + CRC) onto the tail of `buf`.
fn frame_into(buf: &mut BytesMut, payload: &[u8]) {
    buf.put_u32(payload.len() as u32);
    buf.put_u32(crc32(payload));
    buf.put_slice(payload);
}

/// The write side of the log: appends CRC-framed batch records to the
/// current segment, rolls segments, and takes compacting snapshots.
/// Obtain one positioned at the log's tail via [`open`].
#[derive(Debug)]
pub struct Wal {
    storage: Arc<dyn WalStorage>,
    config: WalConfig,
    /// Index of the segment currently being appended to.
    seg_index: u64,
    /// Records already in the current segment.
    seg_records: u64,
    /// Batch records appended since the last snapshot.
    since_snapshot: u64,
    /// Reused scratch for record framing (hot path: zero steady-state
    /// allocation per append).
    scratch: BytesMut,
    stats: WalStats,
}

impl Wal {
    /// Cumulative counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Index of the segment currently appended to.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// Appends one accepted batch (arriving at `arrival`) as a durable
    /// record. Call *before* acking — the ack promise is exactly "this
    /// record is in the log".
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when the storage append fails; the
    /// caller must then neither ingest nor ack the batch.
    // darlint: hot
    pub fn append(&mut self, arrival: f64, batch: &Batch) -> Result<()> {
        if self.seg_records >= self.config.segment_max_records {
            self.seg_index += 1;
            self.seg_records = 0;
            self.stats.segments_rolled += 1;
        }
        self.scratch.clear();
        // Payload: tag + arrival + wire-encoded batch. Reserve the frame
        // header, fill the payload, then back-patch length and CRC.
        self.scratch.put_u32(0);
        self.scratch.put_u32(0);
        self.scratch.put_u8(REC_BATCH);
        self.scratch.put_f64(arrival);
        encode_batch_into(&mut self.scratch, batch);
        let payload_len = (self.scratch.len() - FRAME_BYTES) as u32;
        let crc = crc32(&self.scratch[FRAME_BYTES..]);
        self.scratch[0..4].copy_from_slice(&payload_len.to_be_bytes());
        self.scratch[4..8].copy_from_slice(&crc.to_be_bytes());
        let name = seg_name(self.seg_index);
        self.storage.append(&name, &self.scratch)?;
        self.seg_records += 1;
        self.since_snapshot += 1;
        self.stats.appends += 1;
        self.stats.bytes_appended += self.scratch.len() as u64;
        Ok(())
    }

    /// Whether enough records have accumulated since the last snapshot
    /// that the caller should take one.
    pub fn needs_snapshot(&self) -> bool {
        self.config.snapshot_every > 0 && self.since_snapshot >= self.config.snapshot_every
    }

    /// Takes a compacting snapshot: rolls to a fresh segment, writes a
    /// `snap-<n>` object covering every segment `< n` — the live
    /// controller's stream counters first, then all logged batch records
    /// deduplicated by `(agent, seq)` with their payload bytes preserved
    /// verbatim — and deletes the segments and snapshots it supersedes.
    /// Crash-safe at every step: until the old objects are deleted, the
    /// newest *valid* snapshot plus surviving segments always reproduce
    /// the same state.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] on storage failures and
    /// [`CollectError::Recovery`] if a non-tail record in a covered
    /// segment is corrupt.
    pub fn snapshot(&mut self, controller: &Controller) -> Result<()> {
        let cover = self.seg_index + 1;
        let (snapshots, segments) = existing_objects(self.storage.as_ref())?;

        // Meta record: counters replay cannot rederive.
        let meta = controller.stream_meta();
        let mut payload = BytesMut::new();
        payload.put_u8(REC_META);
        payload.put_u32(meta.len() as u32);
        for (agent, duplicates, shed) in &meta {
            payload.put_u32(*agent);
            payload.put_u64(*duplicates);
            payload.put_u64(*shed);
        }
        let mut out = BytesMut::new();
        frame_into(&mut out, &payload);

        // Compact: newest valid snapshot first, then covered segments in
        // order, keeping the first occurrence of each (agent, seq) with
        // its original record bytes.
        let mut seen: BTreeMap<(u32, u32), ()> = BTreeMap::new();
        let mut sources: Vec<String> = Vec::new();
        if let Some(&snap) = snapshots.iter().rev().find(|&&s| s <= self.seg_index) {
            sources.push(snap_name(snap));
        }
        sources.extend(
            segments
                .iter()
                .filter(|&&s| s < cover)
                .map(|&s| seg_name(s)),
        );
        for source in &sources {
            let data = self.storage.read(source)?;
            let (records, valid_len, torn) = parse_records(&data);
            if let Some(t) = torn {
                // Tears are only forgivable at the tail of the newest
                // segment; during compaction every covered object must be
                // whole — except a final segment whose tear was not yet
                // repaired, which recovery would also truncate.
                let is_final_segment = Some(source) == sources.last();
                if !is_final_segment {
                    return Err(CollectError::Recovery {
                        object: source.clone(),
                        offset: t.offset,
                        reason: t.reason,
                    });
                }
                self.storage.truncate(source, valid_len)?;
            }
            for record in records {
                if let Record::Batch(arrival, batch) = record {
                    if seen.insert((batch.agent_id, batch.seq), ()).is_none() {
                        // Re-frame the canonical record bytes. Re-encoding
                        // is bitwise-stable (u8 frame quantization is
                        // idempotent), so recovered replay stays exact.
                        let mut p = BytesMut::new();
                        p.put_u8(REC_BATCH);
                        p.put_f64(arrival);
                        encode_batch_into(&mut p, &batch);
                        frame_into(&mut out, &p);
                    }
                }
            }
        }

        let name = snap_name(cover);
        // A torn snapshot with this name can exist if an earlier snapshot
        // attempt crashed mid-write; start it over.
        self.storage.delete(&name)?;
        self.storage.append(&name, &out)?;
        // Only after the snapshot is fully written: retire what it covers.
        for &s in segments.iter().filter(|&&s| s < cover) {
            self.storage.delete(&seg_name(s))?;
        }
        for &s in snapshots.iter().filter(|&&s| s < cover) {
            self.storage.delete(&snap_name(s))?;
        }
        self.seg_index = cover;
        self.seg_records = 0;
        self.since_snapshot = 0;
        self.stats.snapshots_taken += 1;
        Ok(())
    }

    /// Appends raw garbage bytes to the current segment — the chaos
    /// harness's model of a torn write at crash time. Recovery must
    /// truncate exactly these bytes away.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Wal`] when the storage append fails.
    pub fn simulate_torn_tail(&mut self, garbage: &[u8]) -> Result<()> {
        if garbage.is_empty() {
            return Ok(());
        }
        self.storage.append(&seg_name(self.seg_index), garbage)
    }
}

/// Sorted `(snapshot_indices, segment_indices)` present in storage.
fn existing_objects(storage: &dyn WalStorage) -> Result<(Vec<u64>, Vec<u64>)> {
    let mut snapshots = Vec::new();
    let mut segments = Vec::new();
    for name in storage.list()? {
        match parse_object(&name) {
            Some((true, i)) => snapshots.push(i),
            Some((false, i)) => segments.push(i),
            None => {}
        }
    }
    snapshots.sort_unstable();
    segments.sort_unstable();
    Ok((snapshots, segments))
}

/// Replays the log into an existing controller: newest *valid* snapshot
/// first (a torn snapshot — crash during compaction — falls back to its
/// predecessor), then every segment at or above the snapshot's cover
/// index, in order. Torn tails on the newest segment are truncated; any
/// other corruption is a [`CollectError::Recovery`]. Replaying twice is
/// idempotent: the controller's `(agent, seq)` dedup skips records it
/// already holds.
///
/// # Errors
///
/// Returns [`CollectError::Wal`] on storage failures and
/// [`CollectError::Recovery`] on non-tail corruption.
// darlint: pure-root
pub fn replay_into(
    controller: &mut Controller,
    storage: &dyn WalStorage,
) -> Result<RecoveryReport> {
    let (snapshots, segments) = existing_objects(storage)?;
    let mut report = RecoveryReport::default();

    // Choose the newest snapshot that parses end-to-end.
    let mut base = 0u64;
    let mut snap_records = None;
    for &snap in snapshots.iter().rev() {
        let data = storage.read(&snap_name(snap))?;
        let (records, _, torn) = parse_records(&data);
        if torn.is_none() {
            base = snap;
            snap_records = Some(records);
            break;
        }
        // Torn snapshot: the compaction crashed before deleting what it
        // covered, so the predecessor snapshot + segments are intact.
    }

    let mut apply = |records: Vec<Record>, report: &mut RecoveryReport| {
        for record in records {
            match record {
                Record::Batch(arrival, batch) => match controller.ingest_at(arrival, &batch) {
                    crate::controller::IngestOutcome::Accepted => {
                        report.records_replayed += 1;
                    }
                    _ => report.duplicates_skipped += 1,
                },
                Record::Meta(meta) => {
                    for (agent, duplicates, shed) in meta {
                        controller.restore_stream_meta(agent, duplicates, shed);
                    }
                }
            }
        }
    };

    if let Some(records) = snap_records {
        report.snapshot_used = true;
        apply(records, &mut report);
    }

    let live: Vec<u64> = segments.into_iter().filter(|&s| s >= base).collect();
    let last = live.last().copied();
    for &seg in &live {
        let name = seg_name(seg);
        let data = storage.read(&name)?;
        let (records, valid_len, torn) = parse_records(&data);
        if let Some(t) = torn {
            if Some(seg) != last {
                return Err(CollectError::Recovery {
                    object: name,
                    offset: t.offset,
                    reason: t.reason,
                });
            }
            // Torn tail on the newest segment: those bytes were never
            // acked (append-before-ack), so truncating them loses nothing
            // acknowledged.
            report.torn_tail_bytes += data.len() as u64 - valid_len;
            storage.truncate(&name, valid_len)?;
        }
        report.segments_scanned += 1;
        apply(records, &mut report);
    }
    Ok(report)
}

/// Opens the log: builds a fresh [`Controller`] with `config`, replays
/// storage into it, and returns the controller, a [`Wal`] positioned at
/// the log's tail, and the replay report. An empty store yields an empty
/// controller — this is also how a brand-new durable session starts.
///
/// # Errors
///
/// Returns [`CollectError::Wal`]/[`CollectError::Recovery`] as in
/// [`replay_into`].
pub fn open(
    config: ControllerConfig,
    storage: Arc<dyn WalStorage>,
    wal_config: WalConfig,
) -> Result<(Controller, Wal, RecoveryReport)> {
    let mut controller = Controller::new(config);
    let report = replay_into(&mut controller, storage.as_ref())?;
    let (snapshots, segments) = existing_objects(storage.as_ref())?;
    let snap_base = snapshots.last().copied().unwrap_or(0);
    let seg_index = segments.last().copied().unwrap_or(snap_base).max(snap_base);
    let seg_records = if segments.last() == Some(&seg_index) {
        let data = storage.read(&seg_name(seg_index))?;
        let (records, _, _) = parse_records(&data);
        records.len() as u64
    } else {
        0
    };
    // Snapshot cadence resumes from the live (uncovered) segments only:
    // records already compacted into the snapshot don't count against the
    // next snapshot.
    let mut segment_records = 0u64;
    for &seg in segments.iter().filter(|&&s| s >= snap_base) {
        let data = storage.read(&seg_name(seg))?;
        segment_records += parse_records(&data).0.len() as u64;
    }
    Ok((
        controller,
        Wal {
            storage,
            config: wal_config,
            seg_index,
            seg_records,
            since_snapshot: segment_records,
            scratch: BytesMut::with_capacity(4096),
            stats: WalStats::default(),
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::SensorReading;
    use crate::wire::StampedReading;
    use darnet_sim::{Frame, ImuSample};

    /// Wire round-trip: batches reach the controller decoded from wire
    /// bytes, so frame pixels are already u8-quantized. Replay re-encodes
    /// those canonical values bitwise-identically.
    fn canonical(batch: &Batch) -> Batch {
        decode_batch(crate::wire::encode_batch(batch)).unwrap()
    }

    fn imu_batch(agent: u32, seq: u32, stamps: &[f64]) -> Batch {
        canonical(&Batch {
            agent_id: agent,
            seq,
            readings: stamps
                .iter()
                .map(|&t| StampedReading {
                    timestamp: t,
                    reading: SensorReading::Imu(ImuSample {
                        accel: [t as f32, 0.5, 9.8],
                        gyro: [0.0; 3],
                        gravity: [0.0, 0.0, 9.8],
                        rotation: [0.1, 0.0, 0.0],
                    }),
                })
                .collect(),
        })
    }

    fn frame_batch(agent: u32, seq: u32, t: f64) -> Batch {
        let mut frame = Frame::new(4, 4);
        frame.put(1, 1, 0.5);
        canonical(&Batch {
            agent_id: agent,
            seq,
            readings: vec![StampedReading {
                timestamp: t,
                reading: SensorReading::Frame(frame),
            }],
        })
    }

    /// Ingest a deterministic little workload through a durable
    /// controller; returns `(controller, wal, storage)`.
    fn durable_workload(wal_config: WalConfig) -> (Controller, Wal, Arc<MemStorage>) {
        let storage = Arc::new(MemStorage::new());
        let (mut controller, mut wal, _) = open(
            ControllerConfig::default(),
            Arc::<MemStorage>::clone(&storage) as Arc<dyn WalStorage>,
            wal_config,
        )
        .unwrap();
        for seq in 0..30u32 {
            let t = seq as f64 * 0.5;
            controller
                .offer_at(t, &imu_batch(0, seq, &[t, t + 0.1]), Some(&mut wal))
                .unwrap();
            controller
                .offer_at(t, &frame_batch(1, seq, t), Some(&mut wal))
                .unwrap();
            if wal.needs_snapshot() {
                wal.snapshot(&controller).unwrap();
            }
        }
        (controller, wal, storage)
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn replay_rebuilds_identical_state() {
        let (controller, _wal, storage) = durable_workload(WalConfig::default());
        let (recovered, _, report) = open(
            ControllerConfig::default(),
            storage as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.records_replayed, 60);
        assert_eq!(report.torn_tail_bytes, 0);
        assert_eq!(recovered.state_digest(), controller.state_digest());
        assert_eq!(recovered.ingest_stats(), controller.ingest_stats());
    }

    #[test]
    fn segments_roll_and_snapshots_compact() {
        let (controller, wal, storage) = durable_workload(WalConfig {
            segment_max_records: 8,
            snapshot_every: 20,
        });
        assert!(wal.stats().segments_rolled > 0);
        assert!(wal.stats().snapshots_taken > 0);
        let (snapshots, segments) = existing_objects(storage.as_ref()).unwrap();
        assert_eq!(snapshots.len(), 1, "old snapshots are retired");
        assert!(
            segments.iter().all(|&s| s >= snapshots[0]),
            "covered segments are retired: {segments:?} vs snap {snapshots:?}"
        );
        let (recovered, _, report) = open(
            ControllerConfig::default(),
            storage as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert!(report.snapshot_used);
        assert_eq!(recovered.state_digest(), controller.state_digest());
    }

    #[test]
    fn snapshot_preserves_duplicate_and_shed_counters() {
        let storage = Arc::new(MemStorage::new());
        let config = ControllerConfig {
            admission: crate::controller::AdmissionConfig {
                enabled: true,
                capacity: 40.0,
                drain_per_sec: 1.0,
                low_priority_reserve: 20.0,
            },
            ..ControllerConfig::default()
        };
        let (mut controller, mut wal, _) = open(
            config,
            Arc::<MemStorage>::clone(&storage) as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        let b = imu_batch(0, 0, &[0.0]);
        controller.offer_at(0.0, &b, Some(&mut wal)).unwrap();
        controller.offer_at(0.1, &b, Some(&mut wal)).unwrap(); // duplicate
                                                               // Frames drain 40 → 24; the second leaves 8 < 20: shed.
        controller
            .offer_at(0.1, &frame_batch(1, 0, 0.1), Some(&mut wal))
            .unwrap();
        assert_eq!(
            controller
                .offer_at(0.1, &frame_batch(1, 1, 0.1), Some(&mut wal))
                .unwrap(),
            crate::controller::IngestOutcome::Shed
        );
        wal.snapshot(&controller).unwrap();
        let (recovered, _, _) =
            open(config, storage as Arc<dyn WalStorage>, WalConfig::default()).unwrap();
        assert_eq!(recovered.stream_meta(), controller.stream_meta());
        assert_eq!(recovered.state_digest(), controller.state_digest());
    }

    #[test]
    fn torn_tail_is_truncated_and_acked_records_survive() {
        let (controller, mut wal, storage) = durable_workload(WalConfig::default());
        wal.simulate_torn_tail(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01])
            .unwrap();
        let (recovered, _, report) = open(
            ControllerConfig::default(),
            Arc::<MemStorage>::clone(&storage) as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.torn_tail_bytes, 5);
        assert_eq!(recovered.state_digest(), controller.state_digest());
        // The repair is durable: a second open sees a clean log.
        let (_, _, again) = open(
            ControllerConfig::default(),
            storage as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(again.torn_tail_bytes, 0);
    }

    #[test]
    fn double_replay_is_idempotent() {
        let (controller, _, storage) = durable_workload(WalConfig::default());
        let mut recovered = Controller::new(ControllerConfig::default());
        let first = replay_into(&mut recovered, storage.as_ref()).unwrap();
        let second = replay_into(&mut recovered, storage.as_ref()).unwrap();
        assert_eq!(first.records_replayed, 60);
        assert_eq!(second.records_replayed, 0);
        assert_eq!(second.duplicates_skipped, 60);
        // Modulo the duplicate counters the double replay inflates, the
        // ingested data is identical — counters prove it.
        assert_eq!(recovered.ingest_stats(), controller.ingest_stats());
        assert_eq!(
            recovered.tsdb().fingerprint(),
            controller.tsdb().fingerprint()
        );
    }

    #[test]
    fn corruption_before_the_tail_is_a_recovery_error() {
        let (_, _, storage) = durable_workload(WalConfig {
            segment_max_records: 8,
            snapshot_every: 0,
        });
        // Flip a byte in the middle of the FIRST segment: not a tail tear.
        let (_, segments) = existing_objects(storage.as_ref()).unwrap();
        let name = seg_name(segments[0]);
        let mut data = storage.read(&name).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        storage.delete(&name).unwrap();
        storage.append(&name, &data).unwrap();
        let err = open(
            ControllerConfig::default(),
            storage as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CollectError::Recovery { .. }), "got {err:?}");
    }

    #[test]
    fn torn_snapshot_falls_back_to_predecessor_state() {
        let (controller, wal, storage) = durable_workload(WalConfig {
            segment_max_records: 8,
            snapshot_every: 20,
        });
        drop(wal);
        // Corrupt the (only) snapshot's tail: recovery must still rebuild
        // identical state? No — the covered segments were deleted after
        // the snapshot committed. A torn snapshot only happens when the
        // compaction crashed BEFORE deletion. Model that: tear a snapshot
        // while its sources still exist.
        let storage2 = Arc::new(MemStorage::new());
        let (mut c2, mut w2, _) = open(
            ControllerConfig::default(),
            Arc::<MemStorage>::clone(&storage2) as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        for seq in 0..10u32 {
            let t = seq as f64;
            c2.offer_at(t, &imu_batch(0, seq, &[t]), Some(&mut w2))
                .unwrap();
        }
        let digest = c2.state_digest();
        // A half-written snapshot that crashed before retiring segments.
        storage2
            .append(&snap_name(w2.segment_index() + 1), &[0x01, 0x02, 0x03])
            .unwrap();
        let (recovered, _, report) = open(
            ControllerConfig::default(),
            storage2 as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert!(!report.snapshot_used);
        assert_eq!(recovered.state_digest(), digest);
        // And the original workload's state still digests stable.
        let (r0, _, _) = open(
            ControllerConfig::default(),
            storage as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(r0.state_digest(), controller.state_digest());
    }

    #[test]
    fn dir_storage_roundtrips_and_repairs() {
        let dir = std::env::temp_dir().join(format!("darnet-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let storage = Arc::new(DirStorage::create(&dir).unwrap());
            let (mut controller, mut wal, _) = open(
                ControllerConfig::default(),
                Arc::<DirStorage>::clone(&storage) as Arc<dyn WalStorage>,
                WalConfig::default(),
            )
            .unwrap();
            for seq in 0..5u32 {
                let t = seq as f64;
                controller
                    .offer_at(t, &imu_batch(0, seq, &[t]), Some(&mut wal))
                    .unwrap();
            }
            wal.simulate_torn_tail(&[0xFF; 3]).unwrap();
        }
        // "Restart the process": reopen from the directory alone.
        let storage = Arc::new(DirStorage::create(&dir).unwrap());
        let (recovered, _, report) = open(
            ControllerConfig::default(),
            storage as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.records_replayed, 5);
        assert_eq!(report.torn_tail_bytes, 3);
        assert_eq!(recovered.ingest_stats().0, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn storage_errors_are_typed() {
        let storage = MemStorage::new();
        let err = storage.read("seg-00000000").unwrap_err();
        assert!(matches!(
            err,
            CollectError::Wal {
                op: "read",
                kind: std::io::ErrorKind::NotFound,
                ..
            }
        ));
        assert!(storage.truncate("nope", 0).is_err());
        assert!(storage.delete("nope").is_ok());
    }
}
