//! A simple point-to-point link model: base latency, jitter, loss, and the
//! packet reordering that jitter induces.

use darnet_tensor::SplitMix64;
use serde::{Deserialize, Serialize};

/// Link parameters (per direction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Minimum one-way latency, seconds.
    pub base_latency: f64,
    /// Uniform jitter added on top of the base latency, seconds.
    pub jitter: f64,
    /// Probability a message is dropped entirely.
    pub loss: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // Bluetooth/802.11 point-to-point ballpark from the paper's setup.
        LinkConfig {
            base_latency: 0.015,
            jitter: 0.010,
            loss: 0.0,
        }
    }
}

/// A unidirectional link. Each [`Link::transmit`] call answers "when does
/// this message arrive?" (or `None` if lost). Because jitter is sampled per
/// message, later sends can arrive before earlier ones — the reordering the
/// controller must tolerate.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: SplitMix64,
    sent: u64,
    lost: u64,
}

impl Link {
    /// Creates a link with the given parameters and seed.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            rng: SplitMix64::new(seed),
            sent: 0,
            lost: 0,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Offers a message for transmission at time `t`; returns the delivery
    /// time, or `None` if the message was lost.
    pub fn transmit(&mut self, t: f64) -> Option<f64> {
        self.sent += 1;
        if self.config.loss > 0.0 && (self.rng.next_f64() < self.config.loss) {
            self.lost += 1;
            return None;
        }
        let delay = self.config.base_latency + self.rng.next_f64() * self.config.jitter;
        Some(t + delay)
    }

    /// Mean one-way delay implied by the configuration — what the paper's
    /// "empirically measured network delay" converges to.
    pub fn mean_delay(&self) -> f64 {
        self.config.base_latency + self.config.jitter / 2.0
    }

    /// `(sent, lost)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_after_send_plus_base_latency() {
        let mut link = Link::new(LinkConfig::default(), 7);
        for i in 0..100 {
            let t = i as f64;
            let arrival = link.transmit(t).unwrap();
            assert!(arrival >= t + link.config().base_latency);
            assert!(arrival <= t + link.config().base_latency + link.config().jitter);
        }
    }

    #[test]
    fn jitter_can_reorder_messages() {
        let mut link = Link::new(
            LinkConfig {
                base_latency: 0.001,
                jitter: 0.1,
                loss: 0.0,
            },
            11,
        );
        let mut reordered = false;
        let mut prev_arrival = f64::NEG_INFINITY;
        for i in 0..200 {
            let t = i as f64 * 0.01; // send every 10 ms with 100 ms jitter
            let arrival = link.transmit(t).unwrap();
            if arrival < prev_arrival {
                reordered = true;
            }
            prev_arrival = arrival;
        }
        assert!(reordered, "expected at least one reordering");
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut link = Link::new(
            LinkConfig {
                base_latency: 0.01,
                jitter: 0.0,
                loss: 0.3,
            },
            13,
        );
        let mut lost = 0;
        let n = 5000;
        for i in 0..n {
            if link.transmit(i as f64).is_none() {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "loss rate {rate}");
        assert_eq!(link.stats(), (n, lost));
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut link = Link::new(LinkConfig::default(), 17);
        for i in 0..1000 {
            assert!(link.transmit(i as f64).is_some());
        }
    }

    #[test]
    fn mean_delay_matches_config() {
        let link = Link::new(
            LinkConfig {
                base_latency: 0.02,
                jitter: 0.02,
                loss: 0.0,
            },
            19,
        );
        assert!((link.mean_delay() - 0.03).abs() < 1e-12);
    }
}
