//! A point-to-point link model: base latency, jitter, the packet reordering
//! jitter induces, and an adversarial fault layer — i.i.d. loss, bursty
//! loss via a Gilbert–Elliott two-state chain, scheduled blackouts, and
//! duplication. Everything is driven by one seeded generator, so a session
//! replays bit-for-bit from its seed.

use darnet_tensor::SplitMix64;
use serde::{Deserialize, Serialize};

/// Fault-injection parameters layered on top of the base link.
///
/// The defaults are all-zero / `None`: a link with default faults behaves
/// exactly like the pre-fault-injection model (i.i.d. loss only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Gilbert–Elliott: probability per transmission of entering the bad
    /// (burst) state from the good state.
    pub p_enter_burst: f64,
    /// Gilbert–Elliott: probability per transmission of returning to the
    /// good state from the bad state.
    pub p_exit_burst: f64,
    /// Loss probability while in the bad state (the good state uses
    /// [`LinkConfig::loss`]).
    pub burst_loss: f64,
    /// Probability a successfully delivered message is also duplicated
    /// (the copy takes an independently jittered path).
    pub duplicate: f64,
    /// Absolute-time interval `[start, end)` during which *nothing* gets
    /// through — an agent walking out of radio range, an interface reset.
    pub blackout: Option<(f64, f64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            p_enter_burst: 0.0,
            p_exit_burst: 1.0,
            burst_loss: 1.0,
            duplicate: 0.0,
            blackout: None,
        }
    }
}

impl FaultConfig {
    /// A Gilbert–Elliott burst-loss profile: expected burst length
    /// `1 / p_exit`, expected gap between bursts `1 / p_enter`
    /// transmissions, dropping everything inside a burst.
    pub fn bursty(p_enter: f64, p_exit: f64) -> Self {
        FaultConfig {
            p_enter_burst: p_enter,
            p_exit_burst: p_exit,
            burst_loss: 1.0,
            ..FaultConfig::default()
        }
    }
}

/// Link parameters (per direction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Minimum one-way latency, seconds.
    pub base_latency: f64,
    /// Uniform jitter added on top of the base latency, seconds.
    pub jitter: f64,
    /// Probability a message is dropped entirely (good-state loss).
    pub loss: f64,
    /// Adversarial fault layer (bursts, blackouts, duplication).
    pub faults: FaultConfig,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // Bluetooth/802.11 point-to-point ballpark from the paper's setup.
        LinkConfig {
            base_latency: 0.015,
            jitter: 0.010,
            loss: 0.0,
            faults: FaultConfig::default(),
        }
    }
}

/// Cumulative link counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages offered for transmission.
    pub sent: u64,
    /// Messages dropped (i.i.d. loss, burst loss, or blackout).
    pub lost: u64,
    /// Extra deliveries created by duplication.
    pub duplicated: u64,
    /// Messages dropped specifically inside a blackout window.
    pub blackout_drops: u64,
}

/// A unidirectional link. Each [`Link::transmit`] call answers "when does
/// this message arrive?" (or `None` if lost). Because jitter is sampled per
/// message, later sends can arrive before earlier ones — the reordering the
/// controller must tolerate. [`Link::transmit_all`] additionally surfaces
/// duplicated deliveries.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: SplitMix64,
    stats: LinkStats,
    in_burst: bool,
}

impl Link {
    /// Creates a link with the given parameters and seed.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            rng: SplitMix64::new(seed),
            stats: LinkStats::default(),
            in_burst: false,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Whether the Gilbert–Elliott chain is currently in the burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    fn delay(&mut self) -> f64 {
        self.config.base_latency + self.rng.next_f64() * self.config.jitter
    }

    /// Offers a message for transmission at time `t`; returns every
    /// delivery time it produces: empty if lost, one entry normally, two if
    /// the fault layer duplicated it.
    pub fn transmit_all(&mut self, t: f64) -> Vec<f64> {
        self.stats.sent += 1;
        let faults = self.config.faults;

        // Blackout swallows everything, unconditionally.
        if let Some((start, end)) = faults.blackout {
            if t >= start && t < end {
                self.stats.lost += 1;
                self.stats.blackout_drops += 1;
                return Vec::new();
            }
        }

        // Advance the Gilbert–Elliott chain one step per transmission.
        if self.in_burst {
            if faults.p_exit_burst > 0.0 && self.rng.next_f64() < faults.p_exit_burst {
                self.in_burst = false;
            }
        } else if faults.p_enter_burst > 0.0 && self.rng.next_f64() < faults.p_enter_burst {
            self.in_burst = true;
        }

        let loss = if self.in_burst {
            faults.burst_loss
        } else {
            self.config.loss
        };
        if loss > 0.0 && self.rng.next_f64() < loss {
            self.stats.lost += 1;
            return Vec::new();
        }

        let mut arrivals = vec![t + self.delay()];
        if faults.duplicate > 0.0 && self.rng.next_f64() < faults.duplicate {
            self.stats.duplicated += 1;
            arrivals.push(t + self.delay());
        }
        arrivals
    }

    /// Offers a message for transmission at time `t`; returns the delivery
    /// time, or `None` if the message was lost. Duplicates created by the
    /// fault layer are counted but not returned — use
    /// [`Link::transmit_all`] when duplication matters.
    pub fn transmit(&mut self, t: f64) -> Option<f64> {
        self.transmit_all(t).first().copied()
    }

    /// Mean one-way delay implied by the configuration — what the paper's
    /// "empirically measured network delay" converges to.
    pub fn mean_delay(&self) -> f64 {
        self.config.base_latency + self.config.jitter / 2.0
    }

    /// `(sent, lost)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.stats.sent, self.stats.lost)
    }

    /// Full cumulative counters, including duplication and blackout drops.
    pub fn link_stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_after_send_plus_base_latency() {
        let mut link = Link::new(LinkConfig::default(), 7);
        for i in 0..100 {
            let t = i as f64;
            let arrival = link.transmit(t).unwrap();
            assert!(arrival >= t + link.config().base_latency);
            assert!(arrival <= t + link.config().base_latency + link.config().jitter);
        }
    }

    #[test]
    fn jitter_can_reorder_messages() {
        let mut link = Link::new(
            LinkConfig {
                base_latency: 0.001,
                jitter: 0.1,
                loss: 0.0,
                ..LinkConfig::default()
            },
            11,
        );
        let mut reordered = false;
        let mut prev_arrival = f64::NEG_INFINITY;
        for i in 0..200 {
            let t = i as f64 * 0.01; // send every 10 ms with 100 ms jitter
            let arrival = link.transmit(t).unwrap();
            if arrival < prev_arrival {
                reordered = true;
            }
            prev_arrival = arrival;
        }
        assert!(reordered, "expected at least one reordering");
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut link = Link::new(
            LinkConfig {
                base_latency: 0.01,
                jitter: 0.0,
                loss: 0.3,
                ..LinkConfig::default()
            },
            13,
        );
        let mut lost = 0;
        let n = 5000;
        for i in 0..n {
            if link.transmit(i as f64).is_none() {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "loss rate {rate}");
        assert_eq!(link.stats(), (n, lost));
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut link = Link::new(LinkConfig::default(), 17);
        for i in 0..1000 {
            assert!(link.transmit(i as f64).is_some());
        }
    }

    #[test]
    fn mean_delay_matches_config() {
        let link = Link::new(
            LinkConfig {
                base_latency: 0.02,
                jitter: 0.02,
                loss: 0.0,
                ..LinkConfig::default()
            },
            19,
        );
        assert!((link.mean_delay() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        // Compare burst-vs-iid at a matched average loss rate: with
        // p_enter = 0.02 and p_exit = 0.2, the chain spends
        // p_enter / (p_enter + p_exit) ≈ 9% of transmissions in the burst
        // state. Runs of consecutive losses should be much longer than
        // under i.i.d. loss at the same rate.
        let run_lengths = |mut link: Link| -> (f64, f64) {
            let mut runs = Vec::new();
            let mut current = 0u64;
            let mut lost = 0u64;
            let n = 20_000;
            for i in 0..n {
                if link.transmit(i as f64).is_none() {
                    current += 1;
                    lost += 1;
                } else if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            }
            if current > 0 {
                runs.push(current);
            }
            let mean_run = runs.iter().sum::<u64>() as f64 / runs.len().max(1) as f64;
            (mean_run, lost as f64 / n as f64)
        };

        let bursty = Link::new(
            LinkConfig {
                loss: 0.0,
                faults: FaultConfig::bursty(0.02, 0.2),
                ..LinkConfig::default()
            },
            23,
        );
        let (burst_run, burst_rate) = run_lengths(bursty);

        let iid = Link::new(
            LinkConfig {
                loss: burst_rate,
                ..LinkConfig::default()
            },
            23,
        );
        let (iid_run, iid_rate) = run_lengths(iid);

        assert!(
            (burst_rate - iid_rate).abs() < 0.05,
            "rates {burst_rate} vs {iid_rate}"
        );
        assert!(
            burst_run > 2.0 * iid_run,
            "burst mean run {burst_run} vs iid {iid_run}"
        );
    }

    #[test]
    fn blackout_drops_everything_inside_the_window() {
        let mut link = Link::new(
            LinkConfig {
                loss: 0.0,
                faults: FaultConfig {
                    blackout: Some((10.0, 12.0)),
                    ..FaultConfig::default()
                },
                ..LinkConfig::default()
            },
            29,
        );
        for i in 0..2000 {
            let t = i as f64 * 0.01; // 0 .. 20 s
            let delivered = link.transmit(t).is_some();
            if (10.0..12.0).contains(&t) {
                assert!(!delivered, "delivered inside blackout at t={t}");
            } else {
                assert!(delivered, "lost outside blackout at t={t}");
            }
        }
        let stats = link.link_stats();
        assert_eq!(stats.blackout_drops, 200);
        assert_eq!(stats.lost, 200);
    }

    #[test]
    fn duplication_produces_second_arrivals() {
        let mut link = Link::new(
            LinkConfig {
                loss: 0.0,
                faults: FaultConfig {
                    duplicate: 0.5,
                    ..FaultConfig::default()
                },
                ..LinkConfig::default()
            },
            31,
        );
        let mut dups = 0u64;
        let n = 4000;
        for i in 0..n {
            let arrivals = link.transmit_all(i as f64);
            assert!(!arrivals.is_empty());
            if arrivals.len() == 2 {
                dups += 1;
            }
        }
        let rate = dups as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "duplicate rate {rate}");
        assert_eq!(link.link_stats().duplicated, dups);
    }

    #[test]
    fn fault_injection_is_deterministic_by_seed() {
        let config = LinkConfig {
            loss: 0.1,
            faults: FaultConfig {
                duplicate: 0.2,
                p_enter_burst: 0.05,
                p_exit_burst: 0.3,
                burst_loss: 0.9,
                blackout: Some((3.0, 4.0)),
            },
            ..LinkConfig::default()
        };
        let mut a = Link::new(config, 1234);
        let mut b = Link::new(config, 1234);
        for i in 0..2000 {
            let t = i as f64 * 0.01;
            assert_eq!(a.transmit_all(t), b.transmit_all(t));
        }
        assert_eq!(a.link_stats(), b.link_stats());
    }
}
