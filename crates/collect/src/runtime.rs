//! Discrete-event simulation driving full collection campaigns.
//!
//! For every driver session the runtime instantiates two collection agents
//! (camera + phone IMU, as in the paper's deployment), a lossy link per
//! agent, and one controller. Events — sensor polls, batch flushes, network
//! deliveries, ack deliveries, retransmission timers, and periodic clock
//! syncs — are processed in timestamp order from a binary heap, so
//! campaigns are fully deterministic for a given seed.
//!
//! With the reliable transport enabled (the default), every data delivery
//! is answered with an ack over an equally faulty reverse link; unacked
//! batches retransmit on the agent's backoff schedule until acked or
//! abandoned. After the session ends the loop keeps running for
//! [`CampaignConfig::drain_grace`] seconds so in-flight retransmissions can
//! complete.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use darnet_sim::{Behavior, DrivingWorld, Segment};
use darnet_tensor::SplitMix64;

use std::collections::BTreeSet;

use crate::agent::{
    AgentConfig, CollectionAgent, RetransmitConfig, SpillConfig, SpillStats, TransportStats,
};
use crate::clock::{ClockConfig, DriftClock};
use crate::controller::{
    AlignedImuPoint, Controller, ControllerConfig, FrameRecord, IngestOutcome, StreamHealth,
};
use crate::network::{Link, LinkConfig, LinkStats};
use crate::sensor::{CameraSensor, ImuSensor};
use crate::stream::StreamId;
use crate::wal::{self, Wal, WalConfig, WalStorage};
use crate::wire::{decode_ack, decode_batch, encode_ack, encode_batch, Batch};
use crate::Result;

/// Campaign configuration: sensor cadences, batching, network, clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// IMU poll period (paper: 25 ms).
    pub imu_period: f64,
    /// Camera frame period (reproduction default: 4 fps).
    pub camera_period: f64,
    /// Batch transmit period.
    pub transmit_period: f64,
    /// Controller behaviour (grid, smoothing, sync period).
    pub controller: ControllerConfig,
    /// Network link model (applied to data, ack, and sync links).
    pub link: LinkConfig,
    /// Agent clock imperfection model.
    pub clock: ClockConfig,
    /// Reliable-delivery configuration for both agents.
    pub retransmit: RetransmitConfig,
    /// Agent-side spill-buffer bound (hold-and-resume across controller
    /// blackouts and restarts).
    pub spill: SpillConfig,
    /// Seconds past the final flush the event loop keeps draining, so
    /// retransmissions of late losses can still complete.
    pub drain_grace: f64,
    /// Master seed.
    pub seed: u64,
    /// If `false`, clock synchronization is disabled (for the ablation
    /// experiment on sync necessity).
    pub sync_enabled: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            imu_period: 0.025,
            camera_period: 0.25,
            transmit_period: 0.5,
            controller: ControllerConfig::default(),
            link: LinkConfig::default(),
            clock: ClockConfig::default(),
            retransmit: RetransmitConfig::default(),
            spill: SpillConfig::default(),
            drain_grace: 5.0,
            seed: 0xC0FFEE,
            sync_enabled: true,
        }
    }
}

/// One controller outage: the process dies at `kill_t` and a fresh
/// process recovers from the WAL at `restart_t`. Windows must be
/// disjoint and ordered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// When the controller process is killed (seconds).
    pub kill_t: f64,
    /// When the replacement process starts recovery (seconds).
    pub restart_t: f64,
}

/// Durability configuration for a session: where the controller's
/// write-ahead log lives and what chaos (crashes, torn tail writes) the
/// run injects. The default — no storage, no crashes — is the plain
/// in-memory pipeline.
#[derive(Debug, Clone, Default)]
pub struct Durability {
    /// WAL backing store shared across controller incarnations. `None`
    /// disables durability: a crash then loses all controller state (the
    /// chaos harness's negative control).
    pub storage: Option<Arc<dyn WalStorage>>,
    /// WAL tuning (segment roll and snapshot cadence).
    pub wal: WalConfig,
    /// Controller outages to inject, in time order.
    pub crashes: Vec<CrashWindow>,
    /// Garbage bytes appended to the WAL tail at each kill — the torn
    /// write a real crash leaves behind. Recovery must truncate them.
    pub torn_tail_bytes: usize,
}

impl Durability {
    /// WAL-backed durability on a fresh in-memory store with default
    /// tuning and no injected chaos — the "durable but hermetic" setup
    /// used by tests and the fleet load generator.
    pub fn in_memory() -> Self {
        Durability {
            storage: Some(Arc::new(crate::wal::MemStorage::new())),
            ..Durability::default()
        }
    }
}

/// What the chaos machinery observed over one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// Controller recoveries performed (restarts plus a final recovery if
    /// the session ended mid-outage).
    pub recoveries: u64,
    /// WAL batch records re-ingested across all recoveries.
    pub replayed_records: u64,
    /// Torn-tail garbage bytes recovery truncated away.
    pub torn_tail_bytes_discarded: u64,
    /// Batch deliveries that arrived while the controller was down
    /// (dropped on the floor; the transport retries them).
    pub deliveries_while_down: u64,
    /// Distinct `(agent, seq)` acks the agents received.
    pub acked: u64,
    /// Acked batches missing from the final controller state. The
    /// recovery invariant: **with a WAL this is zero** — an ack is only
    /// sent after the WAL append.
    pub acked_lost: u64,
    /// Batch offers shed by admission control (deferred, not acked).
    pub shed_batches: u64,
    /// Cumulative WAL appends across incarnations.
    pub wal_appends: u64,
    /// Cumulative WAL bytes appended.
    pub wal_bytes: u64,
    /// Cumulative WAL segment rolls.
    pub wal_segments_rolled: u64,
    /// Cumulative WAL snapshots taken.
    pub wal_snapshots: u64,
    /// Readings agents dropped oldest-first at the spill bound.
    pub spill_dropped: u64,
    /// High-water mark of either agent's spill buffer.
    pub spill_peak: usize,
}

/// End-of-session reliability accounting for one driver recording.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionTransportReport {
    /// IMU agent transport counters.
    pub imu: TransportStats,
    /// Camera agent transport counters.
    pub camera: TransportStats,
    /// IMU data-link fault counters.
    pub imu_link: LinkStats,
    /// Camera data-link fault counters.
    pub camera_link: LinkStats,
    /// Controller-side health of the IMU stream.
    pub imu_stream: Option<StreamHealth>,
    /// Controller-side health of the camera stream.
    pub camera_stream: Option<StreamHealth>,
    /// Readings polled by both agents over the session.
    pub readings_polled: u64,
    /// Distinct readings the controller accepted.
    pub readings_ingested: u64,
    /// IMU agent spill-buffer counters.
    pub imu_spill: SpillStats,
    /// Camera agent spill-buffer counters.
    pub camera_spill: SpillStats,
}

impl SessionTransportReport {
    /// `true` when every reading either arrived or is accounted as a gap
    /// of an abandoned batch — and with retransmission on and nothing
    /// abandoned, that means zero data loss.
    pub fn lossless(&self) -> bool {
        self.readings_ingested == self.readings_polled
    }
}

/// The collected output of one driver's session.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverRecording {
    /// Driver id.
    pub driver: usize,
    /// Aligned, smoothed 4 Hz IMU stream.
    pub imu: Vec<AlignedImuPoint>,
    /// Camera frames in timestamp order.
    pub frames: Vec<FrameRecord>,
    /// Maximum absolute agent clock error observed at poll instants
    /// (diagnostic for the sync ablation).
    pub max_clock_error: f64,
    /// Transport-layer accounting for the session.
    pub transport: SessionTransportReport,
}

/// One frame paired with the IMU window ending at its timestamp — the
/// aligned multimodal unit the analytics engine consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedTuple {
    /// Frame timestamp, seconds (controller time base).
    pub t: f64,
    /// The camera frame.
    pub frame: darnet_sim::Frame,
    /// Flattened `[window_len × features]` IMU window, time-major: the
    /// last `window_len` aligned grid points not after `t`, front-padded
    /// with the earliest included point when the session is younger than
    /// the window.
    pub window: Vec<f32>,
}

/// Pairs every frame with its trailing IMU window of `window_len` grid
/// points — the alignment shared by the legacy two-stream recording and
/// every camera stream of a canonical multi-stream recording. Frames
/// that precede all IMU data are skipped (no context to classify from
/// yet).
pub fn pair_frames_with_windows(
    frames: &[FrameRecord],
    imu: &[AlignedImuPoint],
    window_len: usize,
) -> Vec<AlignedTuple> {
    let mut tuples = Vec::with_capacity(frames.len());
    if imu.is_empty() || window_len == 0 {
        return tuples;
    }
    let features = imu[0].features.len();
    for fr in frames {
        let hi = imu.partition_point(|p| p.t <= fr.t);
        if hi == 0 {
            continue;
        }
        let lo = hi.saturating_sub(window_len);
        let mut window = Vec::with_capacity(window_len * features);
        for _ in 0..window_len - (hi - lo) {
            window.extend_from_slice(&imu[lo].features);
        }
        for p in &imu[lo..hi] {
            window.extend_from_slice(&p.features);
        }
        tuples.push(AlignedTuple {
            t: fr.t,
            frame: fr.frame.clone(),
            window,
        });
    }
    tuples
}

impl DriverRecording {
    /// Pairs every received frame with its trailing IMU window of
    /// `window_len` grid points. Frames that precede all IMU data are
    /// skipped (no context to classify from yet).
    pub fn aligned_tuples(&self, window_len: usize) -> Vec<AlignedTuple> {
        pair_frames_with_windows(&self.frames, &self.imu, window_len)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    PollImu,
    PollCamera,
    Flush(usize), // agent index: 0 = imu, 1 = camera
    Sync,
    Deliver(u32),                          // delivery id into pending batch storage
    DeliverAck { agent: usize, seq: u32 }, // controller ack reaching an agent
    Retry(usize),                          // ack-timeout check for one agent
    Crash(usize),                          // kill the controller (index into crash windows)
    Restart(usize),                        // recover a fresh controller from the WAL
}

/// A timestamped discrete event with a deterministic tie-break, generic
/// over the event vocabulary — shared by the session runtime and the
/// fleet load generator ([`crate::loadgen`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimedEvent<K> {
    pub(crate) time: f64,
    // Tie-break so heap order is deterministic.
    pub(crate) seq: u64,
    pub(crate) kind: K,
}

impl<K> PartialEq for TimedEvent<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<K> Eq for TimedEvent<K> {}
impl<K> PartialOrd for TimedEvent<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for TimedEvent<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first. total_cmp
        // keeps the ordering panic-free even if a NaN timestamp ever
        // slipped in (it would sort last instead of aborting the loop).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

type Event = TimedEvent<EventKind>;

/// Runs one driver's session and returns its recording.
///
/// # Errors
///
/// Propagates alignment errors (e.g. a session so short no IMU data was
/// collected) and, in strict transport mode, [`crate::CollectError::Transport`]
/// failures.
pub fn run_session(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    config: &CampaignConfig,
) -> Result<DriverRecording> {
    run_session_durable(world, driver, segments, config, &Durability::default()).map(|(rec, _)| rec)
}

/// Like [`run_session`], with durability and chaos: accepted batches are
/// appended to the WAL *before* being acked, controller kills/restarts
/// from `durability.crashes` are injected as events (recovery replays the
/// log into a fresh controller), and the returned [`ChaosReport`] carries
/// the recovery invariants — most importantly `acked_lost`, which must be
/// zero whenever a WAL is configured.
///
/// # Errors
///
/// Everything [`run_session`] returns, plus [`crate::CollectError::Wal`]
/// and [`crate::CollectError::Recovery`] from the durability layer, and
/// [`crate::CollectError::Overload`] if an agent's spill buffer hits its
/// bound in strict (non-`drop_oldest`) mode.
pub fn run_session_durable(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    config: &CampaignConfig,
    durability: &Durability,
) -> Result<(DriverRecording, ChaosReport)> {
    let session_end = segments
        .iter()
        .filter(|s| s.driver == driver)
        .map(|s| s.end())
        .fold(0.0f64, f64::max);
    let script: Vec<Segment<Behavior>> = segments
        .iter()
        .filter(|s| s.driver == driver)
        .copied()
        .collect();

    let mut rng = SplitMix64::new(config.seed ^ (driver as u64).wrapping_mul(0x9E37_79B9));
    let agent_config = AgentConfig {
        poll_period: config.imu_period,
        transmit_period: config.transmit_period,
        spill: config.spill,
    };
    let cam_config = AgentConfig {
        poll_period: config.camera_period,
        transmit_period: config.transmit_period,
        spill: config.spill,
    };
    // Phone agent: full clock imperfection. Camera agent runs on the same
    // tablet as the controller in the paper's deployment, so its clock is
    // nearly perfect (tiny residual drift).
    let mut imu_agent = CollectionAgent::new(
        0,
        Box::new(ImuSensor::new(
            Arc::clone(world),
            driver,
            script.clone(),
            config.imu_period,
        )),
        DriftClock::random(&config.clock, &mut rng),
        agent_config,
    )
    .with_transport(config.retransmit, rng.next_u64());
    let mut cam_agent = CollectionAgent::new(
        1,
        Box::new(CameraSensor::new(
            Arc::clone(world),
            driver,
            script.clone(),
            config.camera_period,
        )),
        DriftClock::new(1e-6, 0.0),
        cam_config,
    )
    .with_transport(config.retransmit, rng.next_u64());
    let mut imu_link = Link::new(config.link, rng.next_u64());
    let mut cam_link = Link::new(config.link, rng.next_u64());
    let mut sync_link = Link::new(config.link, rng.next_u64());
    // Reverse (controller → agent) ack links suffer the same faults.
    let mut imu_ack_link = Link::new(config.link, rng.next_u64());
    let mut cam_ack_link = Link::new(config.link, rng.next_u64());

    let mut chaos = ChaosReport::default();
    // Open the durable controller: a pre-populated store replays here
    // (resuming a prior incarnation's session), an empty one starts clean.
    let (mut controller, mut wal) = match &durability.storage {
        Some(storage) => {
            let (controller, wal, report) =
                wal::open(config.controller, Arc::clone(storage), durability.wal)?;
            chaos.replayed_records += report.records_replayed;
            chaos.torn_tail_bytes_discarded += report.torn_tail_bytes;
            (controller, Some(wal))
        }
        None => (Controller::new(config.controller), None),
    };
    // Controller liveness: while down, deliveries drop and syncs stop.
    let mut down = false;
    // Every (agent, seq) the agents saw acked — the promise the recovery
    // invariant is checked against.
    let mut acked_set: BTreeSet<(u32, u32)> = BTreeSet::new();
    // Folds a dying incarnation's WAL counters into the chaos report.
    fn retire_wal(chaos: &mut ChaosReport, wal: Option<Wal>) {
        if let Some(w) = wal {
            let s = w.stats();
            chaos.wal_appends += s.appends;
            chaos.wal_bytes += s.bytes_appended;
            chaos.wal_segments_rolled += s.segments_rolled;
            chaos.wal_snapshots += s.snapshots_taken;
        }
    }

    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Event>, time: f64, kind: EventKind, seq: &mut u64| {
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
        *seq += 1;
    };
    push(&mut heap, 0.0, EventKind::PollImu, &mut seq);
    push(&mut heap, 0.0, EventKind::PollCamera, &mut seq);
    push(
        &mut heap,
        config.transmit_period,
        EventKind::Flush(0),
        &mut seq,
    );
    push(
        &mut heap,
        config.transmit_period,
        EventKind::Flush(1),
        &mut seq,
    );
    if config.sync_enabled {
        // Startup handshake: when the controller opens the two-way channel
        // it immediately distributes its UTC, so agents begin the session
        // already synchronized (§4.1). Periodic re-syncs then follow.
        let measured = sync_link.mean_delay();
        if let Some(arrival) = sync_link.transmit(-measured) {
            imu_agent.handle_sync(arrival, -measured, measured);
            cam_agent.handle_sync(arrival, -measured, measured);
        }
        push(
            &mut heap,
            config.controller.sync_period,
            EventKind::Sync,
            &mut seq,
        );
    }
    for (i, window) in durability.crashes.iter().enumerate() {
        push(&mut heap, window.kill_t, EventKind::Crash(i), &mut seq);
        push(&mut heap, window.restart_t, EventKind::Restart(i), &mut seq);
    }

    // Batches awaiting delivery. Entries stay allocated so duplicated
    // arrivals (link-level duplication) can read them again; the
    // controller's sequence dedupe keeps re-delivery harmless.
    let mut pending: Vec<Batch> = Vec::new();
    let mut max_clock_error = 0.0f64;
    let reliable = config.retransmit.enabled;

    while let Some(event) = heap.pop() {
        let t = event.time;
        if t > session_end + config.transmit_period + config.drain_grace {
            break;
        }
        match event.kind {
            EventKind::PollImu => {
                if t <= session_end {
                    imu_agent.poll(t)?;
                    max_clock_error = max_clock_error.max(imu_agent.clock_error(t).abs());
                    push(
                        &mut heap,
                        t + config.imu_period,
                        EventKind::PollImu,
                        &mut seq,
                    );
                }
            }
            EventKind::PollCamera => {
                if t <= session_end {
                    cam_agent.poll(t)?;
                    push(
                        &mut heap,
                        t + config.camera_period,
                        EventKind::PollCamera,
                        &mut seq,
                    );
                }
            }
            EventKind::Flush(which) => {
                let (agent, link) = if which == 0 {
                    (&mut imu_agent, &mut imu_link)
                } else {
                    (&mut cam_agent, &mut cam_link)
                };
                if let Some(batch) = agent.flush_at(t)? {
                    let id = pending.len() as u32;
                    pending.push(batch);
                    for arrival in link.transmit_all(t) {
                        push(&mut heap, arrival, EventKind::Deliver(id), &mut seq);
                    }
                }
                if reliable {
                    if let Some(deadline) = agent.next_deadline() {
                        push(&mut heap, deadline, EventKind::Retry(which), &mut seq);
                    }
                }
                if t <= session_end {
                    push(
                        &mut heap,
                        t + config.transmit_period,
                        EventKind::Flush(which),
                        &mut seq,
                    );
                }
            }
            EventKind::Sync => {
                // Controller (master) sends its UTC; the agent applies
                // master UTC + empirically measured delay on receipt. A
                // dead controller sends nothing (agents coast on drift).
                if !down {
                    if let Some(arrival) = sync_link.transmit(t) {
                        // Deliver synchronously here: sync messages are
                        // tiny and modelled without reordering against
                        // data.
                        let measured = sync_link.mean_delay();
                        imu_agent.handle_sync(arrival, t, measured);
                        cam_agent.handle_sync(arrival, t, measured);
                    }
                }
                if t <= session_end {
                    push(
                        &mut heap,
                        t + config.controller.sync_period,
                        EventKind::Sync,
                        &mut seq,
                    );
                }
            }
            EventKind::Deliver(id) => {
                if down {
                    // The controller process is dead: the delivery is
                    // lost and never acked — the agent's retransmission
                    // schedule will offer it again after the restart.
                    chaos.deliveries_while_down += 1;
                    continue;
                }
                // Round-trip through the wire format, as the real system
                // would.
                let decoded = decode_batch(encode_batch(&pending[id as usize]))?;
                let ack = Controller::ack_for(&decoded);
                // Durable ack ordering: admission first, then dedup, then
                // WAL append, and only then state mutation + ack.
                let outcome = controller.offer_at(t, &decoded, wal.as_mut())?;
                if outcome == IngestOutcome::Shed {
                    // Shed = deferred, not lost: no ack, so the agent's
                    // backoff schedule retries once pressure drains.
                    chaos.shed_batches += 1;
                    continue;
                }
                if let Some(w) = wal.as_mut() {
                    if w.needs_snapshot() {
                        w.snapshot(&controller)?;
                    }
                }
                if reliable {
                    // Ack every accepted or duplicate delivery —
                    // duplicates included, since a duplicate usually
                    // means the previous ack was lost.
                    let ack = decode_ack(encode_ack(&ack))?;
                    let agent_idx = ack.agent_id as usize;
                    let ack_link = if agent_idx == 0 {
                        &mut imu_ack_link
                    } else {
                        &mut cam_ack_link
                    };
                    for arrival in ack_link.transmit_all(t) {
                        push(
                            &mut heap,
                            arrival,
                            EventKind::DeliverAck {
                                agent: agent_idx,
                                seq: ack.seq,
                            },
                            &mut seq,
                        );
                    }
                }
            }
            EventKind::DeliverAck { agent, seq: acked } => {
                let a = if agent == 0 {
                    &mut imu_agent
                } else {
                    &mut cam_agent
                };
                a.handle_ack(acked);
                // The agent now believes this batch is durable — exactly
                // the promise the recovery invariant checks.
                acked_set.insert((agent as u32, acked));
            }
            EventKind::Retry(which) => {
                let (agent, link) = if which == 0 {
                    (&mut imu_agent, &mut imu_link)
                } else {
                    (&mut cam_agent, &mut cam_link)
                };
                for batch in agent.due_retransmits(t)? {
                    let id = pending.len() as u32;
                    pending.push(batch);
                    for arrival in link.transmit_all(t) {
                        push(&mut heap, arrival, EventKind::Deliver(id), &mut seq);
                    }
                }
                if let Some(deadline) = agent.next_deadline() {
                    push(&mut heap, deadline, EventKind::Retry(which), &mut seq);
                }
            }
            EventKind::Crash(_) => {
                if down {
                    continue;
                }
                // A real crash can tear the tail of the segment being
                // written; model it with seeded garbage, which recovery
                // must truncate away.
                if durability.torn_tail_bytes > 0 {
                    if let Some(w) = wal.as_mut() {
                        let garbage: Vec<u8> = (0..durability.torn_tail_bytes)
                            .map(|_| (rng.next_u64() & 0xFF) as u8)
                            .collect();
                        w.simulate_torn_tail(&garbage)?;
                    }
                }
                // The process dies: all in-memory controller state is
                // gone. Only the WAL storage (held by `durability`)
                // survives.
                retire_wal(&mut chaos, wal.take());
                controller = Controller::new(config.controller);
                down = true;
            }
            EventKind::Restart(_) => {
                if !down {
                    continue;
                }
                down = false;
                chaos.recoveries += 1;
                if let Some(storage) = &durability.storage {
                    let (recovered, new_wal, report) =
                        wal::open(config.controller, Arc::clone(storage), durability.wal)?;
                    chaos.replayed_records += report.records_replayed;
                    chaos.torn_tail_bytes_discarded += report.torn_tail_bytes;
                    controller = recovered;
                    wal = Some(new_wal);
                }
                // Without storage the fresh (empty) controller from the
                // crash simply resumes — the negative control that shows
                // what the WAL is for.
            }
        }
    }

    // Session ended mid-outage: run the recovery that the next controller
    // incarnation would, so the recording reflects the durable state.
    if down {
        if let Some(storage) = &durability.storage {
            chaos.recoveries += 1;
            let (recovered, new_wal, report) =
                wal::open(config.controller, Arc::clone(storage), durability.wal)?;
            chaos.replayed_records += report.records_replayed;
            chaos.torn_tail_bytes_discarded += report.torn_tail_bytes;
            controller = recovered;
            wal = Some(new_wal);
        }
    }
    retire_wal(&mut chaos, wal.take());

    // The recovery invariant: every batch an agent saw acked must be in
    // the final controller state.
    chaos.acked = acked_set.len() as u64;
    chaos.acked_lost = acked_set
        .iter()
        .filter(|&&(agent, s)| !controller.has_seen(agent, s))
        .count() as u64;
    chaos.spill_dropped =
        imu_agent.spill_stats().dropped_oldest + cam_agent.spill_stats().dropped_oldest;
    chaos.spill_peak = imu_agent
        .spill_stats()
        .peak_buffered
        .max(cam_agent.spill_stats().peak_buffered);

    let transport = SessionTransportReport {
        imu: imu_agent.transport_stats(),
        camera: cam_agent.transport_stats(),
        imu_link: imu_link.link_stats(),
        camera_link: cam_link.link_stats(),
        imu_stream: controller.stream_health(0),
        camera_stream: controller.stream_health(1),
        readings_polled: imu_agent.poll_count() + cam_agent.poll_count(),
        readings_ingested: controller.ingest_stats().1,
        imu_spill: imu_agent.spill_stats(),
        camera_spill: cam_agent.spill_stats(),
    };
    let imu = controller.aligned_imu()?;
    let frames = controller.frames_sorted();
    Ok((
        DriverRecording {
            driver,
            imu,
            frames,
            max_clock_error,
            transport,
        },
        chaos,
    ))
}

/// Runs the full campaign (every driver session in the schedule).
///
/// # Errors
///
/// Propagates per-session errors.
pub fn run_campaign(
    world: &Arc<DrivingWorld>,
    segments: &[Segment<Behavior>],
    config: &CampaignConfig,
) -> Result<Vec<DriverRecording>> {
    let mut drivers: Vec<usize> = segments.iter().map(|s| s.driver).collect();
    drivers.sort_unstable();
    drivers.dedup();
    drivers
        .into_iter()
        .map(|d| run_session(world, d, segments, config))
        .collect()
}

/// Runs the full campaign with durability and chaos. Each driver session
/// is an independent controller, so `durability_for` supplies a
/// [`Durability`] (typically with its own storage) per driver.
///
/// # Errors
///
/// Propagates per-session errors, including the durability layer's
/// [`crate::CollectError::Wal`] / [`crate::CollectError::Recovery`].
pub fn run_campaign_durable(
    world: &Arc<DrivingWorld>,
    segments: &[Segment<Behavior>],
    config: &CampaignConfig,
    mut durability_for: impl FnMut(usize) -> Durability,
) -> Result<Vec<(DriverRecording, ChaosReport)>> {
    let mut drivers: Vec<usize> = segments.iter().map(|s| s.driver).collect();
    drivers.sort_unstable();
    drivers.dedup();
    drivers
        .into_iter()
        .map(|d| {
            let durability = durability_for(d);
            run_session_durable(world, d, segments, config, &durability)
        })
        .collect()
}

/// The collected output of one driver's canonical multi-stream session:
/// one aligned IMU stream plus any number of camera streams, each tagged
/// with its [`StreamId`] so the analytics registry can address them
/// generically.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStreamRecording {
    /// Driver id.
    pub driver: usize,
    /// Aligned, smoothed IMU stream (empty if the IMU stream was absent
    /// or delivered nothing).
    pub imu: Vec<AlignedImuPoint>,
    /// Per-camera-stream frames in timestamp order, keyed by stream and
    /// sorted by [`StreamId`].
    pub frame_streams: Vec<(StreamId, Vec<FrameRecord>)>,
    /// Controller-side health per registered stream (in registration
    /// order; `None` if the stream never delivered a batch).
    pub health: Vec<(StreamId, Option<StreamHealth>)>,
    /// Maximum absolute agent clock error observed at poll instants.
    pub max_clock_error: f64,
}

impl MultiStreamRecording {
    /// Frames of one camera stream (empty slice if not registered).
    pub fn frames_for(&self, stream: StreamId) -> &[FrameRecord] {
        self.frame_streams
            .iter()
            .find(|(s, _)| *s == stream)
            .map(|(_, frames)| frames.as_slice())
            .unwrap_or(&[])
    }

    /// Controller health of one stream, if it delivered anything.
    pub fn health_for(&self, stream: StreamId) -> Option<StreamHealth> {
        self.health
            .iter()
            .find(|(s, _)| *s == stream)
            .and_then(|(_, h)| *h)
    }

    /// Pairs one camera stream's frames with trailing IMU windows — the
    /// same alignment as [`DriverRecording::aligned_tuples`], applied per
    /// stream.
    pub fn aligned_tuples_for(&self, stream: StreamId, window_len: usize) -> Vec<AlignedTuple> {
        pair_frames_with_windows(self.frames_for(stream), &self.imu, window_len)
    }
}

/// Event vocabulary of the canonical N-agent session loop. Unlike the
/// legacy [`EventKind`], agents are addressed by index into the session's
/// stream registration order, so any number of streams share one loop.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CanonEvent {
    Poll(usize),
    Flush(usize),
    Sync,
    Deliver(u32),
    DeliverAck { agent: usize, seq: u32 },
    Retry(usize),
}

/// Builds the sensor, clock, and poll period for one registered stream.
/// The front camera shares the controller tablet (near-perfect clock, as
/// in the legacy session); the IMU phone and the side camera are
/// independent devices with imperfect clocks.
fn canonical_agent(
    world: &Arc<DrivingWorld>,
    driver: usize,
    script: &[Segment<darnet_sim::CanonicalBehavior>],
    stream: StreamId,
    config: &CampaignConfig,
    rng: &mut SplitMix64,
) -> Result<(CollectionAgent, f64)> {
    use crate::sensor::{CameraView, CanonicalCameraSensor, CanonicalImuSensor};
    let (sensor, clock, period): (Box<dyn crate::sensor::Sensor>, DriftClock, f64) = match stream {
        StreamId::IMU => (
            Box::new(CanonicalImuSensor::new(
                Arc::clone(world),
                driver,
                script.to_vec(),
                config.imu_period,
            )),
            DriftClock::random(&config.clock, rng),
            config.imu_period,
        ),
        StreamId::CAMERA_FRONT => (
            Box::new(CanonicalCameraSensor::new(
                Arc::clone(world),
                driver,
                script.to_vec(),
                config.camera_period,
                CameraView::Front,
            )),
            DriftClock::new(1e-6, 0.0),
            config.camera_period,
        ),
        StreamId::CAMERA_SIDE => (
            Box::new(CanonicalCameraSensor::new(
                Arc::clone(world),
                driver,
                script.to_vec(),
                config.camera_period,
                CameraView::Side,
            )),
            DriftClock::random(&config.clock, rng),
            config.camera_period,
        ),
        other => {
            return Err(crate::CollectError::InvalidConfig(format!(
                "no canonical sensor registered for stream {other}"
            )))
        }
    };
    let agent_config = AgentConfig {
        poll_period: period,
        transmit_period: config.transmit_period,
        spill: config.spill,
    };
    let agent = CollectionAgent::new(stream.agent_id(), sensor, clock, agent_config)
        .with_transport(config.retransmit, rng.next_u64());
    Ok((agent, period))
}

/// Runs one driver's canonical multi-stream session: any subset of
/// {IMU, front camera, side camera} over the 8-class script, with an
/// optional per-stream [`LinkConfig`] override (fault injection on one
/// stream while the others run clean — the multi-view ablation's knob).
///
/// The legacy two-agent [`run_session`] is untouched; this is the
/// generalized N-agent loop the modality registry consumes.
///
/// # Errors
///
/// [`crate::CollectError::InvalidConfig`] for an unknown stream id, plus
/// everything the transport/alignment layers return.
pub fn run_canonical_session(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<darnet_sim::CanonicalBehavior>],
    config: &CampaignConfig,
    streams: &[StreamId],
    link_overrides: &[(StreamId, LinkConfig)],
) -> Result<MultiStreamRecording> {
    let session_end = segments
        .iter()
        .filter(|s| s.driver == driver)
        .map(|s| s.end())
        .fold(0.0f64, f64::max);
    let script: Vec<Segment<darnet_sim::CanonicalBehavior>> = segments
        .iter()
        .filter(|s| s.driver == driver)
        .copied()
        .collect();
    let link_for = |stream: StreamId| {
        link_overrides
            .iter()
            .find(|(s, _)| *s == stream)
            .map(|(_, l)| *l)
            .unwrap_or(config.link)
    };

    // A distinct seed domain from the legacy session so the two paths
    // never alias, while staying per-driver deterministic.
    let mut rng = SplitMix64::new(
        config.seed ^ (driver as u64).wrapping_mul(0x9E37_79B9) ^ 0xCA40_0515_0A11_ED00,
    );
    let mut agents = Vec::with_capacity(streams.len());
    let mut periods = Vec::with_capacity(streams.len());
    for &stream in streams {
        let (agent, period) = canonical_agent(world, driver, &script, stream, config, &mut rng)?;
        agents.push(agent);
        periods.push(period);
    }
    let mut links: Vec<Link> = streams
        .iter()
        .map(|&s| Link::new(link_for(s), rng.next_u64()))
        .collect();
    let mut sync_link = Link::new(config.link, rng.next_u64());
    let mut ack_links: Vec<Link> = streams
        .iter()
        .map(|&s| Link::new(link_for(s), rng.next_u64()))
        .collect();
    let mut controller = Controller::new(config.controller);

    let mut heap: BinaryHeap<TimedEvent<CanonEvent>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<TimedEvent<CanonEvent>>,
                time: f64,
                kind: CanonEvent,
                seq: &mut u64| {
        heap.push(TimedEvent {
            time,
            seq: *seq,
            kind,
        });
        *seq += 1;
    };
    for i in 0..agents.len() {
        push(&mut heap, 0.0, CanonEvent::Poll(i), &mut seq);
        push(
            &mut heap,
            config.transmit_period,
            CanonEvent::Flush(i),
            &mut seq,
        );
    }
    if config.sync_enabled {
        // Startup handshake, as in the legacy session (§4.1).
        let measured = sync_link.mean_delay();
        if let Some(arrival) = sync_link.transmit(-measured) {
            for agent in &mut agents {
                agent.handle_sync(arrival, -measured, measured);
            }
        }
        push(
            &mut heap,
            config.controller.sync_period,
            CanonEvent::Sync,
            &mut seq,
        );
    }

    let mut pending: Vec<Batch> = Vec::new();
    let mut max_clock_error = 0.0f64;
    let reliable = config.retransmit.enabled;

    while let Some(event) = heap.pop() {
        let t = event.time;
        if t > session_end + config.transmit_period + config.drain_grace {
            break;
        }
        match event.kind {
            CanonEvent::Poll(i) => {
                if t <= session_end {
                    agents[i].poll(t)?;
                    max_clock_error = max_clock_error.max(agents[i].clock_error(t).abs());
                    push(&mut heap, t + periods[i], CanonEvent::Poll(i), &mut seq);
                }
            }
            CanonEvent::Flush(i) => {
                if let Some(batch) = agents[i].flush_at(t)? {
                    let id = pending.len() as u32;
                    pending.push(batch);
                    for arrival in links[i].transmit_all(t) {
                        push(&mut heap, arrival, CanonEvent::Deliver(id), &mut seq);
                    }
                }
                if reliable {
                    if let Some(deadline) = agents[i].next_deadline() {
                        push(&mut heap, deadline, CanonEvent::Retry(i), &mut seq);
                    }
                }
                if t <= session_end {
                    push(
                        &mut heap,
                        t + config.transmit_period,
                        CanonEvent::Flush(i),
                        &mut seq,
                    );
                }
            }
            CanonEvent::Sync => {
                if let Some(arrival) = sync_link.transmit(t) {
                    let measured = sync_link.mean_delay();
                    for agent in &mut agents {
                        agent.handle_sync(arrival, t, measured);
                    }
                }
                if t <= session_end {
                    push(
                        &mut heap,
                        t + config.controller.sync_period,
                        CanonEvent::Sync,
                        &mut seq,
                    );
                }
            }
            CanonEvent::Deliver(id) => {
                let decoded = decode_batch(encode_batch(&pending[id as usize]))?;
                let ack = Controller::ack_for(&decoded);
                let outcome = controller.offer_at(t, &decoded, None)?;
                if outcome == IngestOutcome::Shed {
                    continue;
                }
                if reliable {
                    let ack = decode_ack(encode_ack(&ack))?;
                    if let Some(idx) = streams.iter().position(|s| s.agent_id() == ack.agent_id) {
                        for arrival in ack_links[idx].transmit_all(t) {
                            push(
                                &mut heap,
                                arrival,
                                CanonEvent::DeliverAck {
                                    agent: idx,
                                    seq: ack.seq,
                                },
                                &mut seq,
                            );
                        }
                    }
                }
            }
            CanonEvent::DeliverAck { agent, seq: acked } => {
                agents[agent].handle_ack(acked);
            }
            CanonEvent::Retry(i) => {
                for batch in agents[i].due_retransmits(t)? {
                    let id = pending.len() as u32;
                    pending.push(batch);
                    for arrival in links[i].transmit_all(t) {
                        push(&mut heap, arrival, CanonEvent::Deliver(id), &mut seq);
                    }
                }
                if let Some(deadline) = agents[i].next_deadline() {
                    push(&mut heap, deadline, CanonEvent::Retry(i), &mut seq);
                }
            }
        }
    }

    let imu = match controller.aligned_imu() {
        Ok(points) => points,
        Err(crate::CollectError::NoData(_)) => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut frame_streams: Vec<(StreamId, Vec<FrameRecord>)> = streams
        .iter()
        .filter(|&&s| s != StreamId::IMU)
        .map(|&s| (s, controller.frames_sorted_for(s)))
        .collect();
    frame_streams.sort_by_key(|(s, _)| *s);
    let health = streams
        .iter()
        .map(|&s| (s, controller.stream_health_by_id(s)))
        .collect();
    Ok(MultiStreamRecording {
        driver,
        imu,
        frame_streams,
        health,
        max_clock_error,
    })
}

/// Runs a canonical multi-stream campaign: one
/// [`run_canonical_session`] per driver in the schedule.
///
/// # Errors
///
/// Propagates per-session errors.
pub fn run_canonical_campaign(
    world: &Arc<DrivingWorld>,
    segments: &[Segment<darnet_sim::CanonicalBehavior>],
    config: &CampaignConfig,
    streams: &[StreamId],
    link_overrides: &[(StreamId, LinkConfig)],
) -> Result<Vec<MultiStreamRecording>> {
    let mut drivers: Vec<usize> = segments.iter().map(|s| s.driver).collect();
    drivers.sort_unstable();
    drivers.dedup();
    drivers
        .into_iter()
        .map(|d| run_canonical_session(world, d, segments, config, streams, link_overrides))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FaultConfig;
    use darnet_sim::WorldConfig;

    fn short_schedule() -> Vec<Segment<Behavior>> {
        vec![
            Segment {
                driver: 0,
                behavior: Behavior::NormalDriving,
                start: 0.0,
                duration: 5.0,
            },
            Segment {
                driver: 0,
                behavior: Behavior::Texting,
                start: 5.0,
                duration: 5.0,
            },
        ]
    }

    fn world() -> Arc<DrivingWorld> {
        Arc::new(DrivingWorld::new(WorldConfig::default()))
    }

    #[test]
    fn session_produces_aligned_imu_and_frames() {
        let rec = run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        // 10 s at 4 Hz ≈ 40 grid points; 10 s at 4 fps ≈ 40 frames.
        assert!(rec.imu.len() >= 35, "imu points {}", rec.imu.len());
        assert!(rec.frames.len() >= 35, "frames {}", rec.frames.len());
        assert_eq!(rec.driver, 0);
        // Grid is strictly increasing.
        assert!(rec.imu.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn aligned_tuples_pair_frames_with_trailing_windows() {
        let rec = run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        let window_len = 20;
        let features = rec.imu[0].features.len();
        let tuples = rec.aligned_tuples(window_len);
        assert!(!tuples.is_empty());
        assert!(tuples.len() <= rec.frames.len());
        for tup in &tuples {
            assert_eq!(tup.window.len(), window_len * features);
            // The window ends at the last grid point not after the frame.
            let hi = rec.imu.partition_point(|p| p.t <= tup.t);
            let last = &rec.imu[hi - 1];
            assert_eq!(
                &tup.window[(window_len - 1) * features..],
                &last.features[..]
            );
        }
        // Early frames (grid younger than the window) are front-padded
        // with a repeated earliest point, never zeros.
        let first = &tuples[0];
        assert_eq!(
            &first.window[..features],
            &first.window[features..2 * features]
        );
        // Degenerate inputs produce no tuples rather than panicking.
        assert!(rec.aligned_tuples(0).is_empty());
        let empty = DriverRecording {
            imu: Vec::new(),
            ..rec.clone()
        };
        assert!(empty.aligned_tuples(window_len).is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig::default();
        let a = run_campaign(&world(), &short_schedule(), &config).unwrap();
        let b = run_campaign(&world(), &short_schedule(), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sync_keeps_clock_error_small() {
        let config = CampaignConfig::default();
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        // With 5 s re-sync, error is bounded by drift × period + jitter.
        assert!(
            rec.max_clock_error < 0.02,
            "clock error {}",
            rec.max_clock_error
        );
    }

    #[test]
    fn disabling_sync_leaves_large_clock_error() {
        let config = CampaignConfig {
            sync_enabled: false,
            ..CampaignConfig::default()
        };
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        // Initial offset up to 0.25 s is never corrected.
        let synced =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        assert!(rec.max_clock_error > synced.max_clock_error);
    }

    #[test]
    fn lossy_network_without_retransmission_drops_data() {
        // The legacy fire-and-forget mode: losses become gaps the
        // controller merely accounts for.
        let mut config = CampaignConfig::default();
        config.link.loss = 0.2;
        config.retransmit = RetransmitConfig::disabled();
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        let lossless =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        // Fewer frames arrive, but the pipeline interpolates through gaps.
        assert!(rec.frames.len() < lossless.frames.len());
        assert!(!rec.imu.is_empty());
        assert!(!rec.transport.lossless());
        // The controller's gap accounting notices the missing batches.
        let gaps = rec.transport.imu_stream.map(|h| h.gaps).unwrap_or(0)
            + rec.transport.camera_stream.map(|h| h.gaps).unwrap_or(0);
        assert!(gaps > 0, "expected accounted gaps at 20% loss");
    }

    #[test]
    fn retransmission_recovers_every_sample_at_heavy_loss() {
        // The acceptance scenario: ≥10% loss plus a 2-second blackout mid
        // session, yet every polled sample reaches the controller.
        let mut config = CampaignConfig::default();
        config.link.loss = 0.1;
        config.link.faults = FaultConfig {
            blackout: Some((3.0, 5.0)),
            ..FaultConfig::default()
        };
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        assert!(
            rec.transport.imu_link.lost + rec.transport.imu_link.blackout_drops > 0,
            "fault injection should actually drop transmissions"
        );
        assert!(
            rec.transport.lossless(),
            "retransmission must recover all samples: polled {} ingested {}",
            rec.transport.readings_polled,
            rec.transport.readings_ingested
        );
        assert_eq!(rec.transport.imu.abandoned, 0);
        assert_eq!(rec.transport.camera.abandoned, 0);
        assert_eq!(rec.transport.imu_stream.unwrap().gaps, 0);
        assert_eq!(rec.transport.camera_stream.unwrap().gaps, 0);
        assert!(
            rec.transport.imu.retransmits > 0,
            "blackout must force retries"
        );
        // And the recovered recording matches a lossless run's volume.
        let lossless =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        assert_eq!(rec.frames.len(), lossless.frames.len());
    }

    #[test]
    fn faulty_campaign_is_deterministic() {
        let mut config = CampaignConfig::default();
        config.link.loss = 0.15;
        config.link.faults = FaultConfig::bursty(0.05, 0.3);
        config.link.faults.duplicate = 0.1;
        let a = run_campaign(&world(), &short_schedule(), &config).unwrap();
        let b = run_campaign(&world(), &short_schedule(), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicated_deliveries_do_not_inflate_the_recording() {
        let mut config = CampaignConfig::default();
        config.link.faults.duplicate = 0.5;
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        let clean =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        assert_eq!(rec.frames.len(), clean.frames.len());
        assert_eq!(
            rec.transport.readings_ingested,
            clean.transport.readings_ingested
        );
        let dups = rec.transport.imu_stream.unwrap().duplicates
            + rec.transport.camera_stream.unwrap().duplicates;
        assert!(
            dups > 0,
            "50% duplication should produce duplicate deliveries"
        );
    }

    fn chaos_durability(storage: Option<Arc<crate::wal::MemStorage>>) -> Durability {
        Durability {
            storage: storage.map(|s| s as Arc<dyn WalStorage>),
            wal: WalConfig {
                segment_max_records: 8,
                snapshot_every: 20,
            },
            crashes: vec![
                CrashWindow {
                    kill_t: 3.0,
                    restart_t: 4.0,
                },
                CrashWindow {
                    kill_t: 7.0,
                    restart_t: 7.75,
                },
            ],
            torn_tail_bytes: 13,
        }
    }

    #[test]
    fn crash_without_wal_loses_acked_data() {
        // Negative control: no WAL, so a controller crash erases state
        // the agents were already told was safe.
        let (rec, chaos) = run_session_durable(
            &world(),
            0,
            &short_schedule(),
            &CampaignConfig::default(),
            &chaos_durability(None),
        )
        .unwrap();
        assert_eq!(chaos.recoveries, 2);
        assert!(chaos.deliveries_while_down > 0);
        assert!(
            chaos.acked_lost > 0,
            "without a WAL, acked pre-crash batches must be gone \
             (acked {} lost {})",
            chaos.acked,
            chaos.acked_lost
        );
        assert!(!rec.transport.lossless());
    }

    #[test]
    fn wal_recovery_loses_no_acked_samples() {
        // The tentpole invariant: crashes, torn tail writes, and link
        // loss together lose nothing that was ever acked.
        let storage = Arc::new(crate::wal::MemStorage::new());
        let mut config = CampaignConfig::default();
        config.link.loss = 0.05;
        let (rec, chaos) = run_session_durable(
            &world(),
            0,
            &short_schedule(),
            &config,
            &chaos_durability(Some(Arc::clone(&storage))),
        )
        .unwrap();
        assert_eq!(chaos.recoveries, 2);
        assert!(chaos.replayed_records > 0, "replay must do real work");
        assert!(
            chaos.torn_tail_bytes_discarded >= 13,
            "each kill tears the tail; recovery must repair it (got {})",
            chaos.torn_tail_bytes_discarded
        );
        assert_eq!(
            chaos.acked_lost, 0,
            "WAL recovery must preserve every acked batch ({} acked)",
            chaos.acked
        );
        assert!(chaos.wal_appends > 0 && chaos.wal_snapshots > 0);
        // Hold-and-resume: with retransmission across the outages, the
        // recording ends complete.
        assert!(
            rec.transport.lossless(),
            "polled {} ingested {}",
            rec.transport.readings_polled,
            rec.transport.readings_ingested
        );
        // Recovery is bitwise-deterministic: an identical re-run against
        // a fresh store leaves a log that recovers to the same digest.
        let storage2 = Arc::new(crate::wal::MemStorage::new());
        let _ = run_session_durable(
            &world(),
            0,
            &short_schedule(),
            &config,
            &chaos_durability(Some(Arc::clone(&storage2))),
        )
        .unwrap();
        let (recovered_a, _, _) = crate::wal::open(
            config.controller,
            storage as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        let (recovered_b, _, _) = crate::wal::open(
            config.controller,
            storage2 as Arc<dyn WalStorage>,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered_a.state_digest(), recovered_b.state_digest());
    }

    #[test]
    fn durable_chaos_runs_are_deterministic() {
        let run = || {
            let storage = Arc::new(crate::wal::MemStorage::new());
            run_session_durable(
                &world(),
                0,
                &short_schedule(),
                &CampaignConfig::default(),
                &chaos_durability(Some(storage)),
            )
            .unwrap()
        };
        let (rec_a, chaos_a) = run();
        let (rec_b, chaos_b) = run();
        assert_eq!(rec_a, rec_b);
        assert_eq!(chaos_a, chaos_b);
    }

    #[test]
    fn admission_pressure_sheds_then_recovers() {
        let mut config = CampaignConfig::default();
        // A starved token bucket: frames (low priority) get shed under
        // pressure, IMU (high priority) keeps flowing.
        config.controller.admission = crate::controller::AdmissionConfig {
            enabled: true,
            capacity: 64.0,
            drain_per_sec: 24.0,
            low_priority_reserve: 32.0,
        };
        let (rec, chaos) = run_session_durable(
            &world(),
            0,
            &short_schedule(),
            &config,
            &Durability::default(),
        )
        .unwrap();
        assert!(chaos.shed_batches > 0, "starved bucket must shed");
        let cam = rec.transport.camera_stream.unwrap();
        assert!(cam.shed > 0 && cam.shed_ratio() > 0.0);
        // Lowest priority sheds first: the frame stream bears the brunt
        // while the IMU stream stays comparatively whole, so the aligned
        // stream the ensemble degrades onto still exists.
        let imu = rec.transport.imu_stream.unwrap();
        assert!(
            imu.shed_ratio() < cam.shed_ratio(),
            "imu {} vs cam {}",
            imu.shed_ratio(),
            cam.shed_ratio()
        );
        assert!(!rec.imu.is_empty());
    }

    fn canonical_schedule_short() -> Vec<Segment<darnet_sim::CanonicalBehavior>> {
        use darnet_sim::CanonicalBehavior;
        vec![
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::NormalDriving,
                start: 0.0,
                duration: 4.0,
            },
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::HeadDroop,
                start: 4.0,
                duration: 4.0,
            },
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::Texting,
                start: 8.0,
                duration: 4.0,
            },
        ]
    }

    const THREE_STREAMS: [StreamId; 3] =
        [StreamId::IMU, StreamId::CAMERA_FRONT, StreamId::CAMERA_SIDE];

    #[test]
    fn canonical_session_collects_all_three_streams() {
        let rec = run_canonical_session(
            &world(),
            0,
            &canonical_schedule_short(),
            &CampaignConfig::default(),
            &THREE_STREAMS,
            &[],
        )
        .unwrap();
        assert!(rec.imu.len() >= 40, "imu points {}", rec.imu.len());
        let front = rec.frames_for(StreamId::CAMERA_FRONT);
        let side = rec.frames_for(StreamId::CAMERA_SIDE);
        assert!(front.len() >= 40, "front frames {}", front.len());
        assert!(side.len() >= 40, "side frames {}", side.len());
        // Views are genuinely different images of the same session.
        assert_ne!(front[10].frame, side[10].frame);
        // Per-stream health exists for every registered stream.
        for s in THREE_STREAMS {
            assert!(rec.health_for(s).is_some(), "no health for {s}");
        }
        // Each camera stream aligns against the shared IMU grid.
        let tuples = rec.aligned_tuples_for(StreamId::CAMERA_SIDE, 20);
        assert!(!tuples.is_empty());
        assert_eq!(tuples[0].window.len(), 20 * rec.imu[0].features.len());
    }

    #[test]
    fn canonical_campaign_is_deterministic() {
        let run = || {
            run_canonical_campaign(
                &world(),
                &canonical_schedule_short(),
                &CampaignConfig::default(),
                &THREE_STREAMS,
                &[],
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_stream_blackout_silences_only_that_stream() {
        // The multi-view ablation's knob: a dead side-camera link must not
        // perturb the front camera or the IMU.
        let dead = LinkConfig {
            faults: FaultConfig {
                blackout: Some((0.0, 1e9)),
                ..FaultConfig::default()
            },
            ..LinkConfig::default()
        };
        let rec = run_canonical_session(
            &world(),
            0,
            &canonical_schedule_short(),
            &CampaignConfig::default(),
            &THREE_STREAMS,
            &[(StreamId::CAMERA_SIDE, dead)],
        )
        .unwrap();
        let clean = run_canonical_session(
            &world(),
            0,
            &canonical_schedule_short(),
            &CampaignConfig::default(),
            &THREE_STREAMS,
            &[],
        )
        .unwrap();
        assert!(rec.frames_for(StreamId::CAMERA_SIDE).is_empty());
        assert!(rec.health_for(StreamId::CAMERA_SIDE).is_none());
        assert_eq!(
            rec.frames_for(StreamId::CAMERA_FRONT).len(),
            clean.frames_for(StreamId::CAMERA_FRONT).len()
        );
        assert_eq!(rec.imu.len(), clean.imu.len());
    }

    #[test]
    fn canonical_session_rejects_unknown_streams() {
        let err = run_canonical_session(
            &world(),
            0,
            &canonical_schedule_short(),
            &CampaignConfig::default(),
            &[StreamId(9)],
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, crate::CollectError::InvalidConfig(_)));
    }

    #[test]
    fn multi_driver_campaign_covers_all_drivers() {
        let mut schedule = short_schedule();
        schedule.push(Segment {
            driver: 1,
            behavior: Behavior::Talking,
            start: 0.0,
            duration: 6.0,
        });
        let recs = run_campaign(&world(), &schedule, &CampaignConfig::default()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].driver, 0);
        assert_eq!(recs[1].driver, 1);
    }
}
