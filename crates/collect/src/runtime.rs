//! Discrete-event simulation driving full collection campaigns.
//!
//! For every driver session the runtime instantiates two collection agents
//! (camera + phone IMU, as in the paper's deployment), a lossy link per
//! agent, and one controller. Events — sensor polls, batch flushes, network
//! deliveries, ack deliveries, retransmission timers, and periodic clock
//! syncs — are processed in timestamp order from a binary heap, so
//! campaigns are fully deterministic for a given seed.
//!
//! With the reliable transport enabled (the default), every data delivery
//! is answered with an ack over an equally faulty reverse link; unacked
//! batches retransmit on the agent's backoff schedule until acked or
//! abandoned. After the session ends the loop keeps running for
//! [`CampaignConfig::drain_grace`] seconds so in-flight retransmissions can
//! complete.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use darnet_sim::{Behavior, DrivingWorld, Segment};
use darnet_tensor::SplitMix64;

use crate::agent::{AgentConfig, CollectionAgent, RetransmitConfig, TransportStats};
use crate::clock::{ClockConfig, DriftClock};
use crate::controller::{AlignedImuPoint, Controller, ControllerConfig, FrameRecord, StreamHealth};
use crate::network::{Link, LinkConfig, LinkStats};
use crate::sensor::{CameraSensor, ImuSensor};
use crate::wire::{decode_ack, decode_batch, encode_ack, encode_batch, Batch};
use crate::Result;

/// Campaign configuration: sensor cadences, batching, network, clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// IMU poll period (paper: 25 ms).
    pub imu_period: f64,
    /// Camera frame period (reproduction default: 4 fps).
    pub camera_period: f64,
    /// Batch transmit period.
    pub transmit_period: f64,
    /// Controller behaviour (grid, smoothing, sync period).
    pub controller: ControllerConfig,
    /// Network link model (applied to data, ack, and sync links).
    pub link: LinkConfig,
    /// Agent clock imperfection model.
    pub clock: ClockConfig,
    /// Reliable-delivery configuration for both agents.
    pub retransmit: RetransmitConfig,
    /// Seconds past the final flush the event loop keeps draining, so
    /// retransmissions of late losses can still complete.
    pub drain_grace: f64,
    /// Master seed.
    pub seed: u64,
    /// If `false`, clock synchronization is disabled (for the ablation
    /// experiment on sync necessity).
    pub sync_enabled: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            imu_period: 0.025,
            camera_period: 0.25,
            transmit_period: 0.5,
            controller: ControllerConfig::default(),
            link: LinkConfig::default(),
            clock: ClockConfig::default(),
            retransmit: RetransmitConfig::default(),
            drain_grace: 5.0,
            seed: 0xC0FFEE,
            sync_enabled: true,
        }
    }
}

/// End-of-session reliability accounting for one driver recording.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionTransportReport {
    /// IMU agent transport counters.
    pub imu: TransportStats,
    /// Camera agent transport counters.
    pub camera: TransportStats,
    /// IMU data-link fault counters.
    pub imu_link: LinkStats,
    /// Camera data-link fault counters.
    pub camera_link: LinkStats,
    /// Controller-side health of the IMU stream.
    pub imu_stream: Option<StreamHealth>,
    /// Controller-side health of the camera stream.
    pub camera_stream: Option<StreamHealth>,
    /// Readings polled by both agents over the session.
    pub readings_polled: u64,
    /// Distinct readings the controller accepted.
    pub readings_ingested: u64,
}

impl SessionTransportReport {
    /// `true` when every reading either arrived or is accounted as a gap
    /// of an abandoned batch — and with retransmission on and nothing
    /// abandoned, that means zero data loss.
    pub fn lossless(&self) -> bool {
        self.readings_ingested == self.readings_polled
    }
}

/// The collected output of one driver's session.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverRecording {
    /// Driver id.
    pub driver: usize,
    /// Aligned, smoothed 4 Hz IMU stream.
    pub imu: Vec<AlignedImuPoint>,
    /// Camera frames in timestamp order.
    pub frames: Vec<FrameRecord>,
    /// Maximum absolute agent clock error observed at poll instants
    /// (diagnostic for the sync ablation).
    pub max_clock_error: f64,
    /// Transport-layer accounting for the session.
    pub transport: SessionTransportReport,
}

/// One frame paired with the IMU window ending at its timestamp — the
/// aligned multimodal unit the analytics engine consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedTuple {
    /// Frame timestamp, seconds (controller time base).
    pub t: f64,
    /// The camera frame.
    pub frame: darnet_sim::Frame,
    /// Flattened `[window_len × features]` IMU window, time-major: the
    /// last `window_len` aligned grid points not after `t`, front-padded
    /// with the earliest included point when the session is younger than
    /// the window.
    pub window: Vec<f32>,
}

impl DriverRecording {
    /// Pairs every received frame with its trailing IMU window of
    /// `window_len` grid points. Frames that precede all IMU data are
    /// skipped (no context to classify from yet).
    pub fn aligned_tuples(&self, window_len: usize) -> Vec<AlignedTuple> {
        let mut tuples = Vec::with_capacity(self.frames.len());
        if self.imu.is_empty() || window_len == 0 {
            return tuples;
        }
        let features = self.imu[0].features.len();
        for fr in &self.frames {
            let hi = self.imu.partition_point(|p| p.t <= fr.t);
            if hi == 0 {
                continue;
            }
            let lo = hi.saturating_sub(window_len);
            let mut window = Vec::with_capacity(window_len * features);
            for _ in 0..window_len - (hi - lo) {
                window.extend_from_slice(&self.imu[lo].features);
            }
            for p in &self.imu[lo..hi] {
                window.extend_from_slice(&p.features);
            }
            tuples.push(AlignedTuple {
                t: fr.t,
                frame: fr.frame.clone(),
                window,
            });
        }
        tuples
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    PollImu,
    PollCamera,
    Flush(usize), // agent index: 0 = imu, 1 = camera
    Sync,
    Deliver(u32),                          // delivery id into pending batch storage
    DeliverAck { agent: usize, seq: u32 }, // controller ack reaching an agent
    Retry(usize),                          // ack-timeout check for one agent
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    // Tie-break so heap order is deterministic.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first. total_cmp
        // keeps the ordering panic-free even if a NaN timestamp ever
        // slipped in (it would sort last instead of aborting the loop).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Runs one driver's session and returns its recording.
///
/// # Errors
///
/// Propagates alignment errors (e.g. a session so short no IMU data was
/// collected) and, in strict transport mode, [`crate::CollectError::Transport`]
/// failures.
pub fn run_session(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    config: &CampaignConfig,
) -> Result<DriverRecording> {
    let session_end = segments
        .iter()
        .filter(|s| s.driver == driver)
        .map(|s| s.end())
        .fold(0.0f64, f64::max);
    let script: Vec<Segment<Behavior>> = segments
        .iter()
        .filter(|s| s.driver == driver)
        .copied()
        .collect();

    let mut rng = SplitMix64::new(config.seed ^ (driver as u64).wrapping_mul(0x9E37_79B9));
    let agent_config = AgentConfig {
        poll_period: config.imu_period,
        transmit_period: config.transmit_period,
    };
    let cam_config = AgentConfig {
        poll_period: config.camera_period,
        transmit_period: config.transmit_period,
    };
    // Phone agent: full clock imperfection. Camera agent runs on the same
    // tablet as the controller in the paper's deployment, so its clock is
    // nearly perfect (tiny residual drift).
    let mut imu_agent = CollectionAgent::new(
        0,
        Box::new(ImuSensor::new(
            Arc::clone(world),
            driver,
            script.clone(),
            config.imu_period,
        )),
        DriftClock::random(&config.clock, &mut rng),
        agent_config,
    )
    .with_transport(config.retransmit, rng.next_u64());
    let mut cam_agent = CollectionAgent::new(
        1,
        Box::new(CameraSensor::new(
            Arc::clone(world),
            driver,
            script.clone(),
            config.camera_period,
        )),
        DriftClock::new(1e-6, 0.0),
        cam_config,
    )
    .with_transport(config.retransmit, rng.next_u64());
    let mut imu_link = Link::new(config.link, rng.next_u64());
    let mut cam_link = Link::new(config.link, rng.next_u64());
    let mut sync_link = Link::new(config.link, rng.next_u64());
    // Reverse (controller → agent) ack links suffer the same faults.
    let mut imu_ack_link = Link::new(config.link, rng.next_u64());
    let mut cam_ack_link = Link::new(config.link, rng.next_u64());
    let mut controller = Controller::new(config.controller);

    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Event>, time: f64, kind: EventKind, seq: &mut u64| {
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
        *seq += 1;
    };
    push(&mut heap, 0.0, EventKind::PollImu, &mut seq);
    push(&mut heap, 0.0, EventKind::PollCamera, &mut seq);
    push(
        &mut heap,
        config.transmit_period,
        EventKind::Flush(0),
        &mut seq,
    );
    push(
        &mut heap,
        config.transmit_period,
        EventKind::Flush(1),
        &mut seq,
    );
    if config.sync_enabled {
        // Startup handshake: when the controller opens the two-way channel
        // it immediately distributes its UTC, so agents begin the session
        // already synchronized (§4.1). Periodic re-syncs then follow.
        let measured = sync_link.mean_delay();
        if let Some(arrival) = sync_link.transmit(-measured) {
            imu_agent.handle_sync(arrival, -measured, measured);
            cam_agent.handle_sync(arrival, -measured, measured);
        }
        push(
            &mut heap,
            config.controller.sync_period,
            EventKind::Sync,
            &mut seq,
        );
    }

    // Batches awaiting delivery. Entries stay allocated so duplicated
    // arrivals (link-level duplication) can read them again; the
    // controller's sequence dedupe keeps re-delivery harmless.
    let mut pending: Vec<Batch> = Vec::new();
    let mut max_clock_error = 0.0f64;
    let reliable = config.retransmit.enabled;

    while let Some(event) = heap.pop() {
        let t = event.time;
        if t > session_end + config.transmit_period + config.drain_grace {
            break;
        }
        match event.kind {
            EventKind::PollImu => {
                if t <= session_end {
                    imu_agent.poll(t);
                    max_clock_error = max_clock_error.max(imu_agent.clock_error(t).abs());
                    push(
                        &mut heap,
                        t + config.imu_period,
                        EventKind::PollImu,
                        &mut seq,
                    );
                }
            }
            EventKind::PollCamera => {
                if t <= session_end {
                    cam_agent.poll(t);
                    push(
                        &mut heap,
                        t + config.camera_period,
                        EventKind::PollCamera,
                        &mut seq,
                    );
                }
            }
            EventKind::Flush(which) => {
                let (agent, link) = if which == 0 {
                    (&mut imu_agent, &mut imu_link)
                } else {
                    (&mut cam_agent, &mut cam_link)
                };
                if let Some(batch) = agent.flush_at(t)? {
                    let id = pending.len() as u32;
                    pending.push(batch);
                    for arrival in link.transmit_all(t) {
                        push(&mut heap, arrival, EventKind::Deliver(id), &mut seq);
                    }
                }
                if reliable {
                    if let Some(deadline) = agent.next_deadline() {
                        push(&mut heap, deadline, EventKind::Retry(which), &mut seq);
                    }
                }
                if t <= session_end {
                    push(
                        &mut heap,
                        t + config.transmit_period,
                        EventKind::Flush(which),
                        &mut seq,
                    );
                }
            }
            EventKind::Sync => {
                // Controller (master) sends its UTC; the agent applies
                // master UTC + empirically measured delay on receipt.
                if let Some(arrival) = sync_link.transmit(t) {
                    // Deliver synchronously here: sync messages are tiny
                    // and modelled without reordering against data.
                    let measured = sync_link.mean_delay();
                    imu_agent.handle_sync(arrival, t, measured);
                    cam_agent.handle_sync(arrival, t, measured);
                }
                if t <= session_end {
                    push(
                        &mut heap,
                        t + config.controller.sync_period,
                        EventKind::Sync,
                        &mut seq,
                    );
                }
            }
            EventKind::Deliver(id) => {
                // Round-trip through the wire format, as the real system
                // would.
                let decoded = decode_batch(encode_batch(&pending[id as usize]))?;
                let ack = Controller::ack_for(&decoded);
                controller.ingest_at(t, &decoded);
                if reliable {
                    // Ack every delivery — duplicates included, since a
                    // duplicate usually means the previous ack was lost.
                    let ack = decode_ack(encode_ack(&ack))?;
                    let agent_idx = ack.agent_id as usize;
                    let ack_link = if agent_idx == 0 {
                        &mut imu_ack_link
                    } else {
                        &mut cam_ack_link
                    };
                    for arrival in ack_link.transmit_all(t) {
                        push(
                            &mut heap,
                            arrival,
                            EventKind::DeliverAck {
                                agent: agent_idx,
                                seq: ack.seq,
                            },
                            &mut seq,
                        );
                    }
                }
            }
            EventKind::DeliverAck { agent, seq: acked } => {
                let a = if agent == 0 {
                    &mut imu_agent
                } else {
                    &mut cam_agent
                };
                a.handle_ack(acked);
            }
            EventKind::Retry(which) => {
                let (agent, link) = if which == 0 {
                    (&mut imu_agent, &mut imu_link)
                } else {
                    (&mut cam_agent, &mut cam_link)
                };
                for batch in agent.due_retransmits(t)? {
                    let id = pending.len() as u32;
                    pending.push(batch);
                    for arrival in link.transmit_all(t) {
                        push(&mut heap, arrival, EventKind::Deliver(id), &mut seq);
                    }
                }
                if let Some(deadline) = agent.next_deadline() {
                    push(&mut heap, deadline, EventKind::Retry(which), &mut seq);
                }
            }
        }
    }

    let transport = SessionTransportReport {
        imu: imu_agent.transport_stats(),
        camera: cam_agent.transport_stats(),
        imu_link: imu_link.link_stats(),
        camera_link: cam_link.link_stats(),
        imu_stream: controller.stream_health(0),
        camera_stream: controller.stream_health(1),
        readings_polled: imu_agent.poll_count() + cam_agent.poll_count(),
        readings_ingested: controller.ingest_stats().1,
    };
    let imu = controller.aligned_imu()?;
    let frames = controller.frames_sorted();
    Ok(DriverRecording {
        driver,
        imu,
        frames,
        max_clock_error,
        transport,
    })
}

/// Runs the full campaign (every driver session in the schedule).
///
/// # Errors
///
/// Propagates per-session errors.
pub fn run_campaign(
    world: &Arc<DrivingWorld>,
    segments: &[Segment<Behavior>],
    config: &CampaignConfig,
) -> Result<Vec<DriverRecording>> {
    let mut drivers: Vec<usize> = segments.iter().map(|s| s.driver).collect();
    drivers.sort_unstable();
    drivers.dedup();
    drivers
        .into_iter()
        .map(|d| run_session(world, d, segments, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FaultConfig;
    use darnet_sim::WorldConfig;

    fn short_schedule() -> Vec<Segment<Behavior>> {
        vec![
            Segment {
                driver: 0,
                behavior: Behavior::NormalDriving,
                start: 0.0,
                duration: 5.0,
            },
            Segment {
                driver: 0,
                behavior: Behavior::Texting,
                start: 5.0,
                duration: 5.0,
            },
        ]
    }

    fn world() -> Arc<DrivingWorld> {
        Arc::new(DrivingWorld::new(WorldConfig::default()))
    }

    #[test]
    fn session_produces_aligned_imu_and_frames() {
        let rec = run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        // 10 s at 4 Hz ≈ 40 grid points; 10 s at 4 fps ≈ 40 frames.
        assert!(rec.imu.len() >= 35, "imu points {}", rec.imu.len());
        assert!(rec.frames.len() >= 35, "frames {}", rec.frames.len());
        assert_eq!(rec.driver, 0);
        // Grid is strictly increasing.
        assert!(rec.imu.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn aligned_tuples_pair_frames_with_trailing_windows() {
        let rec = run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        let window_len = 20;
        let features = rec.imu[0].features.len();
        let tuples = rec.aligned_tuples(window_len);
        assert!(!tuples.is_empty());
        assert!(tuples.len() <= rec.frames.len());
        for tup in &tuples {
            assert_eq!(tup.window.len(), window_len * features);
            // The window ends at the last grid point not after the frame.
            let hi = rec.imu.partition_point(|p| p.t <= tup.t);
            let last = &rec.imu[hi - 1];
            assert_eq!(
                &tup.window[(window_len - 1) * features..],
                &last.features[..]
            );
        }
        // Early frames (grid younger than the window) are front-padded
        // with a repeated earliest point, never zeros.
        let first = &tuples[0];
        assert_eq!(
            &first.window[..features],
            &first.window[features..2 * features]
        );
        // Degenerate inputs produce no tuples rather than panicking.
        assert!(rec.aligned_tuples(0).is_empty());
        let empty = DriverRecording {
            imu: Vec::new(),
            ..rec.clone()
        };
        assert!(empty.aligned_tuples(window_len).is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig::default();
        let a = run_campaign(&world(), &short_schedule(), &config).unwrap();
        let b = run_campaign(&world(), &short_schedule(), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sync_keeps_clock_error_small() {
        let config = CampaignConfig::default();
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        // With 5 s re-sync, error is bounded by drift × period + jitter.
        assert!(
            rec.max_clock_error < 0.02,
            "clock error {}",
            rec.max_clock_error
        );
    }

    #[test]
    fn disabling_sync_leaves_large_clock_error() {
        let config = CampaignConfig {
            sync_enabled: false,
            ..CampaignConfig::default()
        };
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        // Initial offset up to 0.25 s is never corrected.
        let synced =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        assert!(rec.max_clock_error > synced.max_clock_error);
    }

    #[test]
    fn lossy_network_without_retransmission_drops_data() {
        // The legacy fire-and-forget mode: losses become gaps the
        // controller merely accounts for.
        let mut config = CampaignConfig::default();
        config.link.loss = 0.2;
        config.retransmit = RetransmitConfig::disabled();
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        let lossless =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        // Fewer frames arrive, but the pipeline interpolates through gaps.
        assert!(rec.frames.len() < lossless.frames.len());
        assert!(!rec.imu.is_empty());
        assert!(!rec.transport.lossless());
        // The controller's gap accounting notices the missing batches.
        let gaps = rec.transport.imu_stream.map(|h| h.gaps).unwrap_or(0)
            + rec.transport.camera_stream.map(|h| h.gaps).unwrap_or(0);
        assert!(gaps > 0, "expected accounted gaps at 20% loss");
    }

    #[test]
    fn retransmission_recovers_every_sample_at_heavy_loss() {
        // The acceptance scenario: ≥10% loss plus a 2-second blackout mid
        // session, yet every polled sample reaches the controller.
        let mut config = CampaignConfig::default();
        config.link.loss = 0.1;
        config.link.faults = FaultConfig {
            blackout: Some((3.0, 5.0)),
            ..FaultConfig::default()
        };
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        assert!(
            rec.transport.imu_link.lost + rec.transport.imu_link.blackout_drops > 0,
            "fault injection should actually drop transmissions"
        );
        assert!(
            rec.transport.lossless(),
            "retransmission must recover all samples: polled {} ingested {}",
            rec.transport.readings_polled,
            rec.transport.readings_ingested
        );
        assert_eq!(rec.transport.imu.abandoned, 0);
        assert_eq!(rec.transport.camera.abandoned, 0);
        assert_eq!(rec.transport.imu_stream.unwrap().gaps, 0);
        assert_eq!(rec.transport.camera_stream.unwrap().gaps, 0);
        assert!(
            rec.transport.imu.retransmits > 0,
            "blackout must force retries"
        );
        // And the recovered recording matches a lossless run's volume.
        let lossless =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        assert_eq!(rec.frames.len(), lossless.frames.len());
    }

    #[test]
    fn faulty_campaign_is_deterministic() {
        let mut config = CampaignConfig::default();
        config.link.loss = 0.15;
        config.link.faults = FaultConfig::bursty(0.05, 0.3);
        config.link.faults.duplicate = 0.1;
        let a = run_campaign(&world(), &short_schedule(), &config).unwrap();
        let b = run_campaign(&world(), &short_schedule(), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicated_deliveries_do_not_inflate_the_recording() {
        let mut config = CampaignConfig::default();
        config.link.faults.duplicate = 0.5;
        let rec = run_session(&world(), 0, &short_schedule(), &config).unwrap();
        let clean =
            run_session(&world(), 0, &short_schedule(), &CampaignConfig::default()).unwrap();
        assert_eq!(rec.frames.len(), clean.frames.len());
        assert_eq!(
            rec.transport.readings_ingested,
            clean.transport.readings_ingested
        );
        let dups = rec.transport.imu_stream.unwrap().duplicates
            + rec.transport.camera_stream.unwrap().duplicates;
        assert!(
            dups > 0,
            "50% duplication should produce duplicate deliveries"
        );
    }

    #[test]
    fn multi_driver_campaign_covers_all_drivers() {
        let mut schedule = short_schedule();
        schedule.push(Segment {
            driver: 1,
            behavior: Behavior::Talking,
            start: 0.0,
            duration: 6.0,
        });
        let recs = run_campaign(&world(), &schedule, &CampaignConfig::default()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].driver, 0);
        assert_eq!(recs[1].driver, 1);
    }
}
