//! Drifting device clocks and the master–slave synchronization protocol.
//!
//! The paper (§4.1): *"the controller acting as the master and distributing
//! its UTC timestamp to the agents ... The agent sets its own clock to the
//! master's UTC, plus the empirically measured network delay. Because the
//! system clock is highly susceptible to drift, this synchronization
//! process is repeated every 5 seconds."*

use darnet_tensor::SplitMix64;
use serde::{Deserialize, Serialize};

/// Parameters of an agent's clock imperfection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Maximum magnitude of the initial offset, seconds.
    pub max_initial_offset: f64,
    /// Maximum magnitude of the drift rate, seconds of error per second
    /// (e.g. `50e-6` = 50 ppm, a sloppy commodity oscillator).
    pub max_drift: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            max_initial_offset: 0.25,
            max_drift: 200e-6,
        }
    }
}

/// An agent's local clock: `local(t) = t · (1 + drift) + offset`, where `t`
/// is true (controller/master) time.
///
/// [`DriftClock::apply_sync`] implements the paper's correction: on
/// receiving the master timestamp, the agent re-bases its clock to
/// `master_utc + measured_delay`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftClock {
    drift: f64,
    offset: f64,
}

impl DriftClock {
    /// Creates a clock with explicit drift and offset.
    pub fn new(drift: f64, offset: f64) -> Self {
        DriftClock { drift, offset }
    }

    /// Creates a randomized clock within the config's bounds.
    pub fn random(config: &ClockConfig, rng: &mut SplitMix64) -> Self {
        DriftClock {
            drift: (rng.next_f64() * 2.0 - 1.0) * config.max_drift,
            offset: (rng.next_f64() * 2.0 - 1.0) * config.max_initial_offset,
        }
    }

    /// A perfect clock (the controller's reference).
    pub fn perfect() -> Self {
        DriftClock {
            drift: 0.0,
            offset: 0.0,
        }
    }

    /// The drift rate (s/s).
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// Local reading at true time `t`.
    pub fn now(&self, t: f64) -> f64 {
        t * (1.0 + self.drift) + self.offset
    }

    /// Current clock error (local − true) at true time `t`.
    pub fn error(&self, t: f64) -> f64 {
        self.now(t) - t
    }

    /// Applies the paper's sync step. At true time `t` the agent receives
    /// the master's timestamp `master_utc` (captured when the sync message
    /// was sent) and re-bases its clock to `master_utc + measured_delay`.
    ///
    /// If the delay estimate equals the actual network delay, the residual
    /// error at `t` is zero and only re-accumulates through drift until the
    /// next sync.
    pub fn apply_sync(&mut self, t: f64, master_utc: f64, measured_delay: f64) {
        let target = master_utc + measured_delay;
        // Choose the new offset so that now(t) == target.
        self.offset = target - t * (1.0 + self.drift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = DriftClock::perfect();
        assert_eq!(c.now(123.456), 123.456);
        assert_eq!(c.error(50.0), 0.0);
    }

    #[test]
    fn drift_accumulates_linearly() {
        let c = DriftClock::new(100e-6, 0.0);
        assert!((c.error(100.0) - 0.01).abs() < 1e-9);
        assert!((c.error(200.0) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn sync_with_exact_delay_zeroes_error() {
        let mut c = DriftClock::new(150e-6, 0.4);
        let t = 73.0;
        // Master sent its UTC at (t - delay); agent receives at t.
        let delay = 0.02;
        c.apply_sync(t, t - delay, delay);
        assert!(c.error(t).abs() < 1e-12);
    }

    #[test]
    fn sync_error_bounded_by_delay_misestimate() {
        let mut c = DriftClock::new(0.0, 1.0);
        let t = 10.0;
        let actual_delay = 0.05;
        let estimated_delay = 0.02;
        c.apply_sync(t, t - actual_delay, estimated_delay);
        // Residual = estimate − actual.
        assert!((c.error(t) - (estimated_delay - actual_delay)).abs() < 1e-12);
    }

    #[test]
    fn periodic_sync_bounds_error_under_drift() {
        // Paper protocol: re-sync every 5 s. With drift d, the error just
        // before the next sync is at most d × 5 s (plus delay error).
        let mut c = DriftClock::new(200e-6, 0.3);
        let sync_period = 5.0;
        let mut max_err: f64 = 0.0;
        for k in 1..=20 {
            let t = k as f64 * sync_period;
            // Error right before this sync (accumulated since last sync).
            max_err = max_err.max(c.error(t).abs());
            c.apply_sync(t, t - 0.01, 0.01);
        }
        // First interval includes the initial 0.3 offset; later intervals
        // are bounded by drift × period = 1 ms.
        let steady_state_err = c.error(20.0 * sync_period + sync_period).abs();
        assert!(
            steady_state_err <= 200e-6 * sync_period + 1e-9,
            "steady-state error {steady_state_err}"
        );
    }

    #[test]
    fn random_clock_respects_bounds() {
        let config = ClockConfig::default();
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let c = DriftClock::random(&config, &mut rng);
            assert!(c.drift().abs() <= config.max_drift);
            assert!(c.error(0.0).abs() <= config.max_initial_offset);
        }
    }
}
