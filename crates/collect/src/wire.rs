//! Binary wire format for agent → controller batches.
//!
//! Frames are carried as 8-bit grayscale (like a camera would produce), so
//! encoded batch sizes directly reflect the bandwidth the paper's privacy
//! levels save: a 48×48 frame costs 2 304 payload bytes, its 16×16 (dCNN-L)
//! version 256 bytes — the 9× reduction of Figure 3.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use darnet_sim::{Frame, ImuSample};
use serde::{Deserialize, Serialize};

use crate::error::CollectError;
use crate::sensor::SensorReading;
use crate::Result;

/// A sensor reading stamped with the *agent's local clock*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampedReading {
    /// Agent-local timestamp, seconds.
    pub timestamp: f64,
    /// The observation.
    pub reading: SensorReading,
}

/// A transmission unit from one agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Agent identifier.
    pub agent_id: u32,
    /// Monotonic batch sequence number (per agent).
    pub seq: u32,
    /// The readings, in poll order.
    pub readings: Vec<StampedReading>,
}

const KIND_IMU: u8 = 0;
const KIND_FRAME: u8 = 1;

/// Magic byte prefixing controller→agent acknowledgement messages.
const ACK_MAGIC: u8 = 0xA5;

/// A controller→agent acknowledgement for one received batch.
///
/// The reliable-delivery layer is selective-repeat: every accepted (or
/// duplicate — re-acks matter when the first ack was lost) batch is acked
/// individually by `(agent_id, seq)`, and the agent retires the matching
/// entry from its in-flight window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ack {
    /// The agent whose batch is acknowledged.
    pub agent_id: u32,
    /// The batch sequence number being acknowledged.
    pub seq: u32,
}

/// Encodes an acknowledgement.
pub fn encode_ack(ack: &Ack) -> Bytes {
    let mut buf = BytesMut::with_capacity(9);
    buf.put_u8(ACK_MAGIC);
    buf.put_u32(ack.agent_id);
    buf.put_u32(ack.seq);
    buf.freeze()
}

/// Decodes an acknowledgement.
///
/// # Errors
///
/// Returns [`CollectError::Decode`] on truncated input or a wrong magic
/// byte.
pub fn decode_ack(mut data: Bytes) -> Result<Ack> {
    if data.remaining() < 9 {
        return Err(CollectError::Decode("truncated ack".into()));
    }
    let magic = data.get_u8();
    if magic != ACK_MAGIC {
        return Err(CollectError::Decode(format!(
            "bad ack magic byte {magic:#04x}"
        )));
    }
    Ok(Ack {
        agent_id: data.get_u32(),
        seq: data.get_u32(),
    })
}

/// Encodes a batch into its wire representation.
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + batch.readings.len() * 64);
    encode_batch_into(&mut buf, batch);
    buf.freeze()
}

/// Encodes a batch into a caller-provided buffer (appended at the tail),
/// so hot append paths — the WAL's record framing in particular — can
/// reuse one scratch allocation across calls.
// darlint: hot
pub fn encode_batch_into(buf: &mut BytesMut, batch: &Batch) {
    buf.put_u32(batch.agent_id);
    buf.put_u32(batch.seq);
    buf.put_u32(batch.readings.len() as u32);
    for r in &batch.readings {
        buf.put_f64(r.timestamp);
        match &r.reading {
            SensorReading::Imu(s) => {
                buf.put_u8(KIND_IMU);
                for v in s.to_features() {
                    buf.put_f32(v);
                }
            }
            SensorReading::Frame(f) => {
                buf.put_u8(KIND_FRAME);
                buf.put_u16(f.width() as u16);
                buf.put_u16(f.height() as u16);
                for &p in f.pixels() {
                    buf.put_u8((p.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
        }
    }
}

/// Decodes a batch from its wire representation.
///
/// # Errors
///
/// Returns [`CollectError::Decode`] on truncated or malformed input.
pub fn decode_batch(mut data: Bytes) -> Result<Batch> {
    fn need(data: &Bytes, n: usize, what: &str) -> Result<()> {
        if data.remaining() < n {
            Err(CollectError::Decode(format!(
                "truncated batch while reading {what}"
            )))
        } else {
            Ok(())
        }
    }
    need(&data, 12, "header")?;
    let agent_id = data.get_u32();
    let seq = data.get_u32();
    let count = data.get_u32() as usize;
    let mut readings = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        need(&data, 9, "reading header")?;
        let timestamp = data.get_f64();
        let kind = data.get_u8();
        let reading = match kind {
            KIND_IMU => {
                need(&data, 12 * 4, "imu payload")?;
                let mut feats = [0.0f32; ImuSample::FEATURES];
                for f in &mut feats {
                    *f = data.get_f32();
                }
                SensorReading::Imu(ImuSample::from_features(&feats))
            }
            KIND_FRAME => {
                need(&data, 4, "frame header")?;
                let w = data.get_u16() as usize;
                let h = data.get_u16() as usize;
                need(&data, w * h, "frame pixels")?;
                let mut pixels = Vec::with_capacity(w * h);
                for _ in 0..w * h {
                    pixels.push(data.get_u8() as f32 / 255.0);
                }
                SensorReading::Frame(Frame::from_pixels(w, h, pixels))
            }
            other => {
                return Err(CollectError::Decode(format!(
                    "unknown reading kind {other}"
                )));
            }
        };
        readings.push(StampedReading { timestamp, reading });
    }
    Ok(Batch {
        agent_id,
        seq,
        readings,
    })
}

/// Compact IMU batch encoding for constrained links (the paper sizes the
/// transmission frequency "based on the latency and bandwidth between the
/// agent and the controller"; when bandwidth is the constraint, agents can
/// trade precision for bytes):
///
/// * timestamps are delta-encoded as microseconds (`u32` after the first),
/// * IMU features are quantized to `f16`-like half precision (here: a
///   simple 1/1024-resolution fixed point in an `i16`, range ±32),
/// * frames are rejected — the privacy down-sampler is the frame-side
///   bandwidth tool.
///
/// Measured on 40 Hz IMU batches this is ~2.6× smaller than
/// [`encode_batch`].
pub mod compact {
    use super::*;

    const KIND_COMPACT_IMU: u8 = 2;
    /// Fixed-point scale: 1/1024 resolution, ±32 range in an i16.
    const SCALE: f32 = 1024.0;

    fn quantize(v: f32) -> i16 {
        (v * SCALE).clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }

    fn dequantize(q: i16) -> f32 {
        q as f32 / SCALE
    }

    /// Encodes an IMU-only batch compactly.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InvalidConfig`] if the batch contains
    /// frames, or if timestamps are not non-decreasing (delta encoding
    /// requires poll order).
    pub fn encode_imu_batch(batch: &Batch) -> Result<Bytes> {
        let mut buf = BytesMut::with_capacity(16 + batch.readings.len() * 30);
        buf.put_u32(batch.agent_id);
        buf.put_u32(batch.seq);
        buf.put_u8(KIND_COMPACT_IMU);
        buf.put_u32(batch.readings.len() as u32);
        let mut prev_t = None;
        for r in &batch.readings {
            let sample = r.reading.as_imu().ok_or_else(|| {
                CollectError::InvalidConfig("compact encoding is IMU-only".into())
            })?;
            match prev_t {
                None => buf.put_f64(r.timestamp),
                Some(p) => {
                    let delta_us = (r.timestamp - p) * 1e6;
                    if !(0.0..=u32::MAX as f64).contains(&delta_us) {
                        return Err(CollectError::InvalidConfig(
                            "compact encoding requires non-decreasing timestamps".into(),
                        ));
                    }
                    buf.put_u32(delta_us.round() as u32);
                }
            }
            prev_t = Some(r.timestamp);
            for v in sample.to_features() {
                buf.put_i16(quantize(v));
            }
        }
        Ok(buf.freeze())
    }

    /// Decodes a compact IMU batch.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Decode`] on malformed input.
    pub fn decode_imu_batch(mut data: Bytes) -> Result<Batch> {
        let fail = |msg: &str| CollectError::Decode(format!("compact: {msg}"));
        if data.remaining() < 13 {
            return Err(fail("truncated header"));
        }
        let agent_id = data.get_u32();
        let seq = data.get_u32();
        if data.get_u8() != KIND_COMPACT_IMU {
            return Err(fail("wrong kind byte"));
        }
        let count = data.get_u32() as usize;
        let mut readings = Vec::with_capacity(count.min(1 << 20));
        let mut prev_t = None;
        for _ in 0..count {
            let timestamp = match prev_t {
                None => {
                    if data.remaining() < 8 {
                        return Err(fail("truncated base timestamp"));
                    }
                    data.get_f64()
                }
                Some(p) => {
                    if data.remaining() < 4 {
                        return Err(fail("truncated delta"));
                    }
                    p + data.get_u32() as f64 / 1e6
                }
            };
            prev_t = Some(timestamp);
            if data.remaining() < ImuSample::FEATURES * 2 {
                return Err(fail("truncated features"));
            }
            let mut feats = [0.0f32; ImuSample::FEATURES];
            for f in &mut feats {
                *f = dequantize(data.get_i16());
            }
            readings.push(StampedReading {
                timestamp,
                reading: SensorReading::Imu(ImuSample::from_features(&feats)),
            });
        }
        Ok(Batch {
            agent_id,
            seq,
            readings,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn imu_batch(n: usize) -> Batch {
            Batch {
                agent_id: 3,
                seq: 9,
                readings: (0..n)
                    .map(|i| StampedReading {
                        timestamp: 100.0 + i as f64 * 0.025,
                        reading: SensorReading::Imu(ImuSample {
                            accel: [0.125, -9.8125, 3.5],
                            gyro: [0.25, -0.5, 0.0625],
                            gravity: [0.0, -9.8125, 0.5],
                            rotation: [1.5, 0.75, -0.25],
                        }),
                    })
                    .collect(),
            }
        }

        #[test]
        fn roundtrip_preserves_structure_and_quantized_values() {
            let batch = imu_batch(20);
            let decoded = decode_imu_batch(encode_imu_batch(&batch).unwrap()).unwrap();
            assert_eq!(decoded.agent_id, 3);
            assert_eq!(decoded.seq, 9);
            assert_eq!(decoded.readings.len(), 20);
            for (orig, got) in batch.readings.iter().zip(&decoded.readings) {
                assert!((orig.timestamp - got.timestamp).abs() < 2e-6);
                let a = orig.reading.as_imu().unwrap().to_features();
                let b = got.reading.as_imu().unwrap().to_features();
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() <= 1.0 / SCALE + 1e-6);
                }
            }
        }

        #[test]
        fn compact_is_much_smaller_than_standard() {
            let batch = imu_batch(40);
            let standard = encode_batch(&batch).len();
            let compact = encode_imu_batch(&batch).unwrap().len();
            assert!(
                compact * 2 < standard,
                "compact {compact} vs standard {standard}"
            );
        }

        #[test]
        fn frames_are_rejected() {
            let batch = Batch {
                agent_id: 0,
                seq: 0,
                readings: vec![StampedReading {
                    timestamp: 0.0,
                    reading: SensorReading::Frame(Frame::new(2, 2)),
                }],
            };
            assert!(matches!(
                encode_imu_batch(&batch),
                Err(CollectError::InvalidConfig(_))
            ));
        }

        #[test]
        fn decreasing_timestamps_are_rejected() {
            let mut batch = imu_batch(2);
            batch.readings[1].timestamp = batch.readings[0].timestamp - 1.0;
            assert!(encode_imu_batch(&batch).is_err());
        }

        #[test]
        fn truncated_compact_is_rejected() {
            let bytes = encode_imu_batch(&imu_batch(3)).unwrap();
            assert!(decode_imu_batch(bytes.slice(0..bytes.len() - 5)).is_err());
            assert!(decode_imu_batch(Bytes::from_static(b"short")).is_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imu_reading(t: f64) -> StampedReading {
        StampedReading {
            timestamp: t,
            reading: SensorReading::Imu(ImuSample {
                accel: [1.0, -2.0, 9.8],
                gyro: [0.1, 0.0, -0.1],
                gravity: [0.0, 0.0, 9.81],
                rotation: [0.5, 1.0, -0.5],
            }),
        }
    }

    fn frame_reading(t: f64) -> StampedReading {
        let mut frame = Frame::new(4, 4);
        for i in 0..16 {
            frame.put((i % 4) as isize, (i / 4) as isize, i as f32 / 15.0);
        }
        StampedReading {
            timestamp: t,
            reading: SensorReading::Frame(frame),
        }
    }

    #[test]
    fn imu_batch_roundtrips_exactly() {
        let batch = Batch {
            agent_id: 3,
            seq: 42,
            readings: vec![imu_reading(0.025), imu_reading(0.050)],
        };
        let decoded = decode_batch(encode_batch(&batch)).unwrap();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn frame_batch_roundtrips_within_quantization() {
        let batch = Batch {
            agent_id: 1,
            seq: 0,
            readings: vec![frame_reading(1.0)],
        };
        let decoded = decode_batch(encode_batch(&batch)).unwrap();
        let orig = batch.readings[0].reading.as_frame().unwrap();
        let got = decoded.readings[0].reading.as_frame().unwrap();
        assert_eq!(got.width(), 4);
        for (a, b) in orig.pixels().iter().zip(got.pixels()) {
            assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn encode_into_appends_at_tail_and_matches_encode() {
        let batch = Batch {
            agent_id: 2,
            seq: 5,
            readings: vec![imu_reading(0.1), frame_reading(0.2)],
        };
        let mut buf = BytesMut::new();
        buf.put_u8(0xEE); // pre-existing framing byte must survive
        encode_batch_into(&mut buf, &batch);
        assert_eq!(buf[0], 0xEE);
        assert_eq!(&buf[1..], &encode_batch(&batch)[..]);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = Batch {
            agent_id: 9,
            seq: 7,
            readings: vec![],
        };
        assert_eq!(decode_batch(encode_batch(&batch)).unwrap(), batch);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let batch = Batch {
            agent_id: 1,
            seq: 1,
            readings: vec![imu_reading(0.0)],
        };
        let bytes = encode_batch(&batch);
        let truncated = bytes.slice(0..bytes.len() - 4);
        assert!(matches!(
            decode_batch(truncated),
            Err(CollectError::Decode(_))
        ));
        assert!(matches!(
            decode_batch(Bytes::from_static(b"xx")),
            Err(CollectError::Decode(_))
        ));
    }

    #[test]
    fn ack_roundtrips_and_rejects_garbage() {
        let ack = Ack {
            agent_id: 3,
            seq: 1234,
        };
        assert_eq!(decode_ack(encode_ack(&ack)).unwrap(), ack);
        assert!(matches!(
            decode_ack(Bytes::from_static(b"tooshort")),
            Err(CollectError::Decode(_))
        ));
        // Batch bytes are not acks: first byte of a batch header is the
        // agent-id high byte, which for small ids is 0, not the magic.
        let batch_bytes = encode_batch(&Batch {
            agent_id: 1,
            seq: 0,
            readings: vec![imu_reading(0.0)],
        });
        assert!(decode_ack(batch_bytes).is_err());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u32(1);
        buf.put_u32(1);
        buf.put_f64(0.0);
        buf.put_u8(99);
        assert!(matches!(
            decode_batch(buf.freeze()),
            Err(CollectError::Decode(msg)) if msg.contains("99")
        ));
    }

    #[test]
    fn downsampled_frames_shrink_wire_size_by_papers_ratios() {
        let full = Frame::new(48, 48);
        let make = |f: Frame| {
            encode_batch(&Batch {
                agent_id: 0,
                seq: 0,
                readings: vec![StampedReading {
                    timestamp: 0.0,
                    reading: SensorReading::Frame(f),
                }],
            })
            .len()
        };
        let overhead = make(Frame::new(1, 1)) - 1;
        let full_payload = make(full.clone()) - overhead;
        let l = make(full.downsample_nearest(16, 16)) - overhead;
        let m = make(full.downsample_nearest(8, 8)) - overhead;
        let h = make(full.downsample_nearest(4, 4)) - overhead;
        assert_eq!(full_payload / l, 9);
        assert_eq!(full_payload / m, 36);
        assert_eq!(full_payload / h, 144);
    }
}
