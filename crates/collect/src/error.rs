//! Error type for the collection framework.

use std::fmt;

/// Error returned by collection-framework operations.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so adding failure modes (as the transport layer did) is not a
/// breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CollectError {
    /// A wire-format decode failed.
    Decode(String),
    /// An agent or controller was configured inconsistently.
    InvalidConfig(String),
    /// A query or alignment was asked for an empty/unknown series.
    NoData(String),
    /// Reliable delivery failed: the in-flight window overflowed under
    /// backpressure, or a batch exhausted its ack-timeout retries.
    Transport(String),
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::Decode(msg) => write!(f, "decode error: {msg}"),
            CollectError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CollectError::NoData(msg) => write!(f, "no data: {msg}"),
            CollectError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl std::error::Error for CollectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CollectError>();
        assert!(CollectError::NoData("imu".into())
            .to_string()
            .contains("imu"));
    }
}
