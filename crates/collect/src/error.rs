//! Error type for the collection framework.

use std::fmt;

/// Error returned by collection-framework operations.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so adding failure modes (as the transport layer did) is not a
/// breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CollectError {
    /// A wire-format decode failed.
    Decode(String),
    /// An agent or controller was configured inconsistently.
    InvalidConfig(String),
    /// A query or alignment was asked for an empty/unknown series.
    NoData(String),
    /// Reliable delivery failed: the in-flight window overflowed under
    /// backpressure, or a batch exhausted its ack-timeout retries.
    Transport(String),
    /// A write-ahead-log storage operation failed. Carries the storage
    /// object, the operation, and the underlying I/O error kind (the
    /// error itself is not `Clone`, its kind is).
    Wal {
        /// Storage object (segment or snapshot name) involved.
        object: String,
        /// Storage operation: `"list"`, `"read"`, `"append"`,
        /// `"truncate"`, or `"delete"`.
        op: &'static str,
        /// Kind of the underlying `std::io::Error`.
        kind: std::io::ErrorKind,
    },
    /// Replay-on-open hit corruption that torn-tail truncation cannot
    /// mask: an invalid record *before* the tail of the newest segment.
    Recovery {
        /// Storage object the bad record was read from.
        object: String,
        /// Byte offset of the bad record within the object.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A worker thread driving a shard drain panicked. The shard's
    /// controller state may be partially updated; callers should treat
    /// the whole drain pass as failed.
    WorkerPanicked {
        /// Index of the shard whose drain worker died.
        shard: usize,
    },
    /// A bounded buffer refused new work: the agent's spill buffer hit
    /// its configured bound with `drop_oldest` off.
    Overload {
        /// The agent whose buffer overflowed.
        agent_id: u32,
        /// Readings buffered when the bound was hit.
        buffered: usize,
        /// The configured bound.
        capacity: usize,
    },
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::Decode(msg) => write!(f, "decode error: {msg}"),
            CollectError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CollectError::NoData(msg) => write!(f, "no data: {msg}"),
            CollectError::Transport(msg) => write!(f, "transport failure: {msg}"),
            CollectError::Wal { object, op, kind } => {
                write!(f, "wal storage failure: {op} {object}: {kind}")
            }
            CollectError::Recovery {
                object,
                offset,
                reason,
            } => {
                write!(f, "recovery failure: {object} at byte {offset}: {reason}")
            }
            CollectError::WorkerPanicked { shard } => {
                write!(f, "worker panicked: shard {shard} drain thread died")
            }
            CollectError::Overload {
                agent_id,
                buffered,
                capacity,
            } => {
                write!(
                    f,
                    "overload: agent {agent_id} spill buffer full \
                     ({buffered} readings buffered, bound {capacity})"
                )
            }
        }
    }
}

impl std::error::Error for CollectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CollectError>();
        assert!(CollectError::NoData("imu".into())
            .to_string()
            .contains("imu"));
    }

    #[test]
    fn structured_variants_carry_their_context() {
        let wal = CollectError::Wal {
            object: "seg-00000003".into(),
            op: "append",
            kind: std::io::ErrorKind::PermissionDenied,
        };
        assert!(wal.to_string().contains("seg-00000003"));
        assert!(wal.to_string().contains("append"));
        assert_eq!(wal.clone(), wal);

        let rec = CollectError::Recovery {
            object: "seg-00000001".into(),
            offset: 128,
            reason: "crc mismatch".into(),
        };
        assert!(rec.to_string().contains("byte 128"));

        let over = CollectError::Overload {
            agent_id: 7,
            buffered: 101,
            capacity: 100,
        };
        assert!(over.to_string().contains("agent 7"));
        assert!(over.to_string().contains("bound 100"));

        let panicked = CollectError::WorkerPanicked { shard: 3 };
        assert!(panicked.to_string().contains("shard 3"));
    }
}
