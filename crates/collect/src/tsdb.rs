//! A small in-memory time-series store, in the spirit of the statsd-style
//! database the paper's controller writes aligned tuples into (§4.1).

use std::collections::BTreeMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::CollectError;
use crate::Result;

/// Summary statistics for one series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Number of points.
    pub count: usize,
    /// Mean value.
    pub mean: f32,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Earliest timestamp.
    pub first_t: f64,
    /// Latest timestamp.
    pub last_t: f64,
}

/// A thread-safe, in-memory, multi-series time-series database.
///
/// Points are kept sorted by timestamp per series; insertion keeps order
/// (fast append for the common in-order case, binary insertion otherwise).
/// Series live in a `BTreeMap` so every traversal — fingerprints, metric
/// listings, point counts — walks names in one deterministic order
/// regardless of insertion order (darlint `nondet-order`).
///
/// ```
/// use darnet_collect::TsDb;
///
/// let db = TsDb::new();
/// db.insert("imu.accel.x", 0.0, 1.0);
/// db.insert("imu.accel.x", 0.5, 2.0);
/// let pts = db.query_range("imu.accel.x", 0.0, 1.0)?;
/// assert_eq!(pts.len(), 2);
/// # Ok::<(), darnet_collect::CollectError>(())
/// ```
#[derive(Debug, Default)]
pub struct TsDb {
    series: RwLock<BTreeMap<String, Vec<(f64, f32)>>>,
}

impl TsDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        TsDb::default()
    }

    /// Inserts a point into `metric`, creating the series if needed.
    pub fn insert(&self, metric: &str, t: f64, value: f32) {
        let mut guard = self.series.write();
        let series = guard.entry(metric.to_string()).or_default();
        if series.last().is_none_or(|&(lt, _)| lt <= t) {
            series.push((t, value));
        } else {
            let idx = series.partition_point(|&(st, _)| st <= t);
            series.insert(idx, (t, value));
        }
    }

    /// Inserts a multi-channel sample as `metric.0`, `metric.1`, ...
    pub fn insert_vector(&self, metric: &str, t: f64, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.insert(&format!("{metric}.{i}"), t, v);
        }
    }

    /// Names of all series, sorted (the map is ordered by name).
    pub fn metrics(&self) -> Vec<String> {
        self.series.read().keys().cloned().collect()
    }

    /// Number of points in `metric` (0 if absent).
    pub fn len(&self, metric: &str) -> usize {
        self.series.read().get(metric).map_or(0, Vec::len)
    }

    /// Whether `metric` exists and has points.
    pub fn is_empty(&self, metric: &str) -> bool {
        self.len(metric) == 0
    }

    /// Points of `metric` with `t0 <= t <= t1`, in timestamp order.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::NoData`] if the series does not exist.
    pub fn query_range(&self, metric: &str, t0: f64, t1: f64) -> Result<Vec<(f64, f32)>> {
        let guard = self.series.read();
        let series = guard
            .get(metric)
            .ok_or_else(|| CollectError::NoData(format!("unknown series {metric}")))?;
        let lo = series.partition_point(|&(t, _)| t < t0);
        let hi = series.partition_point(|&(t, _)| t <= t1);
        Ok(series[lo..hi].to_vec())
    }

    /// Summary statistics for `metric`.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::NoData`] if the series is missing or empty.
    pub fn stats(&self, metric: &str) -> Result<SeriesStats> {
        let guard = self.series.read();
        let series = guard
            .get(metric)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| CollectError::NoData(format!("empty series {metric}")))?;
        let count = series.len();
        let mut sum = 0.0f64;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &(_, v) in series {
            sum += v as f64;
            min = min.min(v);
            max = max.max(v);
        }
        Ok(SeriesStats {
            count,
            mean: (sum / count as f64) as f32,
            min,
            max,
            first_t: series[0].0,
            last_t: series[count - 1].0,
        })
    }

    /// Removes every series.
    pub fn clear(&self) {
        self.series.write().clear();
    }

    /// An order-independent-across-series, bitwise-exact fingerprint of
    /// the whole store: series are folded in sorted-name order, points in
    /// their stored (timestamp) order, hashing the exact f64/f32 bit
    /// patterns. Two stores fingerprint equal iff they hold identical
    /// data — the equality check behind the WAL recovery invariant
    /// (replay must rebuild the TSDB *bitwise*, DESIGN.md §13).
    pub fn fingerprint(&self) -> u64 {
        let guard = self.series.read();
        let mut h = fnv1a_init();
        for (name, points) in guard.iter() {
            fnv1a(&mut h, name.as_bytes());
            fnv1a(&mut h, &(points.len() as u64).to_le_bytes());
            for &(t, v) in points {
                fnv1a(&mut h, &t.to_bits().to_le_bytes());
                fnv1a(&mut h, &v.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// Canonical fingerprint: like [`TsDb::fingerprint`], but points
    /// within each series are first sorted by (timestamp bits, value
    /// bits), making the digest independent of insertion order among
    /// equal-timestamp points. Shards ingest each agent's stream
    /// independently, so equal-timestamp points from different agents can
    /// land in a different relative order than a single controller would
    /// produce; the canonical form is what sharded and unsharded stores
    /// are compared under (DESIGN.md §14).
    // darlint: pure-root
    pub fn canonical_fingerprint(&self) -> u64 {
        canonical_fingerprint_merged(&[self])
    }

    /// Total number of points across every series.
    pub fn point_count(&self) -> usize {
        self.series.read().values().map(Vec::len).sum()
    }

    /// Approximate resident bytes of the stored points (12 bytes per
    /// point: an `f64` timestamp and an `f32` value), ignoring container
    /// overhead. Deterministic, so it can participate in gated
    /// memory-per-agent accounting.
    pub fn approx_bytes(&self) -> u64 {
        self.point_count() as u64 * 12
    }

    /// Rolls `metric` up into fixed-width buckets over `[t0, t1)` with the
    /// given aggregation — the statsd-style query a dashboard over the
    /// controller's store would issue. Buckets with no points are omitted.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::NoData`] if the series does not exist, or
    /// an invalid-config error for a non-positive bucket width.
    pub fn rollup(
        &self,
        metric: &str,
        t0: f64,
        t1: f64,
        bucket: f64,
        agg: Aggregation,
    ) -> Result<Vec<(f64, f32)>> {
        if bucket <= 0.0 {
            return Err(CollectError::InvalidConfig(
                "rollup bucket width must be positive".into(),
            ));
        }
        let points = self.query_range(metric, t0, t1)?;
        let mut out: Vec<(f64, f32)> = Vec::new();
        let mut idx = 0usize;
        let mut bucket_start = t0;
        while bucket_start < t1 && idx < points.len() {
            let bucket_end = bucket_start + bucket;
            let lo = idx;
            while idx < points.len() && points[idx].0 < bucket_end {
                idx += 1;
            }
            let slice = &points[lo..idx];
            if !slice.is_empty() {
                let value = match agg {
                    Aggregation::Mean => {
                        slice.iter().map(|&(_, v)| v as f64).sum::<f64>() as f32
                            / slice.len() as f32
                    }
                    Aggregation::Min => slice.iter().map(|&(_, v)| v).fold(f32::INFINITY, f32::min),
                    Aggregation::Max => slice
                        .iter()
                        .map(|&(_, v)| v)
                        .fold(f32::NEG_INFINITY, f32::max),
                    Aggregation::Count => slice.len() as f32,
                    Aggregation::P95 => {
                        let mut vals: Vec<f32> = slice.iter().map(|&(_, v)| v).collect();
                        vals.sort_by(|a, b| a.total_cmp(b));
                        vals[((vals.len() as f64 - 1.0) * 0.95).round() as usize]
                    }
                };
                out.push((bucket_start, value));
            }
            bucket_start = bucket_end;
        }
        Ok(out)
    }
}

/// Canonical fingerprint of the *union* of several stores, as if every
/// point had been inserted into one database. Series are folded in
/// sorted-name order; within a series, points from all stores are pooled
/// and sorted by (timestamp bits, value bits) before hashing, so the
/// digest depends only on the multiset of points per series. This is how
/// a sharded controller's per-shard TSDBs are compared against a single
/// controller's store over the same traffic.
// darlint: pure-root
pub fn canonical_fingerprint_merged(stores: &[&TsDb]) -> u64 {
    use std::collections::BTreeSet;
    let guards: Vec<_> = stores.iter().map(|s| s.series.read()).collect();
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for guard in &guards {
        names.extend(guard.keys().map(String::as_str));
    }
    let mut h = fnv1a_init();
    for name in names {
        let mut points: Vec<(u64, u32)> = Vec::new();
        for guard in &guards {
            if let Some(series) = guard.get(name) {
                points.extend(series.iter().map(|&(t, v)| (t.to_bits(), v.to_bits())));
            }
        }
        points.sort_unstable();
        fnv1a(&mut h, name.as_bytes());
        fnv1a(&mut h, &(points.len() as u64).to_le_bytes());
        for (t, v) in points {
            fnv1a(&mut h, &t.to_le_bytes());
            fnv1a(&mut h, &v.to_le_bytes());
        }
    }
    h
}

/// FNV-1a 64-bit offset basis.
pub(crate) fn fnv1a_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

/// Folds `bytes` into the running FNV-1a 64-bit hash `h`. Shared by the
/// TSDB fingerprint and the controller's state digest; FNV keeps the
/// digest dependency-free and byte-order stable across platforms.
pub(crate) fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Rollup aggregation functions (statsd-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean per bucket.
    Mean,
    /// Minimum per bucket.
    Min,
    /// Maximum per bucket.
    Max,
    /// Point count per bucket.
    Count,
    /// 95th percentile per bucket (nearest-rank).
    P95,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_fingerprint_merged_is_insertion_order_invariant() {
        // The same multiset of points, fed in three different insertion
        // orders (and two different shardings), must digest identically:
        // the fingerprint may depend only on the data, never on map
        // iteration or arrival order.
        let points = [
            ("imu.accel.x", 0.5, 1.0f32),
            ("imu.accel.x", 0.5, 2.0),
            ("imu.accel.x", 0.25, 3.0),
            ("cam.frame.lum", 0.5, 9.0),
            ("cam.frame.lum", 0.125, 4.0),
            ("gps.speed", 2.0, 60.0),
        ];
        let forward = TsDb::new();
        for &(m, t, v) in &points {
            forward.insert(m, t, v);
        }
        let reverse = TsDb::new();
        for &(m, t, v) in points.iter().rev() {
            reverse.insert(m, t, v);
        }
        let interleaved = TsDb::new();
        for &(m, t, v) in points.iter().skip(1).chain(points.iter().take(1)) {
            interleaved.insert(m, t, v);
        }
        let expected = canonical_fingerprint_merged(&[&forward]);
        assert_eq!(canonical_fingerprint_merged(&[&reverse]), expected);
        assert_eq!(canonical_fingerprint_merged(&[&interleaved]), expected);
        assert_eq!(forward.canonical_fingerprint(), expected);

        // Sharded: split the stream across two stores both ways.
        let (a, b) = (TsDb::new(), TsDb::new());
        for (i, &(m, t, v)) in points.iter().enumerate() {
            if i % 2 == 0 { &a } else { &b }.insert(m, t, v);
        }
        assert_eq!(canonical_fingerprint_merged(&[&a, &b]), expected);
        assert_eq!(canonical_fingerprint_merged(&[&b, &a]), expected);
    }

    #[test]
    fn insert_and_query_roundtrip() {
        let db = TsDb::new();
        db.insert("m", 1.0, 10.0);
        db.insert("m", 2.0, 20.0);
        db.insert("m", 3.0, 30.0);
        let pts = db.query_range("m", 1.5, 3.0).unwrap();
        assert_eq!(pts, vec![(2.0, 20.0), (3.0, 30.0)]);
    }

    #[test]
    fn out_of_order_inserts_stay_sorted() {
        let db = TsDb::new();
        db.insert("m", 3.0, 3.0);
        db.insert("m", 1.0, 1.0);
        db.insert("m", 2.0, 2.0);
        let pts = db.query_range("m", 0.0, 10.0).unwrap();
        let times: Vec<f64> = pts.iter().map(|p| p.0).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn unknown_series_errors() {
        let db = TsDb::new();
        assert!(matches!(
            db.query_range("nope", 0.0, 1.0),
            Err(CollectError::NoData(_))
        ));
        assert!(db.stats("nope").is_err());
    }

    #[test]
    fn stats_are_correct() {
        let db = TsDb::new();
        for (t, v) in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)] {
            db.insert("m", t, v);
        }
        let s = db.stats("m").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.first_t, 0.0);
        assert_eq!(s.last_t, 2.0);
    }

    #[test]
    fn vector_insert_creates_channel_series() {
        let db = TsDb::new();
        db.insert_vector("imu", 0.5, &[1.0, 2.0, 3.0]);
        assert_eq!(db.metrics(), vec!["imu.0", "imu.1", "imu.2"]);
        assert_eq!(db.len("imu.1"), 1);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let db = TsDb::new();
        std::thread::scope(|scope| {
            for k in 0..4 {
                let db = &db;
                scope.spawn(move || {
                    for i in 0..250 {
                        db.insert("shared", (k * 250 + i) as f64, i as f32);
                    }
                });
            }
        });
        assert_eq!(db.len("shared"), 1000);
        // Sorted invariant holds.
        let pts = db.query_range("shared", 0.0, 1e9).unwrap();
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn rollup_means_buckets_correctly() {
        let db = TsDb::new();
        for i in 0..10 {
            db.insert("m", i as f64, i as f32);
        }
        // Buckets of 5 s: [0,5) mean 2, [5,10) mean 7.
        let out = db.rollup("m", 0.0, 10.0, 5.0, Aggregation::Mean).unwrap();
        assert_eq!(out, vec![(0.0, 2.0), (5.0, 7.0)]);
    }

    #[test]
    fn rollup_min_max_count() {
        let db = TsDb::new();
        for (t, v) in [(0.0, 3.0), (1.0, -1.0), (2.0, 8.0), (6.0, 5.0)] {
            db.insert("m", t, v);
        }
        assert_eq!(
            db.rollup("m", 0.0, 10.0, 5.0, Aggregation::Min).unwrap(),
            vec![(0.0, -1.0), (5.0, 5.0)]
        );
        assert_eq!(
            db.rollup("m", 0.0, 10.0, 5.0, Aggregation::Max).unwrap(),
            vec![(0.0, 8.0), (5.0, 5.0)]
        );
        assert_eq!(
            db.rollup("m", 0.0, 10.0, 5.0, Aggregation::Count).unwrap(),
            vec![(0.0, 3.0), (5.0, 1.0)]
        );
    }

    #[test]
    fn rollup_p95_takes_high_value() {
        let db = TsDb::new();
        for i in 0..100 {
            db.insert("m", i as f64 * 0.01, i as f32);
        }
        let out = db.rollup("m", 0.0, 1.0, 1.0, Aggregation::P95).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].1 >= 90.0);
    }

    #[test]
    fn rollup_skips_empty_buckets_and_validates() {
        let db = TsDb::new();
        db.insert("m", 0.5, 1.0);
        db.insert("m", 20.5, 2.0);
        let out = db.rollup("m", 0.0, 30.0, 10.0, Aggregation::Mean).unwrap();
        assert_eq!(out.len(), 2);
        assert!(db.rollup("m", 0.0, 1.0, 0.0, Aggregation::Mean).is_err());
        assert!(db
            .rollup("absent", 0.0, 1.0, 1.0, Aggregation::Mean)
            .is_err());
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = TsDb::new();
        let b = TsDb::new();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Same content, different insertion interleaving across series.
        a.insert("x", 0.0, 1.0);
        a.insert("y", 0.5, 2.0);
        a.insert("x", 1.0, 3.0);
        b.insert("y", 0.5, 2.0);
        b.insert("x", 0.0, 1.0);
        b.insert("x", 1.0, 3.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any value difference changes the fingerprint.
        b.insert("x", 2.0, 4.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn canonical_fingerprint_ignores_equal_timestamp_order() {
        let a = TsDb::new();
        let b = TsDb::new();
        // Two points share t=1.0; insertion order differs, so the plain
        // fingerprint diverges but the canonical one must not.
        a.insert("m", 1.0, 10.0);
        a.insert("m", 1.0, 20.0);
        b.insert("m", 1.0, 20.0);
        b.insert("m", 1.0, 10.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
        // A value difference still shows up.
        b.insert("m", 1.0, 30.0);
        assert_ne!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn merged_fingerprint_matches_union_store() {
        let whole = TsDb::new();
        let left = TsDb::new();
        let right = TsDb::new();
        for i in 0..50 {
            let t = (i % 7) as f64;
            let v = i as f32;
            whole.insert("s", t, v);
            if i % 2 == 0 {
                left.insert("s", t, v);
            } else {
                right.insert("s", t, v);
            }
        }
        whole.insert("only", 0.0, 1.0);
        right.insert("only", 0.0, 1.0);
        assert_eq!(
            whole.canonical_fingerprint(),
            canonical_fingerprint_merged(&[&left, &right])
        );
        // Dropping a point breaks equality.
        left.clear();
        assert_ne!(
            whole.canonical_fingerprint(),
            canonical_fingerprint_merged(&[&left, &right])
        );
    }

    #[test]
    fn point_count_and_bytes_accounting() {
        let db = TsDb::new();
        assert_eq!(db.point_count(), 0);
        db.insert_vector("v", 0.0, &[1.0, 2.0, 3.0]);
        db.insert("w", 1.0, 4.0);
        assert_eq!(db.point_count(), 4);
        assert_eq!(db.approx_bytes(), 48);
    }

    #[test]
    fn clear_empties_everything() {
        let db = TsDb::new();
        db.insert("a", 0.0, 0.0);
        db.clear();
        assert!(db.metrics().is_empty());
        assert!(db.is_empty("a"));
    }
}
