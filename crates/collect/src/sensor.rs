//! Sensor abstraction and the two concrete DarNet sensors (camera + IMU)
//! backed by the synthetic driving world.

use std::sync::Arc;

use darnet_sim::{Behavior, CanonicalBehavior, DrivingWorld, Frame, ImuSample, Segment};
use serde::{Deserialize, Serialize};

/// One sensor observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SensorReading {
    /// A 12-channel IMU sample.
    Imu(ImuSample),
    /// A camera frame.
    Frame(Frame),
}

impl SensorReading {
    /// The IMU sample, if this reading is one.
    pub fn as_imu(&self) -> Option<&ImuSample> {
        match self {
            SensorReading::Imu(s) => Some(s),
            SensorReading::Frame(_) => None,
        }
    }

    /// The frame, if this reading is one.
    pub fn as_frame(&self) -> Option<&Frame> {
        match self {
            SensorReading::Frame(f) => Some(f),
            SensorReading::Imu(_) => None,
        }
    }
}

/// A pollable device sensor.
///
/// The paper's collection agent "periodically polls the device's sensor";
/// the poll period should match the sensor's own operating frequency
/// (25 ms for the Android sensor manager in the paper's setup).
pub trait Sensor: Send {
    /// Stable sensor name, used as the TSDB metric prefix.
    fn name(&self) -> &str;

    /// Native sampling period in seconds.
    fn period(&self) -> f64;

    /// Produces the reading at true time `t`.
    fn sample(&mut self, t: f64) -> SensorReading;
}

/// Looks up the scripted class at session time `t` for a sorted,
/// per-driver segment list, generic over the behaviour taxonomy. Falls
/// back to `fallback` outside the script.
pub(crate) fn scripted_at<B: Copy>(segments: &[Segment<B>], t: f64, fallback: B) -> B {
    // Segments are contiguous and sorted by start.
    let idx = segments.partition_point(|s| s.start <= t);
    if idx == 0 {
        return segments.first().map(|s| s.behavior).unwrap_or(fallback);
    }
    let seg = &segments[idx - 1];
    if seg.contains(t) {
        seg.behavior
    } else {
        fallback
    }
}

/// Looks up the scripted behaviour at session time `t` for a sorted,
/// per-driver segment list. Falls back to [`Behavior::NormalDriving`]
/// outside the script.
pub(crate) fn behavior_at(segments: &[Segment<Behavior>], t: f64) -> Behavior {
    scripted_at(segments, t, Behavior::NormalDriving)
}

/// The in-vehicle camera (the paper's Nexus 7 "dashcam" agent).
pub struct CameraSensor {
    world: Arc<DrivingWorld>,
    driver: usize,
    segments: Vec<Segment<Behavior>>,
    period: f64,
    name: String,
}

impl CameraSensor {
    /// Creates a camera for `driver` following the given (session-local,
    /// sorted) segment script.
    pub fn new(
        world: Arc<DrivingWorld>,
        driver: usize,
        mut segments: Vec<Segment<Behavior>>,
        period: f64,
    ) -> Self {
        segments.sort_by(|a, b| a.start.total_cmp(&b.start));
        CameraSensor {
            world,
            driver,
            segments,
            period,
            name: format!("camera.driver{driver}"),
        }
    }
}

impl Sensor for CameraSensor {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> f64 {
        self.period
    }

    fn sample(&mut self, t: f64) -> SensorReading {
        let behavior = behavior_at(&self.segments, t);
        SensorReading::Frame(self.world.render_frame(self.driver, behavior, t))
    }
}

/// The driver's phone IMU (the paper's Nexus S agent: accelerometer,
/// gyroscope, gravity, and rotation listeners at 25 ms).
pub struct ImuSensor {
    world: Arc<DrivingWorld>,
    driver: usize,
    segments: Vec<Segment<Behavior>>,
    period: f64,
    name: String,
}

impl ImuSensor {
    /// Creates an IMU sensor for `driver` following the given script.
    pub fn new(
        world: Arc<DrivingWorld>,
        driver: usize,
        mut segments: Vec<Segment<Behavior>>,
        period: f64,
    ) -> Self {
        segments.sort_by(|a, b| a.start.total_cmp(&b.start));
        ImuSensor {
            world,
            driver,
            segments,
            period,
            name: format!("imu.driver{driver}"),
        }
    }
}

impl Sensor for ImuSensor {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> f64 {
        self.period
    }

    fn sample(&mut self, t: f64) -> SensorReading {
        let behavior = behavior_at(&self.segments, t);
        SensorReading::Imu(self.world.imu_sample(self.driver, behavior, t))
    }
}

/// Which physical camera a canonical-session camera sensor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CameraView {
    /// The dash-mounted front view (the paper's Nexus 7 placement).
    Front,
    /// The passenger-side A-pillar profile view.
    Side,
}

/// A camera over the 8-class canonical script: front or side view of the
/// same scripted session, so a multi-stream campaign can register two
/// camera streams that disagree in geometry but agree in ground truth.
pub struct CanonicalCameraSensor {
    world: Arc<DrivingWorld>,
    driver: usize,
    segments: Vec<Segment<CanonicalBehavior>>,
    period: f64,
    view: CameraView,
    name: String,
}

impl CanonicalCameraSensor {
    /// Creates a canonical camera for `driver` with the given view.
    pub fn new(
        world: Arc<DrivingWorld>,
        driver: usize,
        mut segments: Vec<Segment<CanonicalBehavior>>,
        period: f64,
        view: CameraView,
    ) -> Self {
        segments.sort_by(|a, b| a.start.total_cmp(&b.start));
        let tag = match view {
            CameraView::Front => "front",
            CameraView::Side => "side",
        };
        CanonicalCameraSensor {
            world,
            driver,
            segments,
            period,
            view,
            name: format!("camera.{tag}.driver{driver}"),
        }
    }
}

impl Sensor for CanonicalCameraSensor {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> f64 {
        self.period
    }

    fn sample(&mut self, t: f64) -> SensorReading {
        let class = scripted_at(&self.segments, t, CanonicalBehavior::NormalDriving);
        let frame = match self.view {
            CameraView::Front => self.world.render_canonical_frame(self.driver, class, t),
            CameraView::Side => self.world.render_side_frame(self.driver, class, t),
        };
        SensorReading::Frame(frame)
    }
}

/// The phone IMU over the 8-class canonical script (drowsy classes emit
/// micro-correction signatures instead of manipulation jitter).
pub struct CanonicalImuSensor {
    world: Arc<DrivingWorld>,
    driver: usize,
    segments: Vec<Segment<CanonicalBehavior>>,
    period: f64,
    name: String,
}

impl CanonicalImuSensor {
    /// Creates a canonical IMU sensor for `driver`.
    pub fn new(
        world: Arc<DrivingWorld>,
        driver: usize,
        mut segments: Vec<Segment<CanonicalBehavior>>,
        period: f64,
    ) -> Self {
        segments.sort_by(|a, b| a.start.total_cmp(&b.start));
        CanonicalImuSensor {
            world,
            driver,
            segments,
            period,
            name: format!("imu.driver{driver}"),
        }
    }
}

impl Sensor for CanonicalImuSensor {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> f64 {
        self.period
    }

    fn sample(&mut self, t: f64) -> SensorReading {
        let class = scripted_at(&self.segments, t, CanonicalBehavior::NormalDriving);
        SensorReading::Imu(self.world.imu_sample_canonical(self.driver, class, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darnet_sim::WorldConfig;

    fn script() -> Vec<Segment<Behavior>> {
        vec![
            Segment {
                driver: 0,
                behavior: Behavior::NormalDriving,
                start: 0.0,
                duration: 15.0,
            },
            Segment {
                driver: 0,
                behavior: Behavior::Texting,
                start: 15.0,
                duration: 15.0,
            },
            Segment {
                driver: 0,
                behavior: Behavior::Talking,
                start: 30.0,
                duration: 15.0,
            },
        ]
    }

    #[test]
    fn behavior_lookup_follows_script() {
        let s = script();
        assert_eq!(behavior_at(&s, 0.0), Behavior::NormalDriving);
        assert_eq!(behavior_at(&s, 16.0), Behavior::Texting);
        assert_eq!(behavior_at(&s, 44.9), Behavior::Talking);
        // Past the end: normal driving.
        assert_eq!(behavior_at(&s, 45.1), Behavior::NormalDriving);
    }

    #[test]
    fn camera_sensor_emits_frames() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let mut cam = CameraSensor::new(world, 0, script(), 0.25);
        assert_eq!(cam.period(), 0.25);
        assert!(cam.name().contains("camera"));
        let reading = cam.sample(1.0);
        assert!(reading.as_frame().is_some());
        assert!(reading.as_imu().is_none());
    }

    #[test]
    fn imu_sensor_emits_samples() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let mut imu = ImuSensor::new(world, 1, script(), 0.025);
        let reading = imu.sample(20.0);
        assert!(reading.as_imu().is_some());
    }

    #[test]
    fn sensors_are_boxable_as_trait_objects() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let sensors: Vec<Box<dyn Sensor>> = vec![
            Box::new(CameraSensor::new(Arc::clone(&world), 0, script(), 0.25)),
            Box::new(ImuSensor::new(world, 0, script(), 0.025)),
        ];
        assert_eq!(sensors.len(), 2);
    }

    #[test]
    fn canonical_sensors_follow_the_8_class_script() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let script = vec![
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::HeadDroop,
                start: 0.0,
                duration: 10.0,
            },
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::Texting,
                start: 10.0,
                duration: 10.0,
            },
        ];
        let mut front = CanonicalCameraSensor::new(
            Arc::clone(&world),
            0,
            script.clone(),
            0.25,
            CameraView::Front,
        );
        let mut side = CanonicalCameraSensor::new(
            Arc::clone(&world),
            0,
            script.clone(),
            0.25,
            CameraView::Side,
        );
        let mut imu = CanonicalImuSensor::new(Arc::clone(&world), 0, script, 0.025);
        assert!(front.name().contains("camera.front"));
        assert!(side.name().contains("camera.side"));
        let f = front.sample(2.0);
        let s = side.sample(2.0);
        // Same instant, same scripted class, different geometry.
        assert_ne!(f.as_frame().unwrap(), s.as_frame().unwrap());
        assert!(imu.sample(2.0).as_imu().is_some());
        // Base classes route through the legacy render path bitwise.
        let legacy = world.render_frame(0, Behavior::Texting, 12.0);
        assert_eq!(front.sample(12.0).as_frame().unwrap(), &legacy);
    }

    #[test]
    fn unsorted_script_is_sorted_on_construction() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let mut rev = script();
        rev.reverse();
        let mut cam = CameraSensor::new(world, 0, rev, 0.25);
        // Still resolves the right behaviour.
        let f_texting = cam.sample(20.0);
        let f_normal = cam.sample(5.0);
        assert!(f_texting.as_frame().is_some());
        assert!(f_normal.as_frame().is_some());
    }
}
