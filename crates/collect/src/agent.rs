//! The collection agent: polls one sensor, timestamps with its local
//! (drifting) clock, and transmits batches to the controller.

use crate::clock::DriftClock;
use crate::sensor::Sensor;
use crate::wire::{Batch, StampedReading};

/// Agent configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// Sensor poll period, seconds (paper: 25 ms for IMU listeners).
    pub poll_period: f64,
    /// Batch transmission period, seconds — chosen "based on the latency
    /// and bandwidth between the agent and the controller" (§3.1).
    pub transmit_period: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            poll_period: 0.025,
            transmit_period: 0.5,
        }
    }
}

/// A collection agent embedded in one IoT device.
///
/// The agent's responsibilities mirror §3.1 of the paper: periodically poll
/// the device's sensor, maintain an internal clock for timestamping, and
/// transmit data to the centralized controller at a configured frequency.
pub struct CollectionAgent {
    id: u32,
    sensor: Box<dyn Sensor>,
    clock: DriftClock,
    config: AgentConfig,
    buffer: Vec<StampedReading>,
    next_seq: u32,
    polls: u64,
}

impl CollectionAgent {
    /// Creates an agent around a sensor with the given local clock.
    pub fn new(id: u32, sensor: Box<dyn Sensor>, clock: DriftClock, config: AgentConfig) -> Self {
        CollectionAgent {
            id,
            sensor,
            clock,
            config,
            buffer: Vec::new(),
            next_seq: 0,
            polls: 0,
        }
    }

    /// Agent identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Agent configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The agent's current clock error at true time `t` (diagnostic).
    pub fn clock_error(&self, t: f64) -> f64 {
        self.clock.error(t)
    }

    /// Number of polls performed.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// Polls the sensor at true time `t`, stamping the reading with the
    /// agent's *local* clock (which is what the paper's system must
    /// correct for via synchronization).
    pub fn poll(&mut self, t: f64) {
        let reading = self.sensor.sample(t);
        self.buffer.push(StampedReading {
            timestamp: self.clock.now(t),
            reading,
        });
        self.polls += 1;
    }

    /// Drains buffered readings into a transmission batch; returns `None`
    /// if nothing was buffered.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.buffer.is_empty() {
            return None;
        }
        let batch = Batch {
            agent_id: self.id,
            seq: self.next_seq,
            readings: std::mem::take(&mut self.buffer),
        };
        self.next_seq += 1;
        Some(batch)
    }

    /// Handles a clock-sync message from the controller, received at true
    /// time `t`: the master's UTC plus the measured network delay become
    /// the agent's new local time (§4.1).
    pub fn handle_sync(&mut self, t: f64, master_utc: f64, measured_delay: f64) {
        self.clock.apply_sync(t, master_utc, measured_delay);
    }
}

impl std::fmt::Debug for CollectionAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionAgent")
            .field("id", &self.id)
            .field("sensor", &self.sensor.name())
            .field("buffered", &self.buffer.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{ImuSensor, SensorReading};
    use darnet_sim::{Behavior, DrivingWorld, Segment, WorldConfig};
    use std::sync::Arc;

    fn make_agent(clock: DriftClock) -> CollectionAgent {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let script = vec![Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 0.0,
            duration: 60.0,
        }];
        CollectionAgent::new(
            7,
            Box::new(ImuSensor::new(world, 0, script, 0.025)),
            clock,
            AgentConfig::default(),
        )
    }

    #[test]
    fn poll_stamps_with_local_clock() {
        let mut agent = make_agent(DriftClock::new(0.0, 0.5));
        agent.poll(1.0);
        let batch = agent.flush().unwrap();
        assert_eq!(batch.readings.len(), 1);
        // Local clock = true + 0.5.
        assert!((batch.readings[0].timestamp - 1.5).abs() < 1e-9);
        assert!(matches!(batch.readings[0].reading, SensorReading::Imu(_)));
    }

    #[test]
    fn flush_returns_none_when_empty_and_drains_buffer() {
        let mut agent = make_agent(DriftClock::perfect());
        assert!(agent.flush().is_none());
        agent.poll(0.0);
        agent.poll(0.025);
        let b = agent.flush().unwrap();
        assert_eq!(b.readings.len(), 2);
        assert!(agent.flush().is_none());
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut agent = make_agent(DriftClock::perfect());
        agent.poll(0.0);
        let b0 = agent.flush().unwrap();
        agent.poll(1.0);
        let b1 = agent.flush().unwrap();
        assert_eq!(b0.seq, 0);
        assert_eq!(b1.seq, 1);
        assert_eq!(agent.poll_count(), 2);
    }

    #[test]
    fn sync_corrects_future_timestamps() {
        let mut agent = make_agent(DriftClock::new(0.0, 2.0));
        assert!(agent.clock_error(0.0).abs() > 1.0);
        agent.handle_sync(10.0, 9.98, 0.02);
        assert!(agent.clock_error(10.0).abs() < 1e-9);
        agent.poll(10.5);
        let b = agent.flush().unwrap();
        assert!((b.readings[0].timestamp - 10.5).abs() < 1e-9);
    }
}
