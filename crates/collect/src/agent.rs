//! The collection agent: polls one sensor, timestamps with its local
//! (drifting) clock, and transmits batches to the controller — reliably,
//! when the transport layer is enabled: flushed batches stay in a bounded
//! in-flight window until acked, and unacked batches are retransmitted on
//! an exponential-backoff-with-jitter schedule.

use std::collections::VecDeque;

use darnet_tensor::SplitMix64;

use crate::clock::DriftClock;
use crate::error::CollectError;
use crate::sensor::Sensor;
use crate::wire::{Batch, StampedReading};
use crate::Result;

/// Agent configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// Sensor poll period, seconds (paper: 25 ms for IMU listeners).
    pub poll_period: f64,
    /// Batch transmission period, seconds — chosen "based on the latency
    /// and bandwidth between the agent and the controller" (§3.1).
    pub transmit_period: f64,
    /// Bound and policy for the agent-side spill buffer that holds
    /// readings while the controller is unreachable or backpressuring.
    pub spill: SpillConfig,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            poll_period: 0.025,
            transmit_period: 0.5,
            spill: SpillConfig::default(),
        }
    }
}

/// Bound on the agent-side spill buffer: readings accumulated while
/// flushes are deferred (full in-flight window, controller blackout or
/// restart). Embedded devices have finite memory, so the buffer is
/// explicitly bounded and hitting the bound has *typed* semantics
/// instead of unbounded growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillConfig {
    /// Maximum readings held in the spill buffer.
    pub max_readings: usize,
    /// What to do at the bound: `true` drops the *oldest* buffered
    /// reading to admit the new one (graceful degradation — recent data
    /// is worth more to a live detector than stale data); `false` makes
    /// the poll fail with [`CollectError::Overload`] (strict give-up).
    pub drop_oldest: bool,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            max_readings: 100_000,
            drop_oldest: false,
        }
    }
}

/// Cumulative spill-buffer counters for one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// High-water mark of buffered readings.
    pub peak_buffered: usize,
    /// Readings dropped (oldest-first) to stay under the bound.
    pub dropped_oldest: u64,
}

/// Reliable-delivery configuration for one agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetransmitConfig {
    /// Whether the ack/retransmit protocol runs at all. With it off, a
    /// flushed batch is fire-and-forget (the pre-transport behaviour) and
    /// losses become gaps the controller merely accounts for.
    pub enabled: bool,
    /// Initial ack timeout (RTO), seconds. Should comfortably exceed one
    /// round trip.
    pub ack_timeout: f64,
    /// RTO multiplier applied per retry (exponential backoff).
    pub backoff: f64,
    /// Uniform jitter applied to each RTO as a fraction of its value, so a
    /// fleet of agents recovering from the same blackout doesn't
    /// retransmit in lockstep.
    pub jitter_frac: f64,
    /// Retries before a batch is abandoned (counted, and an error in
    /// strict mode).
    pub max_retries: u32,
    /// Maximum unacked batches in flight. A full window exerts
    /// backpressure: flushes are deferred and readings keep buffering in
    /// the spill buffer (bounded by [`SpillConfig`]).
    pub window: usize,
    /// When `true`, abandoning a batch (retries exhausted) is an error
    /// instead of a counter bump.
    pub strict: bool,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            enabled: true,
            ack_timeout: 0.25,
            backoff: 2.0,
            jitter_frac: 0.25,
            max_retries: 8,
            window: 16,
            strict: false,
        }
    }
}

impl RetransmitConfig {
    /// The legacy fire-and-forget transport.
    pub fn disabled() -> Self {
        RetransmitConfig {
            enabled: false,
            ..RetransmitConfig::default()
        }
    }
}

/// Cumulative transport counters for one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Batches handed to the link at least once.
    pub transmitted: u64,
    /// Retransmission attempts.
    pub retransmits: u64,
    /// Batches retired by an ack.
    pub acked: u64,
    /// Batches abandoned after exhausting retries.
    pub abandoned: u64,
    /// Flush attempts deferred because the window was full.
    pub backpressure_events: u64,
    /// Duplicate acks received (ack for a batch no longer in flight).
    pub duplicate_acks: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    batch: Batch,
    retries: u32,
    deadline: f64,
}

/// A collection agent embedded in one IoT device.
///
/// The agent's responsibilities mirror §3.1 of the paper: periodically poll
/// the device's sensor, maintain an internal clock for timestamping, and
/// transmit data to the centralized controller at a configured frequency.
/// On top of that sits the reliable transport: [`CollectionAgent::flush_at`]
/// admits batches into a bounded in-flight window,
/// [`CollectionAgent::handle_ack`] retires them, and
/// [`CollectionAgent::due_retransmits`] yields the batches whose ack
/// timeout has expired.
pub struct CollectionAgent {
    id: u32,
    sensor: Box<dyn Sensor>,
    clock: DriftClock,
    config: AgentConfig,
    transport: RetransmitConfig,
    buffer: VecDeque<StampedReading>,
    in_flight: VecDeque<InFlight>,
    stats: TransportStats,
    spill_stats: SpillStats,
    rng: SplitMix64,
    next_seq: u32,
    polls: u64,
}

impl CollectionAgent {
    /// Creates an agent around a sensor with the given local clock and the
    /// default reliable transport.
    pub fn new(id: u32, sensor: Box<dyn Sensor>, clock: DriftClock, config: AgentConfig) -> Self {
        CollectionAgent {
            id,
            sensor,
            clock,
            config,
            transport: RetransmitConfig::default(),
            buffer: VecDeque::new(),
            in_flight: VecDeque::new(),
            stats: TransportStats::default(),
            spill_stats: SpillStats::default(),
            rng: SplitMix64::new(0xA6E7 ^ id as u64),
            next_seq: 0,
            polls: 0,
        }
    }

    /// Replaces the transport configuration (builder style). `seed` drives
    /// the retransmission jitter.
    pub fn with_transport(mut self, transport: RetransmitConfig, seed: u64) -> Self {
        self.transport = transport;
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Agent identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Agent configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Transport configuration.
    pub fn transport_config(&self) -> &RetransmitConfig {
        &self.transport
    }

    /// Cumulative transport counters.
    pub fn transport_stats(&self) -> TransportStats {
        self.stats
    }

    /// Unacked batches currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The agent's current clock error at true time `t` (diagnostic).
    pub fn clock_error(&self, t: f64) -> f64 {
        self.clock.error(t)
    }

    /// Number of polls performed.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// Total readings handed to batches so far plus those still buffered.
    pub fn readings_produced(&self) -> u64 {
        self.polls
    }

    /// Cumulative spill-buffer counters.
    pub fn spill_stats(&self) -> SpillStats {
        self.spill_stats
    }

    /// Readings currently held in the spill buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Polls the sensor at true time `t`, stamping the reading with the
    /// agent's *local* clock (which is what the paper's system must
    /// correct for via synchronization). The reading lands in the bounded
    /// spill buffer until the next successful flush.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Overload`] when the spill buffer is at its
    /// bound and `drop_oldest` is off — the typed give-up: the reading is
    /// *discarded*, the buffered backlog is kept intact for when the
    /// controller returns.
    pub fn poll(&mut self, t: f64) -> Result<()> {
        let reading = self.sensor.sample(t);
        self.polls += 1;
        if self.buffer.len() >= self.config.spill.max_readings {
            if !self.config.spill.drop_oldest {
                return Err(CollectError::Overload {
                    agent_id: self.id,
                    buffered: self.buffer.len(),
                    capacity: self.config.spill.max_readings,
                });
            }
            // Graceful mode: age out the stalest reading to admit the
            // fresh one.
            self.buffer.pop_front();
            self.spill_stats.dropped_oldest += 1;
        }
        self.buffer.push_back(StampedReading {
            timestamp: self.clock.now(t),
            reading,
        });
        self.spill_stats.peak_buffered = self.spill_stats.peak_buffered.max(self.buffer.len());
        Ok(())
    }

    fn make_batch(&mut self) -> Batch {
        let batch = Batch {
            agent_id: self.id,
            seq: self.next_seq,
            readings: std::mem::take(&mut self.buffer).into(),
        };
        self.next_seq += 1;
        batch
    }

    fn rto(&mut self, retries: u32) -> f64 {
        let base = self.transport.ack_timeout * self.transport.backoff.powi(retries as i32);
        let jitter = self.transport.jitter_frac * base;
        base + (2.0 * self.rng.next_f64() - 1.0) * jitter
    }

    /// Drains buffered readings into a transmission batch; returns `None`
    /// if nothing was buffered. Fire-and-forget: the batch is *not*
    /// entered into the in-flight window (use [`CollectionAgent::flush_at`]
    /// for reliable delivery).
    pub fn flush(&mut self) -> Option<Batch> {
        if self.buffer.is_empty() {
            return None;
        }
        Some(self.make_batch())
    }

    /// Transport-aware flush at true time `t`. With the transport enabled,
    /// the returned batch also enters the in-flight window with its first
    /// ack deadline; a full window defers the flush and returns
    /// `Ok(None)` — readings keep accumulating in the bounded spill
    /// buffer (backpressure), whose overflow policy lives at the *poll*
    /// ([`SpillConfig`]), not here.
    pub fn flush_at(&mut self, t: f64) -> Result<Option<Batch>> {
        if !self.transport.enabled {
            return Ok(self.flush());
        }
        if self.buffer.is_empty() {
            return Ok(None);
        }
        if self.in_flight.len() >= self.transport.window {
            self.stats.backpressure_events += 1;
            return Ok(None);
        }
        let batch = self.make_batch();
        let deadline = t + self.rto(0);
        self.in_flight.push_back(InFlight {
            batch: batch.clone(),
            retries: 0,
            deadline,
        });
        self.stats.transmitted += 1;
        Ok(Some(batch))
    }

    /// Records a flush deferred by an *external* backpressure signal —
    /// the fleet admission rollup telling agents to hold off — so the
    /// deferral shows up in [`TransportStats::backpressure_events`]
    /// alongside window-full deferrals. Readings keep accumulating in
    /// the bounded spill buffer exactly as for a window-full deferral.
    pub fn note_deferred_flush(&mut self) {
        self.stats.backpressure_events += 1;
    }

    /// Handles a controller ack for `seq`: retires the matching in-flight
    /// entry (idempotent — re-acks for already-retired batches are counted
    /// and ignored).
    pub fn handle_ack(&mut self, seq: u32) {
        let before = self.in_flight.len();
        self.in_flight.retain(|e| e.batch.seq != seq);
        if self.in_flight.len() < before {
            self.stats.acked += 1;
        } else {
            self.stats.duplicate_acks += 1;
        }
    }

    /// The earliest ack deadline among in-flight batches, if any — when
    /// the event loop should next call
    /// [`CollectionAgent::due_retransmits`].
    pub fn next_deadline(&self) -> Option<f64> {
        self.in_flight
            .iter()
            .map(|e| e.deadline)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Collects every in-flight batch whose ack deadline has passed at
    /// time `t`, advancing each one's backoff schedule. Batches that have
    /// exhausted `max_retries` are abandoned (dropped from the window).
    ///
    /// # Errors
    ///
    /// In strict mode, abandoning a batch returns
    /// [`CollectError::Transport`] ("ack timeout exhausted") instead.
    pub fn due_retransmits(&mut self, t: f64) -> Result<Vec<Batch>> {
        let mut due = Vec::new();
        let mut abandoned = 0u64;
        let mut strict_err = None;
        let window = std::mem::take(&mut self.in_flight);
        for mut entry in window {
            if entry.deadline > t + 1e-12 {
                self.in_flight.push_back(entry);
                continue;
            }
            if entry.retries >= self.transport.max_retries {
                abandoned += 1;
                if self.transport.strict && strict_err.is_none() {
                    strict_err = Some(CollectError::Transport(format!(
                        "agent {}: ack timeout exhausted after {} retries for batch seq {}",
                        self.id, entry.retries, entry.batch.seq
                    )));
                }
                continue;
            }
            entry.retries += 1;
            entry.deadline = t + self.rto(entry.retries);
            due.push(entry.batch.clone());
            self.in_flight.push_back(entry);
        }
        self.stats.abandoned += abandoned;
        self.stats.retransmits += due.len() as u64;
        match strict_err {
            Some(e) => Err(e),
            None => Ok(due),
        }
    }

    /// Handles a clock-sync message from the controller, received at true
    /// time `t`: the master's UTC plus the measured network delay become
    /// the agent's new local time (§4.1).
    pub fn handle_sync(&mut self, t: f64, master_utc: f64, measured_delay: f64) {
        self.clock.apply_sync(t, master_utc, measured_delay);
    }
}

impl std::fmt::Debug for CollectionAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionAgent")
            .field("id", &self.id)
            .field("sensor", &self.sensor.name())
            .field("buffered", &self.buffer.len())
            .field("in_flight", &self.in_flight.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{ImuSensor, SensorReading};
    use darnet_sim::{Behavior, DrivingWorld, Segment, WorldConfig};
    use std::sync::Arc;

    fn make_agent_with(clock: DriftClock, config: AgentConfig) -> CollectionAgent {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let script = vec![Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 0.0,
            duration: 60.0,
        }];
        CollectionAgent::new(
            7,
            Box::new(ImuSensor::new(world, 0, script, 0.025)),
            clock,
            config,
        )
    }

    fn make_agent(clock: DriftClock) -> CollectionAgent {
        make_agent_with(clock, AgentConfig::default())
    }

    #[test]
    fn poll_stamps_with_local_clock() {
        let mut agent = make_agent(DriftClock::new(0.0, 0.5));
        agent.poll(1.0).unwrap();
        let batch = agent.flush().unwrap();
        assert_eq!(batch.readings.len(), 1);
        // Local clock = true + 0.5.
        assert!((batch.readings[0].timestamp - 1.5).abs() < 1e-9);
        assert!(matches!(batch.readings[0].reading, SensorReading::Imu(_)));
    }

    #[test]
    fn flush_returns_none_when_empty_and_drains_buffer() {
        let mut agent = make_agent(DriftClock::perfect());
        assert!(agent.flush().is_none());
        agent.poll(0.0).unwrap();
        agent.poll(0.025).unwrap();
        let b = agent.flush().unwrap();
        assert_eq!(b.readings.len(), 2);
        assert!(agent.flush().is_none());
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut agent = make_agent(DriftClock::perfect());
        agent.poll(0.0).unwrap();
        let b0 = agent.flush().unwrap();
        agent.poll(1.0).unwrap();
        let b1 = agent.flush().unwrap();
        assert_eq!(b0.seq, 0);
        assert_eq!(b1.seq, 1);
        assert_eq!(agent.poll_count(), 2);
    }

    #[test]
    fn sync_corrects_future_timestamps() {
        let mut agent = make_agent(DriftClock::new(0.0, 2.0));
        assert!(agent.clock_error(0.0).abs() > 1.0);
        agent.handle_sync(10.0, 9.98, 0.02);
        assert!(agent.clock_error(10.0).abs() < 1e-9);
        agent.poll(10.5).unwrap();
        let b = agent.flush().unwrap();
        assert!((b.readings[0].timestamp - 10.5).abs() < 1e-9);
    }

    #[test]
    fn tracked_flush_enters_window_and_ack_retires() {
        let mut agent = make_agent(DriftClock::perfect());
        agent.poll(0.0).unwrap();
        let batch = agent.flush_at(0.5).unwrap().unwrap();
        assert_eq!(agent.in_flight(), 1);
        assert!(agent.next_deadline().unwrap() > 0.5);
        agent.handle_ack(batch.seq);
        assert_eq!(agent.in_flight(), 0);
        assert_eq!(agent.next_deadline(), None);
        let stats = agent.transport_stats();
        assert_eq!(stats.transmitted, 1);
        assert_eq!(stats.acked, 1);
        // Re-ack is idempotent.
        agent.handle_ack(batch.seq);
        assert_eq!(agent.transport_stats().duplicate_acks, 1);
    }

    #[test]
    fn retransmit_schedule_backs_off_exponentially() {
        let transport = RetransmitConfig {
            ack_timeout: 1.0,
            backoff: 2.0,
            jitter_frac: 0.0, // deterministic deadlines for the assertion
            max_retries: 3,
            ..RetransmitConfig::default()
        };
        let mut agent = make_agent(DriftClock::perfect()).with_transport(transport, 99);
        agent.poll(0.0).unwrap();
        agent.flush_at(0.0).unwrap().unwrap();
        // First deadline at t = 1.
        assert!((agent.next_deadline().unwrap() - 1.0).abs() < 1e-9);
        // Nothing due before the deadline.
        assert!(agent.due_retransmits(0.5).unwrap().is_empty());
        // Each retry multiplies the RTO by 2: deadlines 1, 3, 7, 15.
        let mut t = 1.0;
        let mut expected_rto = 2.0;
        for _ in 0..3 {
            let due = agent.due_retransmits(t).unwrap();
            assert_eq!(due.len(), 1);
            let next = agent.next_deadline().unwrap();
            assert!(
                (next - (t + expected_rto)).abs() < 1e-9,
                "next {next} t {t}"
            );
            t = next;
            expected_rto *= 2.0;
        }
        // Retries exhausted: the batch is abandoned.
        assert!(agent.due_retransmits(t).unwrap().is_empty());
        assert_eq!(agent.in_flight(), 0);
        assert_eq!(agent.transport_stats().abandoned, 1);
        assert_eq!(agent.transport_stats().retransmits, 3);
    }

    #[test]
    fn strict_mode_errors_on_exhaustion() {
        let transport = RetransmitConfig {
            ack_timeout: 0.1,
            max_retries: 0,
            strict: true,
            ..RetransmitConfig::default()
        };
        let mut agent = make_agent(DriftClock::perfect()).with_transport(transport, 5);
        agent.poll(0.0).unwrap();
        agent.flush_at(0.0).unwrap().unwrap();
        let err = agent.due_retransmits(10.0).unwrap_err();
        assert!(matches!(err, CollectError::Transport(_)));
        assert!(err.to_string().contains("ack timeout exhausted"));
    }

    #[test]
    fn full_window_defers_flush_and_spill_bound_gives_up_typed() {
        let config = AgentConfig {
            spill: SpillConfig {
                max_readings: 3,
                drop_oldest: false,
            },
            ..AgentConfig::default()
        };
        let transport = RetransmitConfig {
            window: 2,
            ..RetransmitConfig::default()
        };
        let mut agent = make_agent_with(DriftClock::perfect(), config).with_transport(transport, 7);
        for i in 0..2 {
            agent.poll(i as f64 * 0.025).unwrap();
            assert!(agent.flush_at(0.5).unwrap().is_some());
        }
        assert_eq!(agent.in_flight(), 2);
        // Window full: flush defers, readings keep spilling.
        agent.poll(0.075).unwrap();
        assert!(agent.flush_at(1.0).unwrap().is_none());
        assert_eq!(agent.transport_stats().backpressure_events, 1);
        // Fill the spill buffer to its bound...
        agent.poll(0.1).unwrap();
        agent.poll(0.125).unwrap();
        assert_eq!(agent.buffered(), 3);
        // ...the next poll is the typed give-up, with full context.
        let err = agent.poll(0.15).unwrap_err();
        assert_eq!(
            err,
            CollectError::Overload {
                agent_id: 7,
                buffered: 3,
                capacity: 3,
            }
        );
        // The backlog itself is preserved: an ack frees the window and
        // the three held readings flush as one batch.
        agent.handle_ack(0);
        let batch = agent.flush_at(2.0).unwrap().unwrap();
        assert_eq!(batch.readings.len(), 3);
        assert_eq!(agent.spill_stats().peak_buffered, 3);
        assert_eq!(agent.spill_stats().dropped_oldest, 0);
    }

    #[test]
    fn drop_oldest_spill_keeps_freshest_readings() {
        let config = AgentConfig {
            spill: SpillConfig {
                max_readings: 2,
                drop_oldest: true,
            },
            ..AgentConfig::default()
        };
        let transport = RetransmitConfig {
            window: 1,
            ..RetransmitConfig::default()
        };
        let mut agent = make_agent_with(DriftClock::perfect(), config).with_transport(transport, 7);
        agent.poll(0.0).unwrap();
        assert!(agent.flush_at(0.0).unwrap().is_some());
        // Window (size 1) is now full; polls spill, bound 2, oldest ages out.
        for i in 0..4 {
            agent.poll(0.1 + i as f64 * 0.1).unwrap();
        }
        assert_eq!(agent.buffered(), 2);
        assert_eq!(agent.spill_stats().dropped_oldest, 2);
        agent.handle_ack(0);
        let batch = agent.flush_at(1.0).unwrap().unwrap();
        // The two *freshest* readings survived (t = 0.3, 0.4).
        assert_eq!(batch.readings.len(), 2);
        assert!((batch.readings[0].timestamp - 0.3).abs() < 1e-9);
        assert!((batch.readings[1].timestamp - 0.4).abs() < 1e-9);
    }

    #[test]
    fn jitter_spreads_retransmit_deadlines() {
        let transport = RetransmitConfig {
            ack_timeout: 1.0,
            jitter_frac: 0.5,
            ..RetransmitConfig::default()
        };
        let mut deadlines = Vec::new();
        for seed in 0..20 {
            let mut agent = make_agent(DriftClock::perfect()).with_transport(transport, seed);
            agent.poll(0.0).unwrap();
            agent.flush_at(0.0).unwrap();
            deadlines.push(agent.next_deadline().unwrap());
        }
        let min = deadlines.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = deadlines.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.2, "jitter spread {min}..{max}");
        assert!(deadlines.iter().all(|&d| (0.5..=1.5).contains(&d)));
    }
}
