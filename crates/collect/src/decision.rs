//! The controller's processing decision (paper §3.2): choose between the
//! local and remote configuration — and, when remote, the privacy level —
//! from the observed processing capability, bandwidth, and latency.
//!
//! *"In determining where the data should be processed, the controller can
//! choose between a local and remote configuration. A remote server would
//! have a greater amount of processing power ... However, under poor
//! network conditions, the controller has the option of processing all
//! data locally, albeit slower."*

use serde::{Deserialize, Serialize};

/// Where the analytics engine runs for this session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessingSite {
    /// On the in-vehicle device (slow inference, no network needed).
    Local,
    /// On the remote server at the given frame distortion divisor
    /// (1 = full resolution, 3/6/12 = the paper's privacy levels, which
    /// double as bandwidth reducers).
    Remote {
        /// Linear down-sampling divisor applied to frames before
        /// transmission.
        distortion_divisor: usize,
    },
}

/// Observed environment the decision is made against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkObservation {
    /// Measured one-way latency, seconds.
    pub latency: f64,
    /// Measured usable bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Observed loss rate in `[0, 1]`.
    pub loss: f64,
}

/// Static capabilities of the two processing sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteCapabilities {
    /// Per-frame inference time on the local device, seconds.
    pub local_inference: f64,
    /// Per-frame inference time on the remote server, seconds.
    pub remote_inference: f64,
    /// Wire bytes of one full-resolution frame (plus IMU share).
    pub frame_bytes: f64,
    /// Frame period, seconds (how often a classification is due).
    pub frame_period: f64,
}

impl Default for SiteCapabilities {
    fn default() -> Self {
        SiteCapabilities {
            // A small CNN on a phone-class CPU vs. a server.
            local_inference: 0.180,
            remote_inference: 0.012,
            frame_bytes: 2_329.0, // 48×48 + batch overhead, from the wire format
            frame_period: 0.25,
        }
    }
}

/// The user's privacy preference (paper §3.2: "the user has the option of
/// specifying the degree of privacy at which the image data is
/// transmitted").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrivacyPreference {
    /// Full-resolution frames may leave the vehicle.
    None,
    /// At most 1/3-resolution frames leave the vehicle (dCNN-L path).
    Low,
    /// At most 1/6 resolution (dCNN-M path).
    Medium,
    /// At most 1/12 resolution (dCNN-H path).
    High,
}

impl PrivacyPreference {
    /// Minimum distortion divisor this preference demands.
    pub fn min_divisor(self) -> usize {
        match self {
            PrivacyPreference::None => 1,
            PrivacyPreference::Low => 3,
            PrivacyPreference::Medium => 6,
            PrivacyPreference::High => 12,
        }
    }
}

/// Decides where to process, and at which distortion level, so that one
/// classification completes within each frame period.
///
/// Policy (mirroring §3.2's reasoning):
/// 1. Start from the user's privacy floor — frames are never transmitted
///    at a higher resolution than the preference allows.
/// 2. For each candidate divisor (preference floor upward), check that the
///    end-to-end remote path — transmit time at the observed bandwidth,
///    retry-inflated by loss, plus one-way latency, plus server inference —
///    fits in the frame period. Pick the *least* distorted level that fits
///    (maximum classifier accuracy).
/// 3. If no remote level fits, fall back to local processing if the local
///    device keeps up; otherwise pick the most aggressive remote level
///    (least data) as the best effort.
pub fn decide_processing(
    link: &LinkObservation,
    caps: &SiteCapabilities,
    preference: PrivacyPreference,
) -> ProcessingSite {
    let divisors = [1usize, 3, 6, 12];
    let floor = preference.min_divisor();
    let retry_factor = 1.0 / (1.0 - link.loss.clamp(0.0, 0.95));
    for &d in divisors.iter().filter(|&&d| d >= floor) {
        let bytes = caps.frame_bytes / (d * d) as f64;
        let transmit = bytes / link.bandwidth.max(1.0) * retry_factor;
        let total = link.latency + transmit + caps.remote_inference;
        if total <= caps.frame_period {
            return ProcessingSite::Remote {
                distortion_divisor: d,
            };
        }
    }
    if caps.local_inference <= caps.frame_period {
        ProcessingSite::Local
    } else {
        ProcessingSite::Remote {
            distortion_divisor: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_link() -> LinkObservation {
        LinkObservation {
            latency: 0.02,
            bandwidth: 1_000_000.0,
            loss: 0.0,
        }
    }

    #[test]
    fn good_network_processes_remotely_at_full_resolution() {
        let site = decide_processing(
            &good_link(),
            &SiteCapabilities::default(),
            PrivacyPreference::None,
        );
        assert_eq!(
            site,
            ProcessingSite::Remote {
                distortion_divisor: 1
            }
        );
    }

    #[test]
    fn privacy_preference_is_a_hard_floor() {
        let site = decide_processing(
            &good_link(),
            &SiteCapabilities::default(),
            PrivacyPreference::Medium,
        );
        assert_eq!(
            site,
            ProcessingSite::Remote {
                distortion_divisor: 6
            }
        );
    }

    #[test]
    fn slow_network_forces_more_distortion() {
        let slow = LinkObservation {
            latency: 0.05,
            bandwidth: 9_000.0, // ~9 kB/s: full frames no longer fit the period
            loss: 0.0,
        };
        let site = decide_processing(&slow, &SiteCapabilities::default(), PrivacyPreference::None);
        match site {
            ProcessingSite::Remote { distortion_divisor } => assert!(distortion_divisor > 1),
            ProcessingSite::Local => panic!("local device is slower than the frame period"),
        }
    }

    #[test]
    fn dead_network_falls_back_to_local_when_device_keeps_up() {
        let dead = LinkObservation {
            latency: 5.0,
            bandwidth: 10.0,
            loss: 0.5,
        };
        let caps = SiteCapabilities {
            local_inference: 0.2,
            frame_period: 0.25,
            ..SiteCapabilities::default()
        };
        assert_eq!(
            decide_processing(&dead, &caps, PrivacyPreference::None),
            ProcessingSite::Local
        );
    }

    #[test]
    fn dead_network_and_slow_device_degrade_to_max_distortion() {
        let dead = LinkObservation {
            latency: 5.0,
            bandwidth: 10.0,
            loss: 0.5,
        };
        let caps = SiteCapabilities {
            local_inference: 0.5, // cannot keep up locally either
            frame_period: 0.25,
            ..SiteCapabilities::default()
        };
        assert_eq!(
            decide_processing(&dead, &caps, PrivacyPreference::None),
            ProcessingSite::Remote {
                distortion_divisor: 12
            }
        );
    }

    #[test]
    fn loss_inflates_effective_transmit_time() {
        // At this bandwidth, full resolution fits only without loss.
        let caps = SiteCapabilities::default();
        let borderline = LinkObservation {
            latency: 0.02,
            bandwidth: 11_000.0,
            loss: 0.0,
        };
        assert_eq!(
            decide_processing(&borderline, &caps, PrivacyPreference::None),
            ProcessingSite::Remote {
                distortion_divisor: 1
            }
        );
        let lossy = LinkObservation {
            loss: 0.4,
            ..borderline
        };
        match decide_processing(&lossy, &caps, PrivacyPreference::None) {
            ProcessingSite::Remote { distortion_divisor } => assert!(distortion_divisor > 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
