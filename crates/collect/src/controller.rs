//! The centralized controller: ingests agent batches, re-orders by
//! timestamp, interpolates the IMU stream onto a uniform grid, smooths it,
//! and stores everything in the time-series database (paper §3.2, §4.1).

use darnet_sim::Frame;
use serde::{Deserialize, Serialize};

use crate::align::{interpolate_grid, moving_average, GridSpec};
use crate::error::CollectError;
use crate::sensor::SensorReading;
use crate::tsdb::TsDb;
use crate::wire::Batch;
use crate::Result;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Uniform grid frequency the IMU stream is aligned to (paper: 4 Hz).
    pub grid_hz: f64,
    /// Sliding moving-average window in grid samples.
    pub smoothing_window: usize,
    /// Clock re-synchronization period, seconds (paper: 5 s).
    pub sync_period: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            grid_hz: 4.0,
            smoothing_window: 3,
            sync_period: 5.0,
        }
    }
}

/// One aligned, smoothed IMU grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignedImuPoint {
    /// Grid timestamp, seconds (controller time base).
    pub t: f64,
    /// The 12 smoothed IMU features.
    pub features: Vec<f32>,
}

/// One received camera frame with its (sync-corrected agent) timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Frame timestamp, seconds.
    pub t: f64,
    /// The frame as received over the wire.
    pub frame: Frame,
}

/// The centralized controller for one collection session.
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    imu_observations: Vec<(f64, Vec<f32>)>,
    frames: Vec<FrameRecord>,
    tsdb: TsDb,
    batches: u64,
    readings: u64,
}

impl Controller {
    /// Creates a controller.
    pub fn new(config: ControllerConfig) -> Self {
        Controller {
            config,
            imu_observations: Vec::new(),
            frames: Vec::new(),
            tsdb: TsDb::new(),
            batches: 0,
            readings: 0,
        }
    }

    /// Controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Ingests one agent batch. Readings are buffered by timestamp; frames
    /// and IMU channels are also mirrored into the TSDB.
    pub fn ingest(&mut self, batch: &Batch) {
        self.batches += 1;
        for r in &batch.readings {
            self.readings += 1;
            match &r.reading {
                SensorReading::Imu(sample) => {
                    let feats = sample.to_features().to_vec();
                    self.tsdb.insert_vector("imu", r.timestamp, &feats);
                    self.imu_observations.push((r.timestamp, feats));
                }
                SensorReading::Frame(frame) => {
                    self.tsdb
                        .insert("camera.mean_intensity", r.timestamp, frame.mean());
                    self.frames.push(FrameRecord {
                        t: r.timestamp,
                        frame: frame.clone(),
                    });
                }
            }
        }
    }

    /// `(batches, readings)` ingest counters.
    pub fn ingest_stats(&self) -> (u64, u64) {
        (self.batches, self.readings)
    }

    /// The controller's time-series store.
    pub fn tsdb(&self) -> &TsDb {
        &self.tsdb
    }

    /// Received frames sorted by timestamp.
    pub fn frames_sorted(&self) -> Vec<FrameRecord> {
        let mut out = self.frames.clone();
        out.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite timestamps"));
        out
    }

    /// Number of raw IMU observations buffered.
    pub fn imu_observation_count(&self) -> usize {
        self.imu_observations.len()
    }

    /// Produces the aligned, smoothed IMU stream over the observation span
    /// (paper §3.2: interpolation to consistent intervals + sliding moving
    /// average).
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::NoData`] if no IMU observations were
    /// ingested.
    pub fn aligned_imu(&self) -> Result<Vec<AlignedImuPoint>> {
        if self.imu_observations.is_empty() {
            return Err(CollectError::NoData("no imu observations".into()));
        }
        let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
        for (t, _) in &self.imu_observations {
            t0 = t0.min(*t);
            t1 = t1.max(*t);
        }
        let grid = GridSpec {
            start: t0,
            end: t1,
            hz: self.config.grid_hz,
        };
        let interp = interpolate_grid(&self.imu_observations, &grid);
        let smoothed = moving_average(&interp, self.config.smoothing_window);
        Ok(grid
            .points()
            .into_iter()
            .zip(smoothed)
            .map(|(t, features)| AlignedImuPoint { t, features })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::StampedReading;
    use darnet_sim::ImuSample;

    fn imu_batch(agent: u32, seq: u32, stamps: &[f64]) -> Batch {
        Batch {
            agent_id: agent,
            seq,
            readings: stamps
                .iter()
                .map(|&t| StampedReading {
                    timestamp: t,
                    reading: SensorReading::Imu(ImuSample {
                        accel: [t as f32, 0.0, 9.8],
                        gyro: [0.0; 3],
                        gravity: [0.0, 0.0, 9.8],
                        rotation: [0.0; 3],
                    }),
                })
                .collect(),
        }
    }

    #[test]
    fn ingest_counts_and_tsdb_mirroring() {
        let mut c = Controller::new(ControllerConfig::default());
        c.ingest(&imu_batch(0, 0, &[0.0, 0.025, 0.05]));
        assert_eq!(c.ingest_stats(), (1, 3));
        assert_eq!(c.imu_observation_count(), 3);
        assert_eq!(c.tsdb().len("imu.0"), 3);
    }

    #[test]
    fn aligned_imu_interpolates_to_grid() {
        let mut c = Controller::new(ControllerConfig {
            grid_hz: 4.0,
            smoothing_window: 1,
            sync_period: 5.0,
        });
        // accel.x = t, sampled at 40 Hz over 1 second.
        let stamps: Vec<f64> = (0..=40).map(|i| i as f64 * 0.025).collect();
        c.ingest(&imu_batch(0, 0, &stamps));
        let aligned = c.aligned_imu().unwrap();
        assert_eq!(aligned.len(), 5); // 0, 0.25, 0.5, 0.75, 1.0
        for p in &aligned {
            assert!((p.features[0] as f64 - p.t).abs() < 1e-3, "t={} f={}", p.t, p.features[0]);
        }
    }

    #[test]
    fn out_of_order_batches_align_identically() {
        let make = |order: &[&[f64]]| {
            let mut c = Controller::new(ControllerConfig::default());
            for (i, stamps) in order.iter().enumerate() {
                c.ingest(&imu_batch(0, i as u32, stamps));
            }
            c.aligned_imu().unwrap()
        };
        let in_order = make(&[&[0.0, 0.1, 0.2], &[0.3, 0.4, 0.5]]);
        let reordered = make(&[&[0.3, 0.4, 0.5], &[0.0, 0.1, 0.2]]);
        assert_eq!(in_order, reordered);
    }

    #[test]
    fn empty_controller_errors_on_alignment() {
        let c = Controller::new(ControllerConfig::default());
        assert!(matches!(c.aligned_imu(), Err(CollectError::NoData(_))));
    }

    #[test]
    fn frames_are_sorted_by_timestamp() {
        let mut c = Controller::new(ControllerConfig::default());
        let frame = darnet_sim::Frame::new(2, 2);
        for &t in &[0.5, 0.1, 0.3] {
            c.ingest(&Batch {
                agent_id: 1,
                seq: 0,
                readings: vec![StampedReading {
                    timestamp: t,
                    reading: SensorReading::Frame(frame.clone()),
                }],
            });
        }
        let frames = c.frames_sorted();
        let times: Vec<f64> = frames.iter().map(|f| f.t).collect();
        assert_eq!(times, vec![0.1, 0.3, 0.5]);
        assert_eq!(c.tsdb().len("camera.mean_intensity"), 3);
    }

    #[test]
    fn smoothing_window_is_applied() {
        let mut config = ControllerConfig::default();
        config.smoothing_window = 4;
        let mut c = Controller::new(config);
        let stamps: Vec<f64> = (0..=40).map(|i| i as f64 * 0.025).collect();
        c.ingest(&imu_batch(0, 0, &stamps));
        let smooth = c.aligned_imu().unwrap();
        // With accel.x = t linear, the trailing average lags below t.
        let last = smooth.last().unwrap();
        assert!((last.features[0] as f64) < last.t);
    }
}
