//! The centralized controller: ingests agent batches, re-orders by
//! timestamp, interpolates the IMU stream onto a uniform grid, smooths it,
//! and stores everything in the time-series database (paper §3.2, §4.1).
//!
//! Ingestion is duplicate- and reorder-tolerant: batches carry per-agent
//! sequence numbers, a batch seen twice (retransmission racing its ack) is
//! acked again but not re-ingested, and the set of sequence numbers seen
//! per agent yields gap accounting — how many batches a stream has lost —
//! which feeds the per-stream health report consumed by the analytics
//! engine's degradation logic.

use std::collections::{BTreeMap, BTreeSet};

use darnet_sim::Frame;
use serde::{Deserialize, Serialize};

use crate::align::{interpolate_grid, moving_average, GridSpec};
use crate::error::CollectError;
use crate::sensor::SensorReading;
use crate::stream::StreamId;
use crate::tsdb::TsDb;
use crate::wire::{Ack, Batch};
use crate::Result;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Uniform grid frequency the IMU stream is aligned to (paper: 4 Hz).
    pub grid_hz: f64,
    /// Sliding moving-average window in grid samples.
    pub smoothing_window: usize,
    /// Clock re-synchronization period, seconds (paper: 5 s).
    pub sync_period: f64,
    /// Ingest admission control (off by default — the pre-overload
    /// behaviour admits everything).
    pub admission: AdmissionConfig,
    /// Key TSDB series per agent (`imu.<agent>.<ch>` instead of the
    /// session-scoped `imu.<ch>`). A single driver session shares series
    /// across its two agents, but at fleet scale a shared series turns
    /// every insert into an O(points) binary insertion among interleaved
    /// agent timestamps; per-agent keys make each series append-only
    /// because one agent's stream is timestamp-monotone (DESIGN.md §14).
    pub per_agent_series: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            grid_hz: 4.0,
            smoothing_window: 3,
            sync_period: 5.0,
            admission: AdmissionConfig::default(),
            per_agent_series: false,
        }
    }
}

/// Token-bucket admission control over the controller's ingest queue.
///
/// Each offered batch costs its readings' processing weight (an IMU
/// reading costs 1, a camera frame [`AdmissionConfig::FRAME_COST`] — the
/// heavy payloads). The bucket drains at `drain_per_sec` cost units;
/// when it runs low, *low-priority* batches (any batch carrying frames)
/// are shed first: they must leave `low_priority_reserve` tokens behind,
/// a reserve only IMU batches may dip into. A shed batch is **not**
/// acked, so the agent's backoff retransmission retries it after the
/// burst — shedding under transient overload is deferral, not loss.
/// Persistent shedding surfaces in [`StreamHealth::shed`] and degrades
/// the modality via the health policy (IMU-only fallback).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Whether admission control runs at all.
    pub enabled: bool,
    /// Token-bucket capacity, in cost units.
    pub capacity: f64,
    /// Bucket refill rate, cost units per second of arrival time.
    pub drain_per_sec: f64,
    /// Tokens a low-priority (frame-bearing) batch must leave in the
    /// bucket; the reserve keeps the light, latency-critical IMU stream
    /// flowing through an overload burst.
    pub low_priority_reserve: f64,
}

impl AdmissionConfig {
    /// Admission cost of one camera frame relative to one IMU reading.
    pub const FRAME_COST: f64 = 16.0;
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            capacity: 512.0,
            drain_per_sec: 1024.0,
            low_priority_reserve: 128.0,
        }
    }
}

/// Admission cost of one batch, in IMU-reading-equivalent units.
fn batch_cost(batch: &Batch) -> f64 {
    batch
        .readings
        .iter()
        .map(|r| match r.reading {
            SensorReading::Imu(_) => 1.0,
            SensorReading::Frame(_) => AdmissionConfig::FRAME_COST,
        })
        .sum()
}

/// Whether a batch may dip into the low-priority reserve (IMU-only
/// batches are high priority; anything carrying frames is shed first).
fn is_high_priority(batch: &Batch) -> bool {
    !batch
        .readings
        .iter()
        .any(|r| matches!(r.reading, SensorReading::Frame(_)))
}

/// One aligned, smoothed IMU grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignedImuPoint {
    /// Grid timestamp, seconds (controller time base).
    pub t: f64,
    /// The 12 smoothed IMU features.
    pub features: Vec<f32>,
}

/// One received camera frame with its (sync-corrected agent) timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Frame timestamp, seconds.
    pub t: f64,
    /// The frame as received over the wire.
    pub frame: Frame,
}

/// Result of ingesting one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// First delivery of this `(agent, seq)`: readings were ingested.
    Accepted,
    /// Already seen: readings were discarded (the ack should still be
    /// re-sent, since a duplicate usually means the first ack was lost).
    Duplicate,
    /// Admission control refused the batch under overload. It was
    /// neither ingested nor logged and must **not** be acked — the
    /// agent's retransmission schedule re-offers it after the burst.
    Shed,
}

/// Liveness/completeness report for one agent's stream, as observed by the
/// controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamHealth {
    /// The agent this stream belongs to.
    pub agent_id: u32,
    /// Distinct batches accepted.
    pub delivered: u64,
    /// Duplicate deliveries discarded.
    pub duplicates: u64,
    /// Highest sequence number seen so far.
    pub highest_seq: u32,
    /// Sequence numbers at or below `highest_seq` never delivered — the
    /// stream's accounted gaps.
    pub gaps: u64,
    /// Arrival time of the most recent accepted batch (controller clock).
    pub last_arrival: f64,
    /// Batch deliveries refused by admission control (overload shedding).
    pub shed: u64,
}

impl StreamHealth {
    /// The logical stream this health report describes, under the session
    /// agent→stream convention.
    pub fn stream_id(&self) -> StreamId {
        StreamId::from_agent(self.agent_id)
    }

    /// Fraction of the sequence space `[0, highest_seq]` that is missing.
    pub fn gap_ratio(&self) -> f64 {
        let expected = self.highest_seq as f64 + 1.0;
        self.gaps as f64 / expected
    }

    /// Fraction of offered deliveries (accepted + shed) that admission
    /// control refused — sustained shedding is the overload signal the
    /// health policy degrades a modality on.
    pub fn shed_ratio(&self) -> f64 {
        let offered = self.delivered + self.shed;
        if offered == 0 {
            return 0.0;
        }
        self.shed as f64 / offered as f64
    }

    /// Seconds since the last accepted batch, at observation time `t`.
    pub fn staleness(&self, t: f64) -> f64 {
        (t - self.last_arrival).max(0.0)
    }
}

#[derive(Debug, Default)]
struct StreamState {
    seen: BTreeSet<u32>,
    delivered: u64,
    duplicates: u64,
    last_arrival: f64,
    shed: u64,
}

/// Token-bucket state for admission control.
#[derive(Debug, Clone, Copy)]
struct AdmissionState {
    tokens: f64,
    last_refill: f64,
}

/// The centralized controller for one collection session.
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    imu_observations: Vec<(f64, Vec<f32>)>,
    frames: Vec<FrameRecord>,
    // Agent id of frames[i], in acceptance order. Kept parallel to
    // `frames` (both are only pushed in the frame-ingest arm) so a
    // multi-camera session can separate its views per [`StreamId`]
    // without touching the frame wire format or the state digest; WAL
    // replay re-ingests batches, so recovery rebuilds it consistently.
    frame_agents: Vec<u32>,
    tsdb: TsDb,
    streams: BTreeMap<u32, StreamState>,
    batches: u64,
    readings: u64,
    admission: AdmissionState,
}

impl Controller {
    /// Creates a controller.
    pub fn new(config: ControllerConfig) -> Self {
        Controller {
            config,
            imu_observations: Vec::new(),
            frames: Vec::new(),
            frame_agents: Vec::new(),
            tsdb: TsDb::new(),
            streams: BTreeMap::new(),
            batches: 0,
            readings: 0,
            admission: AdmissionState {
                tokens: config.admission.capacity,
                last_refill: 0.0,
            },
        }
    }

    /// Controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Ingests one agent batch with an unknown arrival time (recorded as
    /// the batch's last reading timestamp). See
    /// [`Controller::ingest_at`].
    pub fn ingest(&mut self, batch: &Batch) -> IngestOutcome {
        let arrival = batch
            .readings
            .last()
            .map(|r| r.timestamp)
            .unwrap_or_default();
        self.ingest_at(arrival, batch)
    }

    /// Ingests one agent batch arriving at controller time `arrival`.
    ///
    /// Duplicate `(agent, seq)` deliveries — retransmissions whose
    /// original arrived after all, or link-level duplication — are
    /// detected and discarded; out-of-order delivery is harmless because
    /// readings are buffered by timestamp, not arrival. Accepted readings
    /// are mirrored into the TSDB.
    pub fn ingest_at(&mut self, arrival: f64, batch: &Batch) -> IngestOutcome {
        let stream = self.streams.entry(batch.agent_id).or_default();
        if !stream.seen.insert(batch.seq) {
            stream.duplicates += 1;
            return IngestOutcome::Duplicate;
        }
        self.ingest_accepted(arrival, batch);
        IngestOutcome::Accepted
    }

    /// Offers one batch arriving at controller time `arrival`, running
    /// the full resilient ingest path: duplicate detection, admission
    /// control, then — *before* any state mutation that would be acked —
    /// a durable WAL append when `wal` is provided. The caller acks
    /// `Accepted` and `Duplicate` outcomes only; a [`IngestOutcome::Shed`]
    /// batch is left to the agent's retransmission schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`CollectError::Wal`] when the durable append fails;
    /// the batch is then neither ingested nor acked.
    pub fn offer_at(
        &mut self,
        arrival: f64,
        batch: &Batch,
        wal: Option<&mut crate::wal::Wal>,
    ) -> Result<IngestOutcome> {
        // Admission first, so duplicate storms exert genuine pressure on
        // the bucket: a retransmission flood costs tokens whether or not
        // its batches turn out to be duplicates.
        if self.config.admission.enabled && !self.admit(arrival, batch) {
            self.streams.entry(batch.agent_id).or_default().shed += 1;
            return Ok(IngestOutcome::Shed);
        }
        if self
            .streams
            .get(&batch.agent_id)
            .is_some_and(|s| s.seen.contains(&batch.seq))
        {
            self.streams.entry(batch.agent_id).or_default().duplicates += 1;
            return Ok(IngestOutcome::Duplicate);
        }
        if let Some(wal) = wal {
            wal.append(arrival, batch)?;
        }
        self.streams
            .entry(batch.agent_id)
            .or_default()
            .seen
            .insert(batch.seq);
        self.ingest_accepted(arrival, batch);
        Ok(IngestOutcome::Accepted)
    }

    /// Token-bucket admission decision for one batch at arrival time `t`.
    fn admit(&mut self, t: f64, batch: &Batch) -> bool {
        let cfg = self.config.admission;
        let elapsed = (t - self.admission.last_refill).max(0.0);
        self.admission.tokens = cfg
            .capacity
            .min(self.admission.tokens + elapsed * cfg.drain_per_sec);
        self.admission.last_refill = self.admission.last_refill.max(t);
        let cost = batch_cost(batch);
        let floor = if is_high_priority(batch) {
            0.0
        } else {
            cfg.low_priority_reserve
        };
        if self.admission.tokens - cost < floor {
            return false;
        }
        self.admission.tokens -= cost;
        true
    }

    /// The accepted-batch ingest body shared by [`Controller::ingest_at`]
    /// and [`Controller::offer_at`]; the caller has already recorded
    /// `batch.seq` in the stream's seen-set.
    fn ingest_accepted(&mut self, arrival: f64, batch: &Batch) {
        let stream = self.streams.entry(batch.agent_id).or_default();
        stream.delivered += 1;
        stream.last_arrival = stream.last_arrival.max(arrival);
        self.batches += 1;
        let per_agent = self.config.per_agent_series;
        for r in &batch.readings {
            self.readings += 1;
            match &r.reading {
                SensorReading::Imu(sample) => {
                    let feats = sample.to_features().to_vec();
                    if per_agent {
                        self.tsdb.insert_vector(
                            &format!("imu.{}", batch.agent_id),
                            r.timestamp,
                            &feats,
                        );
                    } else {
                        self.tsdb.insert_vector("imu", r.timestamp, &feats);
                    }
                    self.imu_observations.push((r.timestamp, feats));
                }
                SensorReading::Frame(frame) => {
                    if per_agent {
                        self.tsdb.insert(
                            &format!("camera.mean_intensity.{}", batch.agent_id),
                            r.timestamp,
                            frame.mean(),
                        );
                    } else {
                        self.tsdb
                            .insert("camera.mean_intensity", r.timestamp, frame.mean());
                    }
                    self.frames.push(FrameRecord {
                        t: r.timestamp,
                        frame: frame.clone(),
                    });
                    self.frame_agents.push(batch.agent_id);
                }
            }
        }
    }

    /// The ack to return to the sender for a just-ingested batch. Issued
    /// for duplicates too: a duplicate delivery usually means the original
    /// ack was lost, and re-acking is what lets the agent retire the
    /// batch.
    pub fn ack_for(batch: &Batch) -> Ack {
        Ack {
            agent_id: batch.agent_id,
            seq: batch.seq,
        }
    }

    /// Health report for one agent's stream, if any batch from it has been
    /// seen.
    pub fn stream_health(&self, agent_id: u32) -> Option<StreamHealth> {
        let s = self.streams.get(&agent_id)?;
        let highest = *s.seen.iter().next_back()?;
        StreamHealth {
            agent_id,
            delivered: s.delivered,
            duplicates: s.duplicates,
            highest_seq: highest,
            gaps: (highest as u64 + 1) - s.seen.len() as u64,
            last_arrival: s.last_arrival,
            shed: s.shed,
        }
        .into()
    }

    /// Health report addressed by [`StreamId`] instead of raw agent id —
    /// the stream-generic entry point the core modality registry uses, so
    /// N-stream health assessment never hard-codes which agent carries
    /// which modality.
    pub fn stream_health_by_id(&self, stream: StreamId) -> Option<StreamHealth> {
        self.stream_health(stream.agent_id())
    }

    /// Whether `(agent_id, seq)` has been accepted — the durability
    /// invariant's probe: every batch whose ack an agent received must
    /// satisfy `has_seen` on the (possibly crash-recovered) controller.
    pub fn has_seen(&self, agent_id: u32, seq: u32) -> bool {
        self.streams
            .get(&agent_id)
            .is_some_and(|s| s.seen.contains(&seq))
    }

    /// Per-stream `(agent_id, duplicates, shed)` counters — the state a
    /// WAL snapshot must carry explicitly because it is *not* derivable
    /// from replaying accepted batches (duplicates and shed deliveries
    /// never enter the log).
    pub fn stream_meta(&self) -> Vec<(u32, u64, u64)> {
        self.streams
            .iter()
            .map(|(&id, s)| (id, s.duplicates, s.shed))
            .collect()
    }

    /// Restores snapshot-carried stream counters during WAL replay (the
    /// inverse of [`Controller::stream_meta`]). Counters are added, not
    /// assigned, so replaying a snapshot into a fresh controller and
    /// accumulating later segment activity both work.
    pub fn restore_stream_meta(&mut self, agent_id: u32, duplicates: u64, shed: u64) {
        let stream = self.streams.entry(agent_id).or_default();
        stream.duplicates += duplicates;
        stream.shed += shed;
    }

    /// Health reports for every stream the controller has seen.
    pub fn stream_healths(&self) -> Vec<StreamHealth> {
        self.streams
            .keys()
            .filter_map(|&id| self.stream_health(id))
            .collect()
    }

    /// `(batches, readings)` ingest counters (accepted only).
    pub fn ingest_stats(&self) -> (u64, u64) {
        (self.batches, self.readings)
    }

    /// A bitwise-exact digest of the controller's durable state: stream
    /// seen-sets and counters, ingest counters, raw IMU observations and
    /// frames in acceptance order, and the TSDB fingerprint. Recovery is
    /// correct iff the recovered controller digests identically to the
    /// controller that wrote the log (modulo explicitly-shed state —
    /// see DESIGN.md §13).
    // darlint: pure-root
    pub fn state_digest(&self) -> u64 {
        use crate::tsdb::{fnv1a, fnv1a_init};
        let mut h = fnv1a_init();
        for (&id, s) in &self.streams {
            fnv1a(&mut h, &id.to_le_bytes());
            fnv1a(&mut h, &s.delivered.to_le_bytes());
            fnv1a(&mut h, &s.duplicates.to_le_bytes());
            fnv1a(&mut h, &s.shed.to_le_bytes());
            fnv1a(&mut h, &s.last_arrival.to_bits().to_le_bytes());
            fnv1a(&mut h, &(s.seen.len() as u64).to_le_bytes());
            for &seq in &s.seen {
                fnv1a(&mut h, &seq.to_le_bytes());
            }
        }
        fnv1a(&mut h, &self.batches.to_le_bytes());
        fnv1a(&mut h, &self.readings.to_le_bytes());
        for (t, feats) in &self.imu_observations {
            fnv1a(&mut h, &t.to_bits().to_le_bytes());
            for v in feats {
                fnv1a(&mut h, &v.to_bits().to_le_bytes());
            }
        }
        for fr in &self.frames {
            fnv1a(&mut h, &fr.t.to_bits().to_le_bytes());
            for &p in fr.frame.pixels() {
                fnv1a(&mut h, &p.to_bits().to_le_bytes());
            }
        }
        fnv1a(&mut h, &self.tsdb.fingerprint().to_le_bytes());
        h
    }

    /// Approximate resident bytes of the controller's retained state:
    /// per-stream seen-sets, raw IMU observations, frame pixels, and the
    /// TSDB points. Logical payload bytes only (container overhead is
    /// ignored), so the figure is deterministic for a given traffic
    /// history — the basis of the gated bytes-per-agent fleet metric.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for s in self.streams.values() {
            // Fixed counters (delivered/duplicates/shed/last_arrival)
            // plus 4 bytes per recorded sequence number.
            total += 32 + s.seen.len() as u64 * 4;
        }
        for (_, feats) in &self.imu_observations {
            total += 8 + feats.len() as u64 * 4;
        }
        for fr in &self.frames {
            total += 8 + fr.frame.pixels().len() as u64 * 4;
        }
        total + self.tsdb.approx_bytes()
    }

    /// The controller's time-series store.
    pub fn tsdb(&self) -> &TsDb {
        &self.tsdb
    }

    /// Received frames sorted by timestamp.
    pub fn frames_sorted(&self) -> Vec<FrameRecord> {
        let mut out = self.frames.clone();
        out.sort_by(|a, b| a.t.total_cmp(&b.t));
        out
    }

    /// Received frames of one camera stream, sorted by timestamp. A
    /// multi-camera session ingests every view into the same acceptance
    /// log; this is the stream-generic read side that keeps each view
    /// separable for the per-modality models.
    pub fn frames_sorted_for(&self, stream: StreamId) -> Vec<FrameRecord> {
        let agent = stream.agent_id();
        let mut out: Vec<FrameRecord> = self
            .frames
            .iter()
            .zip(&self.frame_agents)
            .filter(|(_, &a)| a == agent)
            .map(|(fr, _)| fr.clone())
            .collect();
        out.sort_by(|a, b| a.t.total_cmp(&b.t));
        out
    }

    /// Number of raw IMU observations buffered.
    pub fn imu_observation_count(&self) -> usize {
        self.imu_observations.len()
    }

    /// Produces the aligned, smoothed IMU stream over the observation span
    /// (paper §3.2: interpolation to consistent intervals + sliding moving
    /// average).
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::NoData`] if no IMU observations were
    /// ingested.
    pub fn aligned_imu(&self) -> Result<Vec<AlignedImuPoint>> {
        if self.imu_observations.is_empty() {
            return Err(CollectError::NoData("no imu observations".into()));
        }
        let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
        for (t, _) in &self.imu_observations {
            t0 = t0.min(*t);
            t1 = t1.max(*t);
        }
        let grid = GridSpec {
            start: t0,
            end: t1,
            hz: self.config.grid_hz,
        };
        let interp = interpolate_grid(&self.imu_observations, &grid);
        let smoothed = moving_average(&interp, self.config.smoothing_window);
        Ok(grid
            .points()
            .into_iter()
            .zip(smoothed)
            .map(|(t, features)| AlignedImuPoint { t, features })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::StampedReading;
    use darnet_sim::ImuSample;

    fn imu_batch(agent: u32, seq: u32, stamps: &[f64]) -> Batch {
        Batch {
            agent_id: agent,
            seq,
            readings: stamps
                .iter()
                .map(|&t| StampedReading {
                    timestamp: t,
                    reading: SensorReading::Imu(ImuSample {
                        accel: [t as f32, 0.0, 9.8],
                        gyro: [0.0; 3],
                        gravity: [0.0, 0.0, 9.8],
                        rotation: [0.0; 3],
                    }),
                })
                .collect(),
        }
    }

    fn multi_frame_batch(agent: u32, seq: u32, stamps: &[f64]) -> Batch {
        Batch {
            agent_id: agent,
            seq,
            readings: stamps
                .iter()
                .map(|&t| StampedReading {
                    timestamp: t,
                    reading: SensorReading::Frame(darnet_sim::Frame::from_pixels(
                        2,
                        2,
                        vec![t as f32, agent as f32, 0.0, 1.0],
                    )),
                })
                .collect(),
        }
    }

    #[test]
    fn multi_camera_frames_separate_by_stream() {
        let mut c = Controller::new(ControllerConfig::default());
        // Interleaved deliveries from two camera agents.
        c.ingest_at(0.5, &multi_frame_batch(1, 0, &[0.25, 0.5]));
        c.ingest_at(0.6, &multi_frame_batch(2, 0, &[0.3, 0.55]));
        c.ingest_at(1.0, &multi_frame_batch(1, 1, &[0.75]));
        let front = c.frames_sorted_for(crate::StreamId::CAMERA_FRONT);
        let side = c.frames_sorted_for(crate::StreamId::CAMERA_SIDE);
        assert_eq!(front.len(), 3);
        assert_eq!(side.len(), 2);
        assert!(front.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(side.windows(2).all(|w| w[0].t <= w[1].t));
        // Per-agent tone encodes the agent id in pixel 1.
        assert!(front.iter().all(|fr| fr.frame.pixels()[1] == 1.0));
        assert!(side.iter().all(|fr| fr.frame.pixels()[1] == 2.0));
        // The merged view is the union of the per-stream views.
        assert_eq!(c.frames_sorted().len(), 5);
        // An unknown stream has no frames.
        assert!(c.frames_sorted_for(crate::StreamId(7)).is_empty());
    }

    #[test]
    fn ingest_counts_and_tsdb_mirroring() {
        let mut c = Controller::new(ControllerConfig::default());
        c.ingest(&imu_batch(0, 0, &[0.0, 0.025, 0.05]));
        assert_eq!(c.ingest_stats(), (1, 3));
        assert_eq!(c.imu_observation_count(), 3);
        assert_eq!(c.tsdb().len("imu.0"), 3);
    }

    #[test]
    fn duplicate_batches_are_discarded_but_reacked() {
        let mut c = Controller::new(ControllerConfig::default());
        let b = imu_batch(0, 0, &[0.0, 0.025]);
        assert_eq!(c.ingest_at(0.5, &b), IngestOutcome::Accepted);
        assert_eq!(c.ingest_at(0.6, &b), IngestOutcome::Duplicate);
        assert_eq!(c.ingest_stats(), (1, 2));
        assert_eq!(c.imu_observation_count(), 2);
        let ack = Controller::ack_for(&b);
        assert_eq!((ack.agent_id, ack.seq), (0, 0));
        let h = c.stream_health(0).unwrap();
        assert_eq!(h.delivered, 1);
        assert_eq!(h.duplicates, 1);
        assert_eq!(h.gaps, 0);
    }

    #[test]
    fn gap_accounting_tracks_missing_sequences() {
        let mut c = Controller::new(ControllerConfig::default());
        // Seqs 0, 2, 5 arrive (out of order, too): 1, 3, 4 are gaps.
        for &(seq, at) in &[(5u32, 1.4), (0, 0.5), (2, 0.9)] {
            c.ingest_at(at, &imu_batch(3, seq, &[at]));
        }
        let h = c.stream_health(3).unwrap();
        assert_eq!(h.highest_seq, 5);
        assert_eq!(h.delivered, 3);
        assert_eq!(h.gaps, 3);
        assert!((h.gap_ratio() - 0.5).abs() < 1e-12);
        assert!((h.last_arrival - 1.4).abs() < 1e-12);
        assert!((h.staleness(2.0) - 0.6).abs() < 1e-12);
        // A late gap-filling retransmission closes the accounting.
        c.ingest_at(2.1, &imu_batch(3, 1, &[0.7]));
        assert_eq!(c.stream_health(3).unwrap().gaps, 2);
        assert!(c.stream_health(99).is_none());
        assert_eq!(c.stream_healths().len(), 1);
    }

    #[test]
    fn aligned_imu_interpolates_to_grid() {
        let mut c = Controller::new(ControllerConfig {
            grid_hz: 4.0,
            smoothing_window: 1,
            ..ControllerConfig::default()
        });
        // accel.x = t, sampled at 40 Hz over 1 second.
        let stamps: Vec<f64> = (0..=40).map(|i| i as f64 * 0.025).collect();
        c.ingest(&imu_batch(0, 0, &stamps));
        let aligned = c.aligned_imu().unwrap();
        assert_eq!(aligned.len(), 5); // 0, 0.25, 0.5, 0.75, 1.0
        for p in &aligned {
            assert!(
                (p.features[0] as f64 - p.t).abs() < 1e-3,
                "t={} f={}",
                p.t,
                p.features[0]
            );
        }
    }

    #[test]
    fn out_of_order_batches_align_identically() {
        let make = |order: &[(u32, &[f64])]| {
            let mut c = Controller::new(ControllerConfig::default());
            for &(seq, stamps) in order {
                c.ingest(&imu_batch(0, seq, stamps));
            }
            c.aligned_imu().unwrap()
        };
        let in_order = make(&[(0, &[0.0, 0.1, 0.2]), (1, &[0.3, 0.4, 0.5])]);
        let reordered = make(&[(1, &[0.3, 0.4, 0.5]), (0, &[0.0, 0.1, 0.2])]);
        assert_eq!(in_order, reordered);
    }

    #[test]
    fn empty_controller_errors_on_alignment() {
        let c = Controller::new(ControllerConfig::default());
        assert!(matches!(c.aligned_imu(), Err(CollectError::NoData(_))));
    }

    #[test]
    fn frames_are_sorted_by_timestamp() {
        let mut c = Controller::new(ControllerConfig::default());
        let frame = darnet_sim::Frame::new(2, 2);
        for (seq, &t) in [0.5, 0.1, 0.3].iter().enumerate() {
            c.ingest(&Batch {
                agent_id: 1,
                seq: seq as u32,
                readings: vec![StampedReading {
                    timestamp: t,
                    reading: SensorReading::Frame(frame.clone()),
                }],
            });
        }
        let frames = c.frames_sorted();
        let times: Vec<f64> = frames.iter().map(|f| f.t).collect();
        assert_eq!(times, vec![0.1, 0.3, 0.5]);
        assert_eq!(c.tsdb().len("camera.mean_intensity"), 3);
    }

    fn frame_batch(agent: u32, seq: u32, t: f64) -> Batch {
        Batch {
            agent_id: agent,
            seq,
            readings: vec![StampedReading {
                timestamp: t,
                reading: SensorReading::Frame(darnet_sim::Frame::new(4, 4)),
            }],
        }
    }

    fn admission_config() -> ControllerConfig {
        ControllerConfig {
            admission: AdmissionConfig {
                enabled: true,
                capacity: 60.0,
                drain_per_sec: 10.0,
                low_priority_reserve: 20.0,
            },
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn admission_sheds_low_priority_first_and_recovers() {
        let mut c = Controller::new(admission_config());
        // A frame costs 16: two frame batches drain the bucket from 60
        // to 28 tokens; a third would leave 12, under the 20-token
        // reserve — it is shed.
        for seq in 0..2 {
            assert_eq!(
                c.offer_at(0.0, &frame_batch(1, seq, 0.0), None).unwrap(),
                IngestOutcome::Accepted
            );
        }
        assert_eq!(
            c.offer_at(0.0, &frame_batch(1, 2, 0.0), None).unwrap(),
            IngestOutcome::Shed
        );
        // The light IMU stream may dip into the reserve and keeps flowing.
        assert_eq!(
            c.offer_at(0.0, &imu_batch(0, 0, &[0.0, 0.01]), None)
                .unwrap(),
            IngestOutcome::Accepted
        );
        // Shed is deferral: once the bucket refills, the same batch is
        // admitted — nothing was recorded as seen.
        assert!(!c.has_seen(1, 2));
        assert_eq!(
            c.offer_at(5.0, &frame_batch(1, 2, 5.0), None).unwrap(),
            IngestOutcome::Accepted
        );
        let h = c.stream_health(1).unwrap();
        assert_eq!(h.shed, 1);
        assert_eq!(h.delivered, 3);
        assert!((h.shed_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn offer_at_detects_duplicates_and_disabled_admission_admits_all() {
        let mut c = Controller::new(ControllerConfig::default());
        let b = imu_batch(0, 0, &[0.0]);
        assert_eq!(c.offer_at(0.1, &b, None).unwrap(), IngestOutcome::Accepted);
        assert_eq!(c.offer_at(0.2, &b, None).unwrap(), IngestOutcome::Duplicate);
        assert!(c.has_seen(0, 0));
        assert!(!c.has_seen(0, 1));
        // Without admission even a huge burst is admitted.
        for seq in 1..200 {
            assert_eq!(
                c.offer_at(0.2, &frame_batch(0, seq, 0.2), None).unwrap(),
                IngestOutcome::Accepted
            );
        }
    }

    #[test]
    fn stream_meta_roundtrips_through_restore() {
        let mut c = Controller::new(admission_config());
        let b = imu_batch(4, 0, &[0.0]);
        c.offer_at(0.0, &b, None).unwrap();
        c.offer_at(0.1, &b, None).unwrap(); // duplicate
        for seq in 0..3 {
            c.offer_at(0.0, &frame_batch(5, seq, 0.0), None).unwrap();
        }
        let meta = c.stream_meta();
        let mut fresh = Controller::new(admission_config());
        for (agent, dup, shed) in meta {
            fresh.restore_stream_meta(agent, dup, shed);
        }
        assert_eq!(
            fresh.stream_meta(),
            c.stream_meta(),
            "meta must restore verbatim"
        );
    }

    #[test]
    fn state_digest_tracks_durable_state() {
        let mut a = Controller::new(ControllerConfig::default());
        let mut b = Controller::new(ControllerConfig::default());
        assert_eq!(a.state_digest(), b.state_digest());
        a.ingest_at(0.5, &imu_batch(0, 0, &[0.0, 0.025]));
        assert_ne!(a.state_digest(), b.state_digest());
        b.ingest_at(0.5, &imu_batch(0, 0, &[0.0, 0.025]));
        assert_eq!(a.state_digest(), b.state_digest());
        // Duplicates change the counters, hence the digest.
        a.ingest_at(0.6, &imu_batch(0, 0, &[0.0, 0.025]));
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn per_agent_series_keys_by_agent() {
        let mut c = Controller::new(ControllerConfig {
            per_agent_series: true,
            ..ControllerConfig::default()
        });
        c.ingest(&imu_batch(7, 0, &[0.0]));
        c.ingest(&frame_batch(9, 0, 0.5));
        assert_eq!(c.tsdb().len("imu.7.0"), 1);
        assert_eq!(c.tsdb().len("imu.0"), 0);
        assert_eq!(c.tsdb().len("camera.mean_intensity.9"), 1);
        assert_eq!(c.tsdb().len("camera.mean_intensity"), 0);
    }

    #[test]
    fn approx_bytes_grows_with_ingest() {
        let mut c = Controller::new(ControllerConfig::default());
        assert_eq!(c.approx_bytes(), 0);
        c.ingest(&imu_batch(0, 0, &[0.0]));
        let after_imu = c.approx_bytes();
        // One stream (32 + 4), one observation (8 + 48), 12 TSDB points.
        assert_eq!(after_imu, 36 + 56 + 144);
        c.ingest(&frame_batch(0, 1, 0.5));
        assert!(c.approx_bytes() > after_imu);
    }

    #[test]
    fn smoothing_window_is_applied() {
        let config = ControllerConfig {
            smoothing_window: 4,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(config);
        let stamps: Vec<f64> = (0..=40).map(|i| i as f64 * 0.025).collect();
        c.ingest(&imu_batch(0, 0, &stamps));
        let smooth = c.aligned_imu().unwrap();
        // With accel.x = t linear, the trailing average lags below t.
        let last = smooth.last().unwrap();
        assert!((last.features[0] as f64) < last.t);
    }
}
