//! Stream identity: the stable tag that keeps alignment, health, and
//! admission *stream-generic* instead of hard-coding "the camera" and
//! "the IMU".
//!
//! A [`StreamId`] names one logical sensor stream of a collection session
//! (front camera, IMU, side camera, ...). The wire format is untouched —
//! batches still carry `agent_id` — because a session maps agents onto
//! streams by a fixed convention ([`StreamId::from_agent`]): agent `i`
//! carries stream `i`. Everything above the wire (controller health
//! reports, the core modality registry, the analytics engine's
//! healthy-subset policy) speaks [`StreamId`], so registering a fourth
//! stream requires no changes to ingestion, health accounting, or
//! admission control.

use serde::{Deserialize, Serialize};

/// Identity of one logical sensor stream within a collection session.
///
/// Well-known streams get named constants; any further stream is just the
/// next integer. Ordering follows the numeric id, which also fixes the
/// parent order of the core ensemble's conditional-probability tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub u16);

impl StreamId {
    /// The phone IMU stream (agent 0 in every scripted session).
    pub const IMU: StreamId = StreamId(0);
    /// The dash-mounted front camera stream (agent 1).
    pub const CAMERA_FRONT: StreamId = StreamId(1);
    /// The passenger-side A-pillar camera stream (agent 2).
    pub const CAMERA_SIDE: StreamId = StreamId(2);

    /// The session convention: agent `i` carries stream `i`.
    pub fn from_agent(agent_id: u32) -> StreamId {
        StreamId(agent_id as u16)
    }

    /// The agent id carrying this stream under the session convention.
    pub fn agent_id(self) -> u32 {
        self.0 as u32
    }

    /// Zero-based index (usable as a registry slot).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Human-readable label.
    pub fn label(self) -> String {
        match self {
            StreamId::IMU => "imu".to_string(),
            StreamId::CAMERA_FRONT => "camera.front".to_string(),
            StreamId::CAMERA_SIDE => "camera.side".to_string(),
            StreamId(n) => format!("stream.{n}"),
        }
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_convention_roundtrips() {
        for agent in [0u32, 1, 2, 7] {
            let id = StreamId::from_agent(agent);
            assert_eq!(id.agent_id(), agent);
            assert_eq!(id.index(), agent as usize);
        }
        assert_eq!(StreamId::from_agent(0), StreamId::IMU);
        assert_eq!(StreamId::from_agent(1), StreamId::CAMERA_FRONT);
        assert_eq!(StreamId::from_agent(2), StreamId::CAMERA_SIDE);
    }

    #[test]
    fn labels_are_stable_and_ordered() {
        assert_eq!(StreamId::IMU.label(), "imu");
        assert_eq!(StreamId::CAMERA_FRONT.label(), "camera.front");
        assert_eq!(StreamId::CAMERA_SIDE.label(), "camera.side");
        assert_eq!(StreamId(9).label(), "stream.9");
        assert!(StreamId::IMU < StreamId::CAMERA_FRONT);
        assert!(StreamId::CAMERA_FRONT < StreamId::CAMERA_SIDE);
    }
}
