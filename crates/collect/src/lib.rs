//! # darnet-collect
//!
//! The DarNet *data collection framework* (paper §3–4.1): collection agents
//! embedded in IoT devices stream sensor tuples to a centralized controller
//! that synchronizes clocks, orders and interpolates multi-rate data,
//! smooths it, and stores it in a time-series database for the analytics
//! engine.
//!
//! The paper runs on two Android devices over Bluetooth/802.11; this
//! reproduction runs the *same algorithms* over a deterministic
//! discrete-event simulation ([`runtime`]) with drifting local clocks
//! ([`DriftClock`]) and a lossy/jittery/reordering network ([`Link`]) — plus
//! a threaded "live" mode ([`live`]) using real channels for the example
//! binaries.
//!
//! Key pieces:
//!
//! * [`DriftClock`] — an agent's local clock (offset + drift) and the
//!   master–slave sync protocol (§4.1: agent sets its clock to the
//!   controller's UTC plus the measured network delay, every 5 s).
//! * [`Link`] — latency/jitter/loss/reordering model.
//! * [`CollectionAgent`] — polls a [`Sensor`] every 25 ms, timestamps with
//!   its local clock, transmits batches.
//! * [`Controller`] — ingests batches (duplicate/reorder-tolerant, with
//!   per-stream gap accounting and [`StreamHealth`] reports), re-orders by
//!   timestamp, linearly interpolates onto a uniform grid, applies a
//!   sliding moving average, and writes to the [`TsDb`].
//! * Reliable transport — per-agent sequence numbers and [`Ack`]s on the
//!   wire, a bounded in-flight window with exponential-backoff
//!   retransmission ([`RetransmitConfig`]), and seeded fault injection on
//!   every [`Link`] ([`FaultConfig`]: Gilbert–Elliott bursts, blackouts,
//!   duplication).
//! * [`runtime::run_campaign`] — drives a full collection campaign over a
//!   [`darnet_sim`] schedule and returns per-driver aligned recordings.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

mod agent;
mod align;
mod clock;
mod controller;
mod decision;
mod error;
pub mod live;
pub mod loadgen;
mod network;
pub mod runtime;
mod sensor;
pub mod shard;
mod stream;
mod tsdb;
pub mod wal;
mod wire;

pub use agent::{
    AgentConfig, CollectionAgent, RetransmitConfig, SpillConfig, SpillStats, TransportStats,
};
pub use align::{interpolate_grid, moving_average, GridSpec};
pub use clock::{ClockConfig, DriftClock};
pub use controller::{
    AdmissionConfig, AlignedImuPoint, Controller, ControllerConfig, FrameRecord, IngestOutcome,
    StreamHealth,
};
pub use decision::{
    decide_processing, LinkObservation, PrivacyPreference, ProcessingSite, SiteCapabilities,
};
pub use error::CollectError;
pub use loadgen::{run_fleet, run_fleet_into, run_fleet_timed, FleetConfig, FleetReport};
pub use network::{FaultConfig, Link, LinkConfig, LinkStats};
pub use sensor::{
    CameraSensor, CameraView, CanonicalCameraSensor, CanonicalImuSensor, ImuSensor, Sensor,
    SensorReading,
};
pub use shard::{
    shard_of, BackpressureConfig, FleetAdmission, FleetPressure, OfferOutcome, ShardAck,
    ShardConfig, ShardPressure, ShardedController,
};
pub use stream::StreamId;
pub use tsdb::{canonical_fingerprint_merged, Aggregation, SeriesStats, TsDb};
pub use wal::{
    replay_into, DirStorage, MemStorage, RecoveryReport, Wal, WalConfig, WalStats, WalStorage,
};
pub use wire::compact::{decode_imu_batch, encode_imu_batch};
pub use wire::{decode_ack, decode_batch, encode_ack, encode_batch, Ack, Batch, StampedReading};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CollectError>;
