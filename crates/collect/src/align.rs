//! Data normalization: ordering, linear interpolation onto a uniform grid,
//! and sliding moving-average smoothing (paper §3.2 "Data Normalization").

use serde::{Deserialize, Serialize};

/// A uniform sampling grid `start, start + 1/hz, ...` up to `end`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// First grid point, seconds.
    pub start: f64,
    /// Last grid point (inclusive bound), seconds.
    pub end: f64,
    /// Grid frequency, Hz (the paper's IMU pipeline uses 4 Hz).
    pub hz: f64,
}

impl GridSpec {
    /// The grid timestamps.
    pub fn points(&self) -> Vec<f64> {
        if self.hz <= 0.0 || self.end < self.start {
            return Vec::new();
        }
        let step = 1.0 / self.hz;
        let n = ((self.end - self.start) / step).floor() as usize + 1;
        (0..n).map(|i| self.start + i as f64 * step).collect()
    }
}

/// Linearly interpolates irregular `(t, value)` observations onto `grid`.
///
/// * Observations are sorted internally — out-of-order network delivery is
///   tolerated (the controller "relies on the timestamp associated with
///   each tuple to determine the ordering").
/// * Grid points outside the observation span are clamped to the nearest
///   observation (no extrapolation).
/// * Multi-channel values are interpolated channel-wise.
///
/// Returns one vector per grid point; empty output if there are no
/// observations.
pub fn interpolate_grid(observations: &[(f64, Vec<f32>)], grid: &GridSpec) -> Vec<Vec<f32>> {
    if observations.is_empty() {
        return Vec::new();
    }
    let mut obs: Vec<&(f64, Vec<f32>)> = observations.iter().collect();
    obs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let channels = obs[0].1.len();
    let mut out = Vec::new();
    let mut hi = 0usize; // first observation with time >= g
    for g in grid.points() {
        while hi < obs.len() && obs[hi].0 < g {
            hi += 1;
        }
        let v = if hi == 0 {
            obs[0].1.clone()
        } else if hi == obs.len() {
            obs[obs.len() - 1].1.clone()
        } else {
            let (t0, v0) = (&obs[hi - 1].0, &obs[hi - 1].1);
            let (t1, v1) = (&obs[hi].0, &obs[hi].1);
            let w = if (t1 - t0).abs() < 1e-12 {
                0.0
            } else {
                ((g - t0) / (t1 - t0)) as f32
            };
            (0..channels)
                .map(|c| v0[c] * (1.0 - w) + v1[c] * w)
                .collect()
        };
        out.push(v);
    }
    out
}

/// Sliding moving average with a centered-causal window of `window`
/// samples (the current sample and the `window - 1` preceding ones). The
/// paper: *"the controller performs a smoothing operation on the data by
/// maintaining a sliding moving average"* to absorb commodity-sensor
/// aberrations.
///
/// `window == 0` or `1` returns the input unchanged.
pub fn moving_average(series: &[Vec<f32>], window: usize) -> Vec<Vec<f32>> {
    if window <= 1 || series.is_empty() {
        return series.to_vec();
    }
    let channels = series[0].len();
    let mut out = Vec::with_capacity(series.len());
    for i in 0..series.len() {
        let lo = i.saturating_sub(window - 1);
        let count = (i - lo + 1) as f32;
        let mut acc = vec![0.0f32; channels];
        for row in &series[lo..=i] {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= count;
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_points_are_uniform() {
        let grid = GridSpec {
            start: 0.0,
            end: 1.0,
            hz: 4.0,
        };
        let pts = grid.points();
        assert_eq!(pts.len(), 5);
        assert!((pts[1] - 0.25).abs() < 1e-12);
        assert!((pts[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_grid_is_empty() {
        assert!(GridSpec {
            start: 1.0,
            end: 0.0,
            hz: 4.0
        }
        .points()
        .is_empty());
        assert!(GridSpec {
            start: 0.0,
            end: 1.0,
            hz: 0.0
        }
        .points()
        .is_empty());
    }

    #[test]
    fn interpolation_recovers_linear_signal_exactly() {
        // f(t) = 2t over irregular samples.
        let obs: Vec<(f64, Vec<f32>)> = [0.0, 0.13, 0.41, 0.77, 1.0]
            .iter()
            .map(|&t| (t, vec![2.0 * t as f32]))
            .collect();
        let grid = GridSpec {
            start: 0.0,
            end: 1.0,
            hz: 10.0,
        };
        let out = interpolate_grid(&obs, &grid);
        for (i, v) in out.iter().enumerate() {
            let t = i as f32 * 0.1;
            assert!((v[0] - 2.0 * t).abs() < 1e-5, "at {t}: {}", v[0]);
        }
    }

    #[test]
    fn interpolation_tolerates_out_of_order_observations() {
        let sorted: Vec<(f64, Vec<f32>)> =
            vec![(0.0, vec![0.0]), (0.5, vec![5.0]), (1.0, vec![10.0])];
        let shuffled: Vec<(f64, Vec<f32>)> =
            vec![(1.0, vec![10.0]), (0.0, vec![0.0]), (0.5, vec![5.0])];
        let grid = GridSpec {
            start: 0.0,
            end: 1.0,
            hz: 4.0,
        };
        assert_eq!(
            interpolate_grid(&sorted, &grid),
            interpolate_grid(&shuffled, &grid)
        );
    }

    #[test]
    fn interpolation_clamps_outside_span() {
        let obs = vec![(0.5, vec![1.0]), (0.6, vec![2.0])];
        let grid = GridSpec {
            start: 0.0,
            end: 1.0,
            hz: 2.0,
        };
        let out = interpolate_grid(&obs, &grid);
        assert_eq!(out[0], vec![1.0]); // before the first observation
        assert_eq!(out[2], vec![2.0]); // after the last
    }

    #[test]
    fn interpolation_is_multichannel() {
        let obs = vec![(0.0, vec![0.0, 10.0]), (1.0, vec![1.0, 0.0])];
        let grid = GridSpec {
            start: 0.5,
            end: 0.5,
            hz: 1.0,
        };
        let out = interpolate_grid(&obs, &grid);
        assert_eq!(out.len(), 1);
        assert!((out[0][0] - 0.5).abs() < 1e-6);
        assert!((out[0][1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn interpolation_bounded_by_observations() {
        // Interpolated values never exceed the observed min/max.
        let obs: Vec<(f64, Vec<f32>)> = (0..20)
            .map(|i| (i as f64 * 0.1, vec![((i * 7) % 5) as f32]))
            .collect();
        let grid = GridSpec {
            start: 0.0,
            end: 1.9,
            hz: 13.0,
        };
        let out = interpolate_grid(&obs, &grid);
        for v in out {
            assert!(v[0] >= 0.0 && v[0] <= 4.0);
        }
    }

    #[test]
    fn moving_average_smooths_a_spike() {
        let series: Vec<Vec<f32>> = vec![
            vec![1.0],
            vec![1.0],
            vec![10.0], // aberration
            vec![1.0],
            vec![1.0],
        ];
        let out = moving_average(&series, 3);
        assert!(out[2][0] < 10.0);
        assert!((out[2][0] - 4.0).abs() < 1e-6); // (1+1+10)/3
        assert!((out[4][0] - 4.0).abs() < 1e-6); // (10+1+1)/3
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let series = vec![vec![3.0], vec![-1.0]];
        assert_eq!(moving_average(&series, 1), series);
        assert_eq!(moving_average(&series, 0), series);
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let series = vec![vec![2.5, -1.0]; 10];
        let out = moving_average(&series, 4);
        for row in out {
            assert!((row[0] - 2.5).abs() < 1e-6);
            assert!((row[1] + 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn moving_average_reduces_variance_of_noise() {
        let mut rng = darnet_tensor::SplitMix64::new(3);
        let series: Vec<Vec<f32>> = (0..500).map(|_| vec![rng.normal()]).collect();
        let smooth = moving_average(&series, 5);
        let var = |s: &[Vec<f32>]| {
            let mean = s.iter().map(|v| v[0]).sum::<f32>() / s.len() as f32;
            s.iter().map(|v| (v[0] - mean).powi(2)).sum::<f32>() / s.len() as f32
        };
        assert!(var(&smooth) < var(&series) * 0.5);
    }
}
