//! Live (threaded) collection mode: agents on real OS threads stream
//! encoded batches to the controller over crossbeam channels — the shape of
//! the paper's deployed system, useful for the example binaries and for
//! validating that the pipeline is `Send`-clean under real concurrency.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::{bounded, Sender};
use darnet_sim::{Behavior, DrivingWorld, Segment};

use crate::agent::{AgentConfig, CollectionAgent};
use crate::clock::DriftClock;
use crate::controller::{Controller, ControllerConfig};
use crate::sensor::{CameraSensor, ImuSensor, Sensor};
use crate::wire::{decode_batch, encode_batch};
use crate::{CollectError, Result};

/// Output of a live run.
#[derive(Debug)]
pub struct LiveRunReport {
    /// The controller after ingesting every batch.
    pub controller: Controller,
    /// Total encoded bytes that crossed the channel (bandwidth proxy).
    pub bytes_transferred: usize,
    /// Number of batches delivered.
    pub batches: usize,
}

fn spawn_agent(
    agent_id: u32,
    sensor: Box<dyn Sensor>,
    clock: DriftClock,
    duration: f64,
    transmit_period: f64,
    tx: Sender<Vec<u8>>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let poll_period = sensor.period();
        let mut agent = CollectionAgent::new(
            agent_id,
            sensor,
            clock,
            AgentConfig {
                poll_period,
                transmit_period,
            },
        );
        let mut t = 0.0f64;
        let mut next_flush = transmit_period;
        while t <= duration {
            agent.poll(t);
            if t >= next_flush {
                if let Some(batch) = agent.flush() {
                    let encoded = encode_batch(&batch);
                    if tx.send(encoded.to_vec()).is_err() {
                        return; // controller hung up
                    }
                }
                next_flush += transmit_period;
            }
            t += poll_period;
        }
        if let Some(batch) = agent.flush() {
            let _ = tx.send(encode_batch(&batch).to_vec());
        }
    })
}

/// Runs a two-agent (camera + IMU) session on real threads over channels,
/// simulating `duration` seconds of virtual time as fast as possible.
///
/// # Errors
///
/// Returns a decode error if a batch is corrupted in transit (which would
/// indicate a bug — the channel is reliable).
pub fn run_live_session(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    duration: f64,
    controller_config: ControllerConfig,
) -> Result<LiveRunReport> {
    let script: Vec<Segment<Behavior>> = segments
        .iter()
        .filter(|s| s.driver == driver)
        .copied()
        .collect();
    let (tx, rx) = bounded::<Vec<u8>>(64);

    let imu_handle = spawn_agent(
        0,
        Box::new(ImuSensor::new(Arc::clone(world), driver, script.clone(), 0.025)),
        DriftClock::new(50e-6, 0.01),
        duration,
        0.5,
        tx.clone(),
    );
    let cam_handle = spawn_agent(
        1,
        Box::new(CameraSensor::new(Arc::clone(world), driver, script, 0.25)),
        DriftClock::new(1e-6, 0.0),
        duration,
        0.5,
        tx,
    );

    let mut controller = Controller::new(controller_config);
    let mut bytes_transferred = 0usize;
    let mut batches = 0usize;
    for encoded in rx {
        bytes_transferred += encoded.len();
        batches += 1;
        let batch = decode_batch(bytes::Bytes::from(encoded))?;
        controller.ingest(&batch);
    }
    imu_handle
        .join()
        .map_err(|_| CollectError::InvalidConfig("imu agent thread panicked".into()))?;
    cam_handle
        .join()
        .map_err(|_| CollectError::InvalidConfig("camera agent thread panicked".into()))?;

    Ok(LiveRunReport {
        controller,
        bytes_transferred,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use darnet_sim::WorldConfig;

    #[test]
    fn live_session_collects_both_modalities() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let segments = vec![Segment {
            driver: 0,
            behavior: Behavior::Talking,
            start: 0.0,
            duration: 4.0,
        }];
        let report =
            run_live_session(&world, 0, &segments, 4.0, ControllerConfig::default()).unwrap();
        assert!(report.batches > 0);
        assert!(report.bytes_transferred > 1000);
        let (b, r) = report.controller.ingest_stats();
        assert!(b > 0 && r > 0);
        // Both modalities arrived.
        assert!(report.controller.imu_observation_count() > 100);
        assert!(!report.controller.frames_sorted().is_empty());
        // And the stream aligns.
        let aligned = report.controller.aligned_imu().unwrap();
        assert!(aligned.len() > 10);
    }

    #[test]
    fn live_matches_event_driven_grid_density() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let segments = vec![Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 0.0,
            duration: 3.0,
        }];
        let report =
            run_live_session(&world, 0, &segments, 3.0, ControllerConfig::default()).unwrap();
        let aligned = report.controller.aligned_imu().unwrap();
        // 3 s at 4 Hz ≈ 13 points (inclusive grid, small edge effects).
        assert!((10..=14).contains(&aligned.len()), "{}", aligned.len());
    }
}
