//! Live (threaded) collection mode: agents on real OS threads (scoped —
//! see DESIGN.md §11, scoped-threads-only) stream encoded batches to the
//! controller over crossbeam channels — the shape of the paper's deployed
//! system, useful for the example binaries and for validating that the
//! pipeline is `Send`-clean under real concurrency.
//!
//! The faulty variant ([`run_live_session_faulty`]) puts a seeded [`Link`]
//! in front of each agent's channel: a transmission the link drops is
//! immediately retried (the channel itself is reliable, so a successful
//! link draw doubles as the ack), duplicated transmissions are sent twice
//! and deduplicated by the controller's sequence tracking.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::{bounded, Sender};
use darnet_sim::{Behavior, DrivingWorld, Segment};

use crate::agent::{AgentConfig, CollectionAgent, RetransmitConfig, TransportStats};
use crate::clock::DriftClock;
use crate::controller::{Controller, ControllerConfig, IngestOutcome};
use crate::network::{Link, LinkConfig, LinkStats};
use crate::sensor::{CameraSensor, ImuSensor, Sensor};
use crate::shard::{ShardConfig, ShardedController};
use crate::wal::{self, RecoveryReport, Wal, WalConfig, WalStorage};
use crate::wire::{decode_batch, encode_batch};
use crate::{CollectError, Result};

/// Output of a live run.
#[derive(Debug)]
pub struct LiveRunReport {
    /// The controller after ingesting every batch.
    pub controller: Controller,
    /// Total encoded bytes that crossed the channel (bandwidth proxy).
    pub bytes_transferred: usize,
    /// Number of batches delivered (duplicates included).
    pub batches: usize,
    /// Per-agent `(transport, link)` counters, indexed by agent id, when
    /// the faulty mode ran. Empty for the plain reliable-channel mode.
    pub transports: Vec<(TransportStats, LinkStats)>,
}

struct FaultySend {
    link: Link,
    retransmit: RetransmitConfig,
    stats: TransportStats,
}

impl FaultySend {
    /// Pushes one encoded batch through the faulty link into the channel.
    /// A drop is retried immediately (virtual time, real channel): with the
    /// channel reliable, "the link let it through" is the ack.
    fn send(&mut self, t: f64, encoded: &[u8], tx: &Sender<Vec<u8>>) -> bool {
        self.stats.transmitted += 1;
        let mut attempts = 0u32;
        loop {
            let arrivals = self.link.transmit_all(t);
            if !arrivals.is_empty() {
                self.stats.acked += 1;
                for _ in arrivals {
                    if tx.send(encoded.to_vec()).is_err() {
                        return false; // controller hung up
                    }
                }
                return true;
            }
            if !self.retransmit.enabled || attempts >= self.retransmit.max_retries {
                self.stats.abandoned += 1;
                return true; // dropped: becomes a controller-side gap
            }
            attempts += 1;
            self.stats.retransmits += 1;
        }
    }
}

/// Drives one collection agent to completion on the calling thread —
/// invoked from a scoped worker inside [`run_live_inner`] (the project's
/// scoped-threads-only invariant: no detached `thread::spawn`, workers
/// cannot outlive the session).
fn run_agent(
    agent_id: u32,
    sensor: Box<dyn Sensor>,
    clock: DriftClock,
    duration: f64,
    transmit_period: f64,
    mut faulty: Option<FaultySend>,
    tx: Sender<Vec<u8>>,
) -> Option<(TransportStats, LinkStats)> {
    let poll_period = sensor.period();
    let mut agent = CollectionAgent::new(
        agent_id,
        sensor,
        clock,
        AgentConfig {
            poll_period,
            transmit_period,
            ..AgentConfig::default()
        },
    );
    let deliver = |t: f64, encoded: &[u8], faulty: &mut Option<FaultySend>| match faulty {
        Some(f) => f.send(t, encoded, &tx),
        None => tx.send(encoded.to_vec()).is_ok(),
    };
    let mut t = 0.0f64;
    let mut next_flush = transmit_period;
    while t <= duration {
        if agent.poll(t).is_err() {
            // Spill bound hit in strict mode: the agent gives up polling
            // but still drains what it holds (channel flushes below keep
            // the buffer far from the default bound in practice).
            break;
        }
        if t >= next_flush {
            if let Some(batch) = agent.flush() {
                let encoded = encode_batch(&batch);
                if !deliver(t, &encoded, &mut faulty) {
                    return faulty.map(|f| (f.stats, f.link.link_stats()));
                }
            }
            next_flush += transmit_period;
        }
        t += poll_period;
    }
    if let Some(batch) = agent.flush() {
        let _ = deliver(t, &encode_batch(&batch), &mut faulty);
    }
    faulty.map(|f| (f.stats, f.link.link_stats()))
}

fn run_live_inner(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    duration: f64,
    controller_config: ControllerConfig,
    faults: Option<(LinkConfig, RetransmitConfig, u64)>,
    durable: Option<(Arc<dyn WalStorage>, WalConfig)>,
) -> Result<LiveRunReport> {
    let script: Vec<Segment<Behavior>> = segments
        .iter()
        .filter(|s| s.driver == driver)
        .copied()
        .collect();
    let (tx, rx) = bounded::<Vec<u8>>(64);

    // Open the durable controller (replaying any prior incarnation's WAL)
    // before the agent threads start streaming.
    let (mut controller, mut wal): (Controller, Option<Wal>) = match durable {
        Some((storage, wal_config)) => {
            let (c, w, _) = wal::open(controller_config, storage, wal_config)?;
            (c, Some(w))
        }
        None => (Controller::new(controller_config), None),
    };

    let make_faulty = |agent_id: u64| {
        faults.map(|(link, retransmit, seed)| FaultySend {
            link: Link::new(link, seed ^ agent_id.wrapping_mul(0x9E37_79B9)),
            retransmit,
            stats: TransportStats::default(),
        })
    };

    // Scoped threads: the controller ingests on this thread while both
    // agents stream from workers that provably terminate before the scope
    // (and thus this function) returns. If the ingest loop aborts early on
    // a decode error, dropping `rx` makes the workers' sends fail and they
    // exit — the scope cannot deadlock.
    let tx_imu = tx.clone();
    let script_imu = script.clone();
    let faulty_imu = make_faulty(0);
    let faulty_cam = make_faulty(1);
    thread::scope(|scope| {
        let imu_handle = scope.spawn(move || {
            run_agent(
                0,
                Box::new(ImuSensor::new(Arc::clone(world), driver, script_imu, 0.025)),
                DriftClock::new(50e-6, 0.01),
                duration,
                0.5,
                faulty_imu,
                tx_imu,
            )
        });
        let cam_handle = scope.spawn(move || {
            run_agent(
                1,
                Box::new(CameraSensor::new(Arc::clone(world), driver, script, 0.25)),
                DriftClock::new(1e-6, 0.0),
                duration,
                0.5,
                faulty_cam,
                tx,
            )
        });

        let mut bytes_transferred = 0usize;
        let mut batches = 0usize;
        for encoded in rx {
            bytes_transferred += encoded.len();
            batches += 1;
            let batch = decode_batch(bytes::Bytes::from(encoded))?;
            // Live mode's arrival time base is the batch's own newest
            // stamp (matching `Controller::ingest`); the durable path
            // appends to the WAL before mutating state.
            let arrival = batch
                .readings
                .last()
                .map(|r| r.timestamp)
                .unwrap_or_default();
            let outcome = controller.offer_at(arrival, &batch, wal.as_mut())?;
            if outcome != IngestOutcome::Shed {
                if let Some(w) = wal.as_mut() {
                    if w.needs_snapshot() {
                        w.snapshot(&controller)?;
                    }
                }
            }
        }
        let imu_transport = imu_handle
            .join()
            .map_err(|_| CollectError::InvalidConfig("imu agent thread panicked".into()))?;
        let cam_transport = cam_handle
            .join()
            .map_err(|_| CollectError::InvalidConfig("camera agent thread panicked".into()))?;

        Ok(LiveRunReport {
            controller,
            bytes_transferred,
            batches,
            transports: [imu_transport, cam_transport]
                .into_iter()
                .flatten()
                .collect(),
        })
    })
}

/// Runs a two-agent (camera + IMU) session on real threads over channels,
/// simulating `duration` seconds of virtual time as fast as possible.
///
/// # Errors
///
/// Returns a decode error if a batch is corrupted in transit (which would
/// indicate a bug — the channel is reliable).
pub fn run_live_session(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    duration: f64,
    controller_config: ControllerConfig,
) -> Result<LiveRunReport> {
    run_live_inner(
        world,
        driver,
        segments,
        duration,
        controller_config,
        None,
        None,
    )
}

/// Like [`run_live_session`], but every accepted batch is appended to a
/// write-ahead log in `storage` before it mutates controller state, and
/// any state a previous session left in `storage` is replayed on open —
/// kill the process mid-run and the next call resumes from the durable
/// state. The replay accounting is returned alongside the report.
///
/// # Errors
///
/// Everything [`run_live_session`] returns, plus
/// [`crate::CollectError::Wal`] / [`crate::CollectError::Recovery`] from
/// the durability layer.
pub fn run_live_session_durable(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    duration: f64,
    controller_config: ControllerConfig,
    storage: Arc<dyn WalStorage>,
    wal_config: WalConfig,
) -> Result<(LiveRunReport, RecoveryReport)> {
    // Probe the replay separately so the caller sees what recovery did
    // (run_live_inner then re-opens; replay is idempotent and cheap at
    // live-session scale).
    let mut probe = Controller::new(controller_config);
    let report = wal::replay_into(&mut probe, storage.as_ref())?;
    drop(probe);
    run_live_inner(
        world,
        driver,
        segments,
        duration,
        controller_config,
        None,
        Some((storage, wal_config)),
    )
    .map(|live| (live, report))
}

/// Like [`run_live_session`], but every agent sends through a seeded faulty
/// [`Link`]: drops are retried up to the retransmit budget (then surface as
/// controller-side gaps), duplicated transmissions really are sent twice.
///
/// # Errors
///
/// Returns a decode error if a batch is corrupted in transit.
#[allow(clippy::too_many_arguments)] // the session args plus the three fault knobs
pub fn run_live_session_faulty(
    world: &Arc<DrivingWorld>,
    driver: usize,
    segments: &[Segment<Behavior>],
    duration: f64,
    controller_config: ControllerConfig,
    link: LinkConfig,
    retransmit: RetransmitConfig,
    seed: u64,
) -> Result<LiveRunReport> {
    run_live_inner(
        world,
        driver,
        segments,
        duration,
        controller_config,
        Some((link, retransmit, seed)),
        None,
    )
}

/// Output of a sharded live run: the fleet front door after ingesting
/// every stream, plus channel-level accounting.
#[derive(Debug)]
pub struct LiveFleetReport {
    /// The sharded controller after the final drain.
    pub sharded: ShardedController,
    /// Total encoded bytes that crossed the channel.
    pub bytes_transferred: usize,
    /// Batches delivered over the channel.
    pub batches: usize,
}

/// Runs a multi-driver session on real threads — two agents (IMU +
/// camera) per driver, all streaming over one channel into a
/// [`ShardedController`] that is drained as traffic arrives. The live
/// analogue of the event-driven fleet load generator: agent `2*d` is
/// driver `d`'s IMU, `2*d + 1` its camera, and the hash partition routes
/// both to whatever shards own them.
///
/// # Errors
///
/// Returns a decode error if a batch is corrupted in transit, and
/// propagates shard-drain errors.
pub fn run_live_session_sharded(
    world: &Arc<DrivingWorld>,
    drivers: &[usize],
    segments: &[Segment<Behavior>],
    duration: f64,
    shard_config: ShardConfig,
) -> Result<LiveFleetReport> {
    let mut sharded = ShardedController::new(shard_config)?;
    let (tx, rx) = bounded::<Vec<u8>>(64);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(drivers.len() * 2);
        for &driver in drivers {
            let script: Vec<Segment<Behavior>> = segments
                .iter()
                .filter(|s| s.driver == driver)
                .copied()
                .collect();
            let imu_id = (driver as u32) * 2;
            let tx_imu = tx.clone();
            let tx_cam = tx.clone();
            let script_cam = script.clone();
            let world_imu = Arc::clone(world);
            let world_cam = Arc::clone(world);
            handles.push(scope.spawn(move || {
                run_agent(
                    imu_id,
                    Box::new(ImuSensor::new(world_imu, driver, script, 0.025)),
                    DriftClock::new(50e-6, 0.01),
                    duration,
                    0.5,
                    None,
                    tx_imu,
                )
            }));
            handles.push(scope.spawn(move || {
                run_agent(
                    imu_id + 1,
                    Box::new(CameraSensor::new(world_cam, driver, script_cam, 0.25)),
                    DriftClock::new(1e-6, 0.0),
                    duration,
                    0.5,
                    None,
                    tx_cam,
                )
            }));
        }
        // The spawning thread's clone of `tx` must drop, or `rx` never
        // closes and the ingest loop below spins forever.
        drop(tx);

        let mut bytes_transferred = 0usize;
        let mut batches = 0usize;
        for encoded in rx {
            bytes_transferred += encoded.len();
            batches += 1;
            let batch = decode_batch(bytes::Bytes::from(encoded))?;
            let arrival = batch
                .readings
                .last()
                .map(|r| r.timestamp)
                .unwrap_or_default();
            // Queue-shed offers are fine here: the channel is reliable, so
            // a shed batch simply surfaces as a controller-side gap, the
            // same contract as a lossy link.
            let _ = sharded.offer_at(arrival, &batch);
            // Drain opportunistically so queues stay shallow (acks are
            // meaningless over a reliable channel and are dropped).
            if batches.is_multiple_of(64) {
                sharded.drain()?;
            }
        }
        sharded.drain()?;
        for handle in handles {
            handle
                .join()
                .map_err(|_| CollectError::InvalidConfig("agent thread panicked".into()))?;
        }
        Ok(LiveFleetReport {
            sharded,
            bytes_transferred,
            batches,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FaultConfig;
    use darnet_sim::WorldConfig;

    #[test]
    fn live_session_collects_both_modalities() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let segments = vec![Segment {
            driver: 0,
            behavior: Behavior::Talking,
            start: 0.0,
            duration: 4.0,
        }];
        let report =
            run_live_session(&world, 0, &segments, 4.0, ControllerConfig::default()).unwrap();
        assert!(report.batches > 0);
        assert!(report.bytes_transferred > 1000);
        assert!(report.transports.is_empty());
        let (b, r) = report.controller.ingest_stats();
        assert!(b > 0 && r > 0);
        // Both modalities arrived.
        assert!(report.controller.imu_observation_count() > 100);
        assert!(!report.controller.frames_sorted().is_empty());
        // And the stream aligns.
        let aligned = report.controller.aligned_imu().unwrap();
        assert!(aligned.len() > 10);
    }

    #[test]
    fn live_matches_event_driven_grid_density() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let segments = vec![Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 0.0,
            duration: 3.0,
        }];
        let report =
            run_live_session(&world, 0, &segments, 3.0, ControllerConfig::default()).unwrap();
        let aligned = report.controller.aligned_imu().unwrap();
        // 3 s at 4 Hz ≈ 13 points (inclusive grid, small edge effects).
        assert!((10..=14).contains(&aligned.len()), "{}", aligned.len());
    }

    #[test]
    fn sharded_live_session_collects_every_driver() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let segments = vec![
            Segment {
                driver: 0,
                behavior: Behavior::Talking,
                start: 0.0,
                duration: 3.0,
            },
            Segment {
                driver: 1,
                behavior: Behavior::Texting,
                start: 0.0,
                duration: 3.0,
            },
        ];
        let report = run_live_session_sharded(
            &world,
            &[0, 1],
            &segments,
            3.0,
            ShardConfig {
                shards: 3,
                ..ShardConfig::default()
            },
        )
        .unwrap();
        assert!(report.batches > 0);
        assert!(report.bytes_transferred > 1000);
        assert_eq!(report.sharded.queued(), 0, "final drain empties queues");
        // All four agents (2 drivers × IMU + camera) reached a shard.
        let healths = report.sharded.stream_healths();
        assert_eq!(healths.len(), 4);
        for h in &healths {
            assert!(h.delivered > 0, "agent {} silent", h.agent_id);
        }
        let (b, r) = report.sharded.ingest_stats();
        assert!(b > 0 && r > 0);
        assert_ne!(report.sharded.tsdb_digest(), 0);
    }

    #[test]
    fn faulty_live_session_recovers_losses_and_dedupes() {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let segments = vec![Segment {
            driver: 0,
            behavior: Behavior::Texting,
            start: 0.0,
            duration: 4.0,
        }];
        let link = LinkConfig {
            loss: 0.3,
            faults: FaultConfig {
                duplicate: 0.3,
                ..FaultConfig::default()
            },
            ..LinkConfig::default()
        };
        let report = run_live_session_faulty(
            &world,
            0,
            &segments,
            4.0,
            ControllerConfig::default(),
            link,
            RetransmitConfig::default(),
            0xFA11,
        )
        .unwrap();
        assert_eq!(report.transports.len(), 2);
        let retransmits: u64 = report.transports.iter().map(|(t, _)| t.retransmits).sum();
        assert!(retransmits > 0, "30% loss should force retries");
        for (t, _) in &report.transports {
            assert_eq!(t.abandoned, 0, "retry budget should cover 30% loss");
        }
        // Every stream is gap-free after retries, duplicates discarded.
        for h in report.controller.stream_healths() {
            assert_eq!(h.gaps, 0, "agent {} had gaps", h.agent_id);
        }
        let clean =
            run_live_session(&world, 0, &segments, 4.0, ControllerConfig::default()).unwrap();
        assert_eq!(
            report.controller.ingest_stats().1,
            clean.controller.ingest_stats().1,
            "faulty run must ingest exactly the clean run's readings"
        );
    }
}
