//! Fleet-scale sharded ingestion: hash-partitions agents across N
//! shards, each owning a full [`Controller`] (alignment, per-stream
//! health, admission control) and optionally its own WAL, behind a
//! bounded per-shard ingest queue. Per-shard pressure (queue depth +
//! shed ratio) rolls up to a fleet-level admission signal that the load
//! generator and live mode feed back to agents (DESIGN.md §14).
//!
//! Sharding is by *agent*, so every property the single controller
//! guarantees per stream — dedup, gap accounting, ordering within an
//! agent — holds unchanged: an agent's batches always land on the same
//! shard and drain in FIFO order. The only cross-shard difference is
//! the interleaving of *different* agents' equal-timestamp points,
//! which is exactly what [`TsDb::canonical_fingerprint`] quotients out;
//! [`ShardedController::tsdb_digest`] therefore matches a single
//! controller's canonical digest over identical traffic.

use std::collections::VecDeque;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::controller::{Controller, ControllerConfig, IngestOutcome, StreamHealth};
use crate::error::CollectError;
use crate::tsdb::{canonical_fingerprint_merged, fnv1a, fnv1a_init, TsDb};
use crate::wal::{self, RecoveryReport, Wal, WalConfig, WalStats, WalStorage};
use crate::wire::{Ack, Batch};
use crate::Result;

/// Deterministic agent → shard routing: a SplitMix64-style finalizer
/// avalanches the id so consecutive agent ids spread uniformly instead
/// of striping, then reduces modulo the shard count. Stable across
/// processes and platforms — the property the routing proptests pin.
pub fn shard_of(agent_id: u32, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut z = (agent_id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Thresholds for rolling per-shard pressure up into a fleet-level
/// admission signal. Queue fractions are `queued / queue_limit` of the
/// *worst* shard (one hot shard must be able to throttle the fleet);
/// shed ratios are fleet-aggregate `shed / offered`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackpressureConfig {
    /// Worst-shard queue fill fraction at which the fleet signal turns
    /// [`FleetAdmission::Throttle`].
    pub throttle_queue_frac: f64,
    /// Worst-shard queue fill fraction at which the signal turns
    /// [`FleetAdmission::Shed`].
    pub shed_queue_frac: f64,
    /// Fleet shed ratio at which the signal turns `Throttle`.
    pub throttle_shed_ratio: f64,
    /// Fleet shed ratio at which the signal turns `Shed`.
    pub shed_shed_ratio: f64,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            throttle_queue_frac: 0.5,
            shed_queue_frac: 0.9,
            throttle_shed_ratio: 0.25,
            shed_shed_ratio: 0.75,
        }
    }
}

impl BackpressureConfig {
    /// The rollup decision: worst-shard queue fill and fleet shed ratio
    /// in, fleet admission signal out. Shed thresholds dominate
    /// throttle thresholds; either axis alone can escalate.
    pub fn signal(&self, max_queue_frac: f64, shed_ratio: f64) -> FleetAdmission {
        if max_queue_frac >= self.shed_queue_frac || shed_ratio >= self.shed_shed_ratio {
            FleetAdmission::Shed
        } else if max_queue_frac >= self.throttle_queue_frac
            || shed_ratio >= self.throttle_shed_ratio
        {
            FleetAdmission::Throttle
        } else {
            FleetAdmission::Accept
        }
    }
}

/// Fleet-level admission signal, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FleetAdmission {
    /// Normal operation: agents flush on schedule.
    Accept,
    /// Pressure building: agents should slow discretionary traffic.
    Throttle,
    /// Overload: agents should defer flushes entirely; the transport's
    /// retransmission schedule re-offers the data after the burst.
    Shed,
}

/// Configuration for a [`ShardedController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of shards agents are hash-partitioned across.
    pub shards: usize,
    /// Bound on each shard's ingest queue; an offer to a full queue is
    /// shed (unacked, so the agent retransmits it later).
    pub queue_limit: usize,
    /// Per-shard controller configuration. Fleet deployments should set
    /// [`ControllerConfig::per_agent_series`] so TSDB inserts stay
    /// append-only.
    pub controller: ControllerConfig,
    /// Rollup thresholds for the fleet admission signal.
    pub backpressure: BackpressureConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            queue_limit: 1024,
            controller: ControllerConfig::default(),
            backpressure: BackpressureConfig::default(),
        }
    }
}

impl ShardConfig {
    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CollectError::InvalidConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if self.queue_limit == 0 {
            return Err(CollectError::InvalidConfig(
                "shard queue limit must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of offering a batch to the sharded front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Enqueued on the owning shard; an ack (or admission shed) is
    /// decided at the next drain.
    Queued,
    /// The owning shard's queue was full: the batch was dropped unacked
    /// and the agent's retransmission schedule will re-offer it.
    QueueShed,
}

/// One ack produced by a drain pass, with the ingest outcome that
/// justified it (admission-shed batches produce no ack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAck {
    /// The ack to route back to the sending agent.
    pub ack: Ack,
    /// Why it is being sent: first acceptance or duplicate re-ack.
    pub outcome: IngestOutcome,
}

/// Pressure observed on one shard at rollup time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPressure {
    /// Shard index.
    pub shard: usize,
    /// Batches currently queued.
    pub queued: usize,
    /// The configured queue bound.
    pub queue_limit: usize,
    /// High-water mark of the queue since creation.
    pub queue_peak: usize,
    /// Batches shed at the queue (never reached the controller).
    pub queue_shed: u64,
    /// Batches shed by the shard controller's admission control.
    pub admission_shed: u64,
    /// Batches offered to this shard (queued + queue-shed).
    pub offered: u64,
}

impl ShardPressure {
    /// Queue fill fraction, `queued / queue_limit`.
    pub fn queue_frac(&self) -> f64 {
        if self.queue_limit == 0 {
            return 0.0;
        }
        self.queued as f64 / self.queue_limit as f64
    }

    /// Fraction of offered batches shed at either the queue or the
    /// controller's admission bucket.
    pub fn shed_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.queue_shed + self.admission_shed) as f64 / self.offered as f64
    }
}

/// Fleet-wide pressure rollup: per-shard detail plus the derived
/// admission signal.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPressure {
    /// Per-shard pressure, indexed by shard.
    pub shards: Vec<ShardPressure>,
    /// Worst shard's queue fill fraction.
    pub max_queue_frac: f64,
    /// Fleet-aggregate shed ratio (queue + admission sheds over offers).
    pub shed_ratio: f64,
    /// The rolled-up admission signal.
    pub signal: FleetAdmission,
}

/// One shard: a controller, its optional WAL, and the bounded FIFO
/// ingest queue in front of them.
#[derive(Debug)]
struct Shard {
    controller: Controller,
    wal: Option<Wal>,
    queue: VecDeque<(f64, Batch)>,
    queue_shed: u64,
    offered: u64,
    queue_peak: usize,
}

impl Shard {
    fn drain_queue(&mut self) -> Result<Vec<ShardAck>> {
        let mut acks = Vec::with_capacity(self.queue.len());
        while let Some((arrival, batch)) = self.queue.pop_front() {
            let outcome = self
                .controller
                .offer_at(arrival, &batch, self.wal.as_mut())?;
            if let Some(wal) = self.wal.as_mut() {
                if wal.needs_snapshot() {
                    wal.snapshot(&self.controller)?;
                }
            }
            // Shed batches are deliberately unacked (deferral, not
            // loss); the per-stream shed counter records them.
            if matches!(outcome, IngestOutcome::Accepted | IngestOutcome::Duplicate) {
                acks.push(ShardAck {
                    ack: Controller::ack_for(&batch),
                    outcome,
                });
            }
        }
        Ok(acks)
    }

    fn admission_shed(&self) -> u64 {
        self.controller
            .stream_healths()
            .iter()
            .map(|h| h.shed)
            .sum()
    }
}

/// The fleet front door: agents hash-partitioned across N independent
/// [`Controller`] shards with per-shard queues, WALs, and pressure
/// rollup. See the module docs for the equivalence guarantees.
#[derive(Debug)]
pub struct ShardedController {
    config: ShardConfig,
    shards: Vec<Shard>,
}

impl ShardedController {
    /// Creates a sharded controller with no durability.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InvalidConfig`] for a zero shard count or
    /// queue limit.
    pub fn new(config: ShardConfig) -> Result<Self> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|_| Shard {
                controller: Controller::new(config.controller),
                wal: None,
                queue: VecDeque::new(),
                queue_shed: 0,
                offered: 0,
                queue_peak: 0,
            })
            .collect();
        Ok(ShardedController { config, shards })
    }

    /// Opens a sharded controller over one WAL storage per shard,
    /// replaying whatever each shard's log holds — the fleet-scale
    /// analogue of [`wal::open`]. The combined [`RecoveryReport`] is the
    /// sum of the per-shard replays.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InvalidConfig`] when the storage count
    /// does not match the shard count, and propagates per-shard WAL
    /// open/replay errors.
    pub fn open(
        config: ShardConfig,
        storages: Vec<Arc<dyn WalStorage>>,
        wal_config: WalConfig,
    ) -> Result<(Self, RecoveryReport)> {
        config.validate()?;
        if storages.len() != config.shards {
            return Err(CollectError::InvalidConfig(format!(
                "{} WAL storages for {} shards",
                storages.len(),
                config.shards
            )));
        }
        let mut report = RecoveryReport::default();
        let mut shards = Vec::with_capacity(config.shards);
        for storage in storages {
            let (controller, wal, shard_report) =
                wal::open(config.controller, storage, wal_config)?;
            report.absorb(&shard_report);
            shards.push(Shard {
                controller,
                wal: Some(wal),
                queue: VecDeque::new(),
                queue_shed: 0,
                offered: 0,
                queue_peak: 0,
            });
        }
        Ok((ShardedController { config, shards }, report))
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `agent_id`.
    pub fn shard_for(&self, agent_id: u32) -> usize {
        shard_of(agent_id, self.shards.len())
    }

    /// Offers one batch to the owning shard's queue. Bounded: a full
    /// queue sheds the offer (unacked — the agent retransmits later).
    pub fn offer_at(&mut self, arrival: f64, batch: &Batch) -> OfferOutcome {
        let limit = self.config.queue_limit;
        let idx = shard_of(batch.agent_id, self.shards.len());
        let Some(shard) = self.shards.get_mut(idx) else {
            return OfferOutcome::QueueShed;
        };
        shard.offered += 1;
        if shard.queue.len() >= limit {
            shard.queue_shed += 1;
            return OfferOutcome::QueueShed;
        }
        shard.queue.push_back((arrival, batch.clone()));
        shard.queue_peak = shard.queue_peak.max(shard.queue.len());
        OfferOutcome::Queued
    }

    /// Drains every shard's queue serially (shard 0 first), running the
    /// full resilient ingest path — admission, dedup, WAL append,
    /// snapshot cadence — and returns the acks to route back, in shard
    /// then FIFO order. [`ShardedController::drain_parallel`] produces
    /// byte-identical state and the same ack sequence.
    ///
    /// # Errors
    ///
    /// Propagates WAL append/snapshot failures.
    pub fn drain(&mut self) -> Result<Vec<ShardAck>> {
        let mut acks = Vec::new();
        for shard in &mut self.shards {
            acks.extend(shard.drain_queue()?);
        }
        Ok(acks)
    }

    /// Drains every shard concurrently on scoped threads — shards share
    /// no state, so this is the embarrassingly-parallel version of
    /// [`ShardedController::drain`] with identical results (acks are
    /// still concatenated in shard order).
    ///
    /// # Errors
    ///
    /// Propagates per-shard WAL failures and reports a panicked drain
    /// worker as [`CollectError::WorkerPanicked`].
    pub fn drain_parallel(&mut self) -> Result<Vec<ShardAck>> {
        let results: Vec<Result<Vec<ShardAck>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.drain_queue()))
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(i, handle)| match handle.join() {
                    Ok(result) => result,
                    Err(_) => Err(CollectError::WorkerPanicked { shard: i }),
                })
                .collect()
        });
        let mut acks = Vec::new();
        for result in results {
            acks.extend(result?);
        }
        Ok(acks)
    }

    /// Batches currently queued across all shards.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// The fleet pressure rollup: per-shard queue depth and shed
    /// accounting, folded into the fleet admission signal via
    /// [`BackpressureConfig::signal`].
    pub fn pressure(&self) -> FleetPressure {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut max_queue_frac = 0.0f64;
        let mut offered_total = 0u64;
        let mut shed_total = 0u64;
        for (i, s) in self.shards.iter().enumerate() {
            let p = ShardPressure {
                shard: i,
                queued: s.queue.len(),
                queue_limit: self.config.queue_limit,
                queue_peak: s.queue_peak,
                queue_shed: s.queue_shed,
                admission_shed: s.admission_shed(),
                offered: s.offered,
            };
            max_queue_frac = max_queue_frac.max(p.queue_frac());
            offered_total += p.offered;
            shed_total += p.queue_shed + p.admission_shed;
            shards.push(p);
        }
        let shed_ratio = if offered_total == 0 {
            0.0
        } else {
            shed_total as f64 / offered_total as f64
        };
        FleetPressure {
            shards,
            max_queue_frac,
            shed_ratio,
            signal: self.config.backpressure.signal(max_queue_frac, shed_ratio),
        }
    }

    /// Health report for one agent's stream, routed to its shard.
    pub fn stream_health(&self, agent_id: u32) -> Option<StreamHealth> {
        self.shards
            .get(self.shard_for(agent_id))?
            .controller
            .stream_health(agent_id)
    }

    /// Health reports for every stream any shard has seen, sorted by
    /// agent id (shard-count independent).
    pub fn stream_healths(&self) -> Vec<StreamHealth> {
        let mut out: Vec<StreamHealth> = self
            .shards
            .iter()
            .flat_map(|s| s.controller.stream_healths())
            .collect();
        out.sort_by_key(|h| h.agent_id);
        out
    }

    /// Whether `(agent_id, seq)` has been accepted by its owning shard.
    pub fn has_seen(&self, agent_id: u32, seq: u32) -> bool {
        self.shards
            .get(self.shard_for(agent_id))
            .is_some_and(|s| s.controller.has_seen(agent_id, seq))
    }

    /// `(batches, readings)` accepted across all shards.
    pub fn ingest_stats(&self) -> (u64, u64) {
        let mut batches = 0;
        let mut readings = 0;
        for s in &self.shards {
            let (b, r) = s.controller.ingest_stats();
            batches += b;
            readings += r;
        }
        (batches, readings)
    }

    /// Approximate resident bytes of controller state across shards,
    /// including batches still sitting in ingest queues. Deterministic —
    /// the fleet bytes-per-agent gate divides this by the agent count.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for s in &self.shards {
            total += s.controller.approx_bytes();
            for (_, batch) in &s.queue {
                total += 16 + batch.readings.len() as u64 * 16;
            }
        }
        total
    }

    /// Aggregate WAL counters across shards (zeros when opened without
    /// durability).
    pub fn wal_stats(&self) -> WalStats {
        let mut out = WalStats::default();
        for s in &self.shards {
            if let Some(wal) = &s.wal {
                let st = wal.stats();
                out.appends += st.appends;
                out.bytes_appended += st.bytes_appended;
                out.segments_rolled += st.segments_rolled;
                out.snapshots_taken += st.snapshots_taken;
            }
        }
        out
    }

    /// Folds each shard's [`Controller::state_digest`] (with its shard
    /// index) into one fleet digest. Shard-count *dependent* — use
    /// [`ShardedController::tsdb_digest`] for cross-shard-count
    /// comparisons.
    // darlint: pure-root
    pub fn state_digest(&self) -> u64 {
        let mut h = fnv1a_init();
        for (i, s) in self.shards.iter().enumerate() {
            fnv1a(&mut h, &(i as u64).to_le_bytes());
            fnv1a(&mut h, &s.controller.state_digest().to_le_bytes());
        }
        h
    }

    /// Canonical digest of the union of all shard TSDBs — equal to a
    /// single controller's [`TsDb::canonical_fingerprint`] over the same
    /// accepted traffic, for *any* shard count. The sharding-correctness
    /// invariant the proptests and `bench_fleet --check` pin.
    // darlint: pure-root
    pub fn tsdb_digest(&self) -> u64 {
        let stores: Vec<&TsDb> = self.shards.iter().map(|s| s.controller.tsdb()).collect();
        canonical_fingerprint_merged(&stores)
    }

    /// Borrow one shard's controller (diagnostics and tests; `None` out
    /// of range).
    pub fn shard_controller(&self, shard: usize) -> Option<&Controller> {
        self.shards.get(shard).map(|s| &s.controller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::SensorReading;
    use crate::wal::MemStorage;
    use crate::wire::StampedReading;
    use darnet_sim::ImuSample;

    /// Wire round-trip so WAL replay re-encodes bitwise-identical values
    /// (same convention as the wal.rs tests).
    fn canonical(batch: &Batch) -> Batch {
        crate::wire::decode_batch(crate::wire::encode_batch(batch)).unwrap()
    }

    fn imu_batch(agent: u32, seq: u32, stamps: &[f64]) -> Batch {
        canonical(&Batch {
            agent_id: agent,
            seq,
            readings: stamps
                .iter()
                .map(|&t| StampedReading {
                    timestamp: t,
                    reading: SensorReading::Imu(ImuSample {
                        accel: [t as f32, agent as f32, 9.8],
                        gyro: [0.0; 3],
                        gravity: [0.0, 0.0, 9.8],
                        rotation: [0.0; 3],
                    }),
                })
                .collect(),
        })
    }

    #[test]
    fn routing_is_deterministic_in_range_and_spread() {
        for shards in [1usize, 2, 7, 16] {
            let mut hit = vec![false; shards];
            for agent in 0..1000u32 {
                let s = shard_of(agent, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(agent, shards), "routing must be stable");
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "every shard should own agents");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ShardedController::new(ShardConfig {
            shards: 0,
            ..ShardConfig::default()
        })
        .is_err());
        assert!(ShardedController::new(ShardConfig {
            queue_limit: 0,
            ..ShardConfig::default()
        })
        .is_err());
        assert!(ShardedController::open(
            ShardConfig::default(),
            vec![Arc::new(MemStorage::new())],
            WalConfig::default(),
        )
        .is_err());
    }

    /// The traffic used by the equivalence tests: interleaved agents,
    /// an out-of-order delivery, and a duplicate.
    fn traffic() -> Vec<(f64, Batch)> {
        let mut t = Vec::new();
        for step in 0..20u32 {
            for agent in 0..6u32 {
                let at = step as f64 * 0.5 + agent as f64 * 0.01;
                t.push((at, imu_batch(agent, step, &[at, at + 0.1])));
            }
        }
        // A duplicate delivery and a late out-of-order one.
        t.push((10.2, imu_batch(2, 5, &[2.6, 2.7])));
        t.push((10.3, imu_batch(3, 0, &[0.03, 0.13])));
        t
    }

    #[test]
    fn single_shard_matches_plain_controller_exactly() {
        let config = ShardConfig {
            shards: 1,
            ..ShardConfig::default()
        };
        let mut sharded = ShardedController::new(config).unwrap();
        let mut single = Controller::new(config.controller);
        for (at, batch) in traffic() {
            assert_eq!(sharded.offer_at(at, &batch), OfferOutcome::Queued);
            single.offer_at(at, &batch, None).unwrap();
        }
        let acks = sharded.drain().unwrap();
        assert!(!acks.is_empty());
        let c0 = sharded.shard_controller(0).unwrap();
        assert_eq!(c0.state_digest(), single.state_digest());
        assert_eq!(sharded.tsdb_digest(), single.tsdb().canonical_fingerprint());
    }

    #[test]
    fn merged_tsdb_digest_matches_single_controller_across_shard_counts() {
        let mut single = Controller::new(ControllerConfig::default());
        for (at, batch) in traffic() {
            single.offer_at(at, &batch, None).unwrap();
        }
        for shards in [2usize, 3, 8] {
            let mut sharded = ShardedController::new(ShardConfig {
                shards,
                ..ShardConfig::default()
            })
            .unwrap();
            for (at, batch) in traffic() {
                sharded.offer_at(at, &batch);
            }
            sharded.drain().unwrap();
            assert_eq!(
                sharded.tsdb_digest(),
                single.tsdb().canonical_fingerprint(),
                "shards={shards}"
            );
            assert_eq!(sharded.ingest_stats(), single.ingest_stats());
            // Stream-level accounting is sharding-invariant too.
            assert_eq!(sharded.stream_healths(), single.stream_healths());
        }
    }

    #[test]
    fn parallel_drain_equals_serial_drain() {
        let build = || {
            let mut s = ShardedController::new(ShardConfig {
                shards: 4,
                ..ShardConfig::default()
            })
            .unwrap();
            for (at, batch) in traffic() {
                s.offer_at(at, &batch);
            }
            s
        };
        let mut serial = build();
        let mut parallel = build();
        let a = serial.drain().unwrap();
        let b = parallel.drain_parallel().unwrap();
        assert_eq!(a, b);
        assert_eq!(serial.state_digest(), parallel.state_digest());
    }

    #[test]
    fn full_queue_sheds_and_pressure_reports_it() {
        let mut s = ShardedController::new(ShardConfig {
            shards: 1,
            queue_limit: 4,
            ..ShardConfig::default()
        })
        .unwrap();
        let mut queued = 0;
        let mut shed = 0;
        for seq in 0..10u32 {
            match s.offer_at(0.0, &imu_batch(0, seq, &[0.0])) {
                OfferOutcome::Queued => queued += 1,
                OfferOutcome::QueueShed => shed += 1,
            }
        }
        assert_eq!((queued, shed), (4, 6));
        let p = s.pressure();
        assert_eq!(p.shards[0].queued, 4);
        assert_eq!(p.shards[0].queue_shed, 6);
        assert_eq!(p.signal, FleetAdmission::Shed);
        // Draining empties the queue; shed history keeps the ratio high.
        s.drain().unwrap();
        let p = s.pressure();
        assert_eq!(p.shards[0].queued, 0);
        assert!(p.shed_ratio > 0.5);
    }

    #[test]
    fn backpressure_rollup_thresholds() {
        let bp = BackpressureConfig::default();
        assert_eq!(bp.signal(0.0, 0.0), FleetAdmission::Accept);
        assert_eq!(bp.signal(0.49, 0.24), FleetAdmission::Accept);
        // Either axis crossing its throttle threshold throttles.
        assert_eq!(bp.signal(0.5, 0.0), FleetAdmission::Throttle);
        assert_eq!(bp.signal(0.0, 0.25), FleetAdmission::Throttle);
        // Either axis crossing its shed threshold sheds.
        assert_eq!(bp.signal(0.9, 0.0), FleetAdmission::Shed);
        assert_eq!(bp.signal(0.0, 0.75), FleetAdmission::Shed);
        // Severity is ordered, so rollups can take a max.
        assert!(FleetAdmission::Shed > FleetAdmission::Throttle);
        assert!(FleetAdmission::Throttle > FleetAdmission::Accept);
    }

    #[test]
    fn sharded_wal_recovery_restores_every_shard() {
        let config = ShardConfig {
            shards: 3,
            ..ShardConfig::default()
        };
        let storages: Vec<Arc<dyn WalStorage>> = (0..3)
            .map(|_| Arc::new(MemStorage::new()) as Arc<dyn WalStorage>)
            .collect();
        let (mut live, first) =
            ShardedController::open(config, storages.clone(), WalConfig::default()).unwrap();
        assert_eq!(first.records_replayed, 0);
        // Duplicate-free prefix: duplicate tallies are ephemeral
        // observability counters, not durable state (same convention as
        // the WAL round-trip proptests).
        for (at, batch) in traffic().into_iter().take(120) {
            live.offer_at(at, &batch);
        }
        live.drain().unwrap();
        let digest = live.state_digest();
        assert!(live.wal_stats().appends > 0);
        drop(live);

        let (recovered, report) =
            ShardedController::open(config, storages, WalConfig::default()).unwrap();
        assert!(report.records_replayed > 0);
        assert_eq!(recovered.state_digest(), digest);
        assert!(recovered.has_seen(0, 19));
    }

    #[test]
    fn routing_queries_and_bytes_accounting() {
        let mut s = ShardedController::new(ShardConfig::default()).unwrap();
        assert_eq!(s.approx_bytes(), 0);
        let b = imu_batch(5, 0, &[0.0]);
        s.offer_at(0.0, &b);
        assert!(s.approx_bytes() > 0, "queued batches count");
        s.drain().unwrap();
        assert!(s.has_seen(5, 0));
        assert!(!s.has_seen(5, 1));
        assert_eq!(s.shard_for(5), shard_of(5, 4));
        assert_eq!(s.stream_health(5).unwrap().delivered, 1);
        assert!(s.stream_health(6).is_none());
        assert_eq!(s.queued(), 0);
        assert!(s.shard_controller(99).is_none());
    }
}
